open Uv_sql
open Ast
module Vset = Set.Make (String)

type riset = Any | Vals of Vset.t

type dim_access = { dr : riset; dw : riset }

type taccess = dim_access array

type entry_rows = (string * taccess) list

type config = {
  ri_columns : (string * string list) list;
  ri_aliases : (string * string * string) list;
}

let default_config = { ri_columns = []; ri_aliases = [] }

type t = {
  config : config;
  (* (table, alias_col, serialized alias value) -> serialized RI value *)
  alias_map : (string * string * string, string) Hashtbl.t;
  (* union-find parent map: (table, dim_col, value) -> value *)
  merge_parent : (string * string * string, string) Hashtbl.t;
  (* bumped per new union-find link; the incremental analyzer re-keys
     its value-bucket indexes only when this moved *)
  mutable merge_generation : int;
}

let create config =
  { config; alias_map = Hashtbl.create 256; merge_parent = Hashtbl.create 64;
    merge_generation = 0 }

let merge_generation t = t.merge_generation

let seed_aliases t cat =
  List.iter
    (fun (table, acol, rcol) ->
      match Uv_db.Catalog.table cat table with
      | None -> ()
      | Some tbl -> (
          match
            ( Uv_db.Storage.column_index tbl acol,
              Uv_db.Storage.column_index tbl rcol )
          with
          | Some ai, Some ri ->
              Uv_db.Storage.iter tbl (fun _ row ->
                  Hashtbl.replace t.alias_map
                    (table, acol, Value.serialize row.(ai))
                    (Value.serialize row.(ri)))
          | _ -> ()))
    t.config.ri_aliases

let rec find_root t table dim v =
  match Hashtbl.find_opt t.merge_parent (table, dim, v) with
  | None -> v
  | Some p when String.equal p v -> v
  | Some p -> find_root t table dim p

let canonical t table dim v = find_root t table dim v

let merge_values t table dim v1 v2 =
  let r1 = find_root t table dim v1 and r2 = find_root t table dim v2 in
  if not (String.equal r1 r2) then begin
    Hashtbl.replace t.merge_parent (table, dim, r2) r1;
    t.merge_generation <- t.merge_generation + 1
  end

let ri_dims t sv table =
  match List.assoc_opt table t.config.ri_columns with
  | Some dims -> dims
  | None -> (
      match Schema_view.table_schema sv table with
      | Some sch -> (
          match Schema.primary_key_columns sch with
          | pk :: _ -> [ pk ]
          | [] -> [])
      | None -> [])

let aliases_for t table =
  List.filter_map
    (fun (tbl, acol, rcol) ->
      if String.equal tbl table then Some (acol, rcol) else None)
    t.config.ri_aliases

(* ------------------------------------------------------------------ *)
(* riset algebra                                                        *)
(* ------------------------------------------------------------------ *)

let rs_union a b =
  match (a, b) with
  | Any, _ | _, Any -> Any
  | Vals x, Vals y -> Vals (Vset.union x y)

let rs_inter a b =
  match (a, b) with
  | Any, x | x, Any -> x
  | Vals x, Vals y -> Vals (Vset.inter x y)

let rs_is_empty = function Any -> false | Vals s -> Vset.is_empty s

let rs_canon t table dim = function
  | Any -> Any
  | Vals s -> Vals (Vset.map (fun v -> canonical t table dim v) s)

let rs_overlap t table dim a b =
  match (rs_canon t table dim a, rs_canon t table dim b) with
  | Any, x | x, Any -> not (rs_is_empty x)
  | Vals x, Vals y -> not (Vset.is_empty (Vset.inter x y))


let merge_dim a b = { dr = rs_union a.dr b.dr; dw = rs_union a.dw b.dw }

let merge_rows (a : entry_rows) (b : entry_rows) : entry_rows =
  List.fold_left
    (fun acc (table, acc_b) ->
      match List.assoc_opt table acc with
      | None -> (table, acc_b) :: acc
      | Some acc_a ->
          let merged =
            if Array.length acc_a <> Array.length acc_b then
              Array.map (fun _ -> { dr = Any; dw = Any }) acc_a
            else Array.map2 merge_dim acc_a acc_b
          in
          (table, merged) :: List.remove_assoc table acc)
    a b

(* ------------------------------------------------------------------ *)
(* Partial evaluation of expressions                                    *)
(* ------------------------------------------------------------------ *)

(* Variables map to [Some v] when their value is statically determined
   (bound from literal CALL arguments or literal SETs), [None] when
   unknown (database reads, non-determinism). *)
type penv = (string, Value.t option) Hashtbl.t

let rec peval (env : penv) (e : expr) : Value.t option =
  match e with
  | Lit v -> Some v
  | Var name -> ( match Hashtbl.find_opt env name with Some v -> v | None -> None)
  | Col _ -> None
  | Unop (Neg, a) ->
      Option.map (fun v -> Value.sub (Value.Int 0) v) (peval env a)
  | Unop (Not, a) ->
      Option.map (fun v -> Value.Bool (not (Value.to_bool v))) (peval env a)
  | Binop (op, a, b) -> (
      match (peval env a, peval env b) with
      | Some va, Some vb -> (
          match op with
          | Add -> Some (Value.add va vb)
          | Sub -> Some (Value.sub va vb)
          | Mul -> Some (Value.mul va vb)
          | Div -> Some (Value.div va vb)
          | Mod -> Some (Value.modulo va vb)
          | Eq -> Some (Value.Bool (Value.equal_sql va vb))
          | Neq -> Some (Value.Bool (not (Value.equal_sql va vb)))
          | Lt -> Some (Value.Bool (Value.compare_sql va vb < 0))
          | Le -> Some (Value.Bool (Value.compare_sql va vb <= 0))
          | Gt -> Some (Value.Bool (Value.compare_sql va vb > 0))
          | Ge -> Some (Value.Bool (Value.compare_sql va vb >= 0))
          | And -> Some (Value.Bool (Value.to_bool va && Value.to_bool vb))
          | Or -> Some (Value.Bool (Value.to_bool va || Value.to_bool vb)))
      | _ -> None)
  | Fun_call ("CONCAT", args) ->
      let parts = List.map (peval env) args in
      if List.for_all Option.is_some parts then
        Some
          (Value.Text
             (String.concat ""
                (List.map (fun p -> Value.to_string (Option.get p)) parts)))
      else None
  | Fun_call ("IF", [ c; a; b ]) -> (
      match peval env c with
      | Some cv -> if Value.to_bool cv then peval env a else peval env b
      | None -> None)
  | Fun_call _ | Subselect _ | Exists _ -> None
  | In_list _ | Between _ | Is_null _ -> None

(* ------------------------------------------------------------------ *)
(* WHERE-clause constraint extraction                                   *)
(* ------------------------------------------------------------------ *)

(* Extract the riset a WHERE clause pins for dimension [dim] of [table],
   considering alias columns. Unqualified column names are assumed to
   refer to [table] (single-table DML). *)
let rec where_constraint t env table dim (e : expr) : riset =
  let is_col name = function
    | Col (None, c) -> String.equal c name
    | Col (Some q, c) -> String.equal q table && String.equal c name
    | _ -> false
  in
  let value_set v = Vals (Vset.singleton (Value.serialize v)) in
  let alias_lookup acol v =
    match Hashtbl.find_opt t.alias_map (table, acol, Value.serialize v) with
    | Some ri -> Vals (Vset.singleton ri)
    | None -> Any
  in
  match e with
  | Binop (Eq, lhs, rhs) -> (
      let sides = [ (lhs, rhs); (rhs, lhs) ] in
      let try_side (a, b) =
        if is_col dim a then
          match peval env b with Some v -> Some (value_set v) | None -> Some Any
        else
          match
            List.find_opt (fun (acol, rcol) -> String.equal rcol dim && is_col acol a)
              (aliases_for t table)
          with
          | Some (acol, _) -> (
              match peval env b with
              | Some v -> Some (alias_lookup acol v)
              | None -> Some Any)
          | None -> None
      in
      match List.find_map try_side sides with
      | Some rs -> rs
      | None -> Any)
  | In_list (c, items) when is_col dim c ->
      let vals = List.map (peval env) items in
      if List.for_all Option.is_some vals then
        Vals (Vset.of_list (List.map (fun v -> Value.serialize (Option.get v)) vals))
      else Any
  | Binop (And, a, b) ->
      rs_inter (where_constraint t env table dim a) (where_constraint t env table dim b)
  | Binop (Or, a, b) ->
      rs_union (where_constraint t env table dim a) (where_constraint t env table dim b)
  | _ -> Any

let constrain_dims t env sv table where : riset array =
  let dims = ri_dims t sv table in
  match dims with
  | [] -> [| Any |]
  | _ ->
      Array.of_list
        (List.map
           (fun dim ->
             match where with
             | None -> Any
             | Some w -> where_constraint t env table dim w)
           dims)

(* ------------------------------------------------------------------ *)
(* Non-determinism bookkeeping for INSERT                               *)
(* ------------------------------------------------------------------ *)

(* Count the RAND()/NOW()-style draws an expression performs so we can
   line up the AUTO_INCREMENT draw within the entry's recorded list. *)
let rec count_draws (e : expr) =
  match e with
  | Fun_call (("RAND" | "NOW" | "CURTIME" | "CURRENT_TIMESTAMP" | "UNIX_TIMESTAMP"), _)
    ->
      1
  | Fun_call (_, args) -> List.fold_left (fun a x -> a + count_draws x) 0 args
  | Binop (_, a, b) -> count_draws a + count_draws b
  | Unop (_, a) -> count_draws a
  | In_list (a, items) -> List.fold_left (fun acc x -> acc + count_draws x) (count_draws a) items
  | Between (a, b, c) -> count_draws a + count_draws b + count_draws c
  | Is_null (a, _) -> count_draws a
  | Lit _ | Col _ | Var _ | Subselect _ | Exists _ -> 0

(* ------------------------------------------------------------------ *)
(* Per-statement extraction                                             *)
(* ------------------------------------------------------------------ *)

let read_only_dims t sv table where env : taccess =
  let cs = constrain_dims t env sv table where in
  Array.map (fun rs -> { dr = rs; dw = Vals Vset.empty }) cs

let rw_dims t sv table where env : taccess =
  let cs = constrain_dims t env sv table where in
  Array.map (fun rs -> { dr = rs; dw = rs }) cs

let any_access t sv table : taccess =
  let dims = ri_dims t sv table in
  let n = max 1 (List.length dims) in
  Array.init n (fun _ -> { dr = Any; dw = Any })

let select_rows t env sv (s : select) : entry_rows =
  let sources =
    (match s.sel_from with Some (tbl, _) -> [ tbl ] | None -> [])
    @ List.map (fun j -> j.join_table) s.sel_joins
  in
  List.fold_left
    (fun acc table ->
      if Schema_view.is_view sv table then
        (* view reads degrade to Any on underlying table *)
        match Schema_view.view sv table with
        | Some q -> (
            match q.sel_from with
            | Some (parent, _) ->
                merge_rows acc
                  [ (parent, read_only_dims t sv parent q.sel_where env) ]
            | None -> acc)
        | None -> acc
      else if List.length sources = 1 then
        merge_rows acc [ (table, read_only_dims t sv table s.sel_where env) ]
      else
        (* joins: constraints may mix tables; stay conservative *)
        merge_rows acc [ (table, read_only_dims t sv table s.sel_where env) ])
    [] sources

(* Learn alias mappings and extract the written RI values of an INSERT. *)
let insert_rows t env sv table columns values nondet : entry_rows =
  let real_table, where_extra =
    match Schema_view.view sv table with
    | Some q -> (
        match q.sel_from with Some (p, _) -> (p, q.sel_where) | None -> (table, None))
    | None -> (table, None)
  in
  ignore where_extra;
  let dims = ri_dims t sv real_table in
  let cols =
    match columns with
    | Some cs -> Some cs
    | None -> Schema_view.table_columns sv real_table
  in
  let auto_col = Schema_view.auto_increment_column sv real_table in
  let nondet = ref nondet in
  let take_nondet n =
    (* drop n leading draws, return the next one *)
    let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: r -> drop (k - 1) r in
    let rest = drop n !nondet in
    match rest with
    | v :: r ->
        nondet := r;
        Some v
    | [] ->
        nondet := [];
        None
  in
  let per_dim_written = Array.make (max 1 (List.length dims)) (Vals Vset.empty) in
  let learned = ref [] in
  List.iter
    (fun row_exprs ->
      let draws_in_row = List.fold_left (fun a e -> a + count_draws e) 0 row_exprs in
      (* column -> evaluated value (when static) *)
      let bindings =
        match cols with
        | None -> []
        | Some cs ->
            let rec zip cs es acc =
              match (cs, es) with
              | c :: cr, e :: er -> zip cr er ((c, peval env e) :: acc)
              | _ -> List.rev acc
            in
            zip cs row_exprs []
      in
      (* AUTO_INCREMENT value comes from the recorded draws when the
         column was not given explicitly. *)
      let bindings =
        match auto_col with
        | Some ac when List.assoc_opt ac bindings = None -> (
            match take_nondet draws_in_row with
            | Some v -> (ac, Some v) :: bindings
            | None -> (ac, None) :: bindings)
        | _ ->
            ignore (take_nondet draws_in_row);
            bindings
      in
      (* record written RI values per dimension *)
      List.iteri
        (fun i dim ->
          let v = Option.join (List.assoc_opt dim bindings) in
          per_dim_written.(i) <-
            (match (per_dim_written.(i), v) with
            | Any, _ | _, None -> Any
            | Vals s, Some v -> Vals (Vset.add (Value.serialize v) s)))
        dims;
      (* learn alias mappings when both sides are known *)
      List.iter
        (fun (acol, rcol) ->
          match
            (Option.join (List.assoc_opt acol bindings),
             Option.join (List.assoc_opt rcol bindings))
          with
          | Some av, Some rv ->
              learned := (acol, Value.serialize av, Value.serialize rv) :: !learned
          | _ -> ())
        (aliases_for t real_table))
    values;
  List.iter
    (fun (acol, av, rv) -> Hashtbl.replace t.alias_map (real_table, acol, av) rv)
    !learned;
  let access =
    if dims = [] then any_access t sv real_table
    else Array.map (fun w -> { dr = Vals Vset.empty; dw = w }) per_dim_written
  in
  [ (real_table, access) ]

let update_rows_access t env sv table assigns where : entry_rows =
  let real_table =
    match Schema_view.view sv table with
    | Some q -> ( match q.sel_from with Some (p, _) -> p | None -> table)
    | None -> table
  in
  let dims = ri_dims t sv real_table in
  let access = rw_dims t sv real_table where env in
  (* RI value rewritten by the assignment: merge old/new (§4.3). *)
  List.iteri
    (fun i dim ->
      match List.assoc_opt dim assigns with
      | None -> ()
      | Some e -> (
          let new_v = peval env e in
          let old_rs = access.(i).dr in
          (match (new_v, old_rs) with
          | Some nv, Vals olds when Vset.cardinal olds = 1 ->
              merge_values t real_table dim (Vset.choose olds) (Value.serialize nv)
          | _ -> ());
          (* the write now also covers the new value *)
          access.(i) <-
            {
              access.(i) with
              dw =
                (match (new_v, access.(i).dw) with
                | Some nv, Vals s -> Vals (Vset.add (Value.serialize nv) s)
                | _ -> Any);
            }))
    dims;
  (* alias columns updated: refresh alias map when determinable *)
  List.iter
    (fun (acol, rcol) ->
      match List.assoc_opt acol assigns with
      | None -> ()
      | Some e -> (
          match
            (peval env e,
             match List.assoc_opt rcol assigns with
             | Some re -> peval env re
             | None -> None)
          with
          | Some av, Some rv ->
              Hashtbl.replace t.alias_map
                (real_table, acol, Value.serialize av)
                (Value.serialize rv)
          | _ -> ()))
    (aliases_for t real_table);
  [ (real_table, access) ]

let rec stmt_rows t env sv (s : stmt) nondet : entry_rows =
  match s with
  | Select sel ->
      (* subqueries in the projection, WHERE or HAVING read other tables *)
      let base = select_rows t env sv sel in
      let exprs =
        (match sel.sel_where with Some w -> [ w ] | None -> [])
        @ (match sel.sel_having with Some h -> [ h ] | None -> [])
        @ List.filter_map
            (function Item (e, _) -> Some e | Star -> None)
            sel.sel_items
      in
      List.fold_left
        (fun acc e -> merge_rows acc (expr_subquery_rows t env sv e))
        base exprs
  | Insert_select { table; query; _ } ->
      (* written RI values are data-dependent: wildcard write on the real
         table; reads come from the source query (plus insert triggers) *)
      let real_table =
        match Schema_view.view sv table with
        | Some q -> (
            match q.sel_from with Some (p, _) -> p | None -> table)
        | None -> table
      in
      let dims = ri_dims t sv real_table in
      let n = max 1 (List.length dims) in
      let write_any =
        Array.init n (fun _ -> { dr = Vals Vset.empty; dw = Any })
      in
      merge_rows
        (merge_rows [ (real_table, write_any) ] (select_rows t env sv query))
        (trigger_rows t sv real_table Ev_insert nondet)
  | Insert { table; columns; values } ->
      let base = insert_rows t env sv table columns values nondet in
      (* subqueries inside VALUES read other tables *)
      let sub =
        List.fold_left
          (fun acc row ->
            List.fold_left
              (fun acc e -> merge_rows acc (expr_subquery_rows t env sv e))
              acc row)
          [] values
      in
      merge_rows base sub
  | Update { table; assigns; where } ->
      let base = update_rows_access t env sv table assigns where in
      merge_rows base (where_subquery_rows t env sv where)
  | Delete { table; where } ->
      let real_table =
        match Schema_view.view sv table with
        | Some q -> ( match q.sel_from with Some (p, _) -> p | None -> table)
        | None -> table
      in
      merge_rows
        [ (real_table, rw_dims t sv real_table where env) ]
        (where_subquery_rows t env sv where)
  | Call (name, args) -> (
      match Schema_view.procedure sv name with
      | None -> []
      | Some proc ->
          let env' : penv = Hashtbl.create 8 in
          (try
             List.iter2
               (fun (pname, _) a -> Hashtbl.replace env' pname (peval env a))
               proc.Uv_db.Catalog.proc_params args
           with Invalid_argument _ -> ());
          pstmts_rows t env' sv proc.Uv_db.Catalog.proc_body nondet)
  | Transaction stmts ->
      List.fold_left
        (fun acc s -> merge_rows acc (stmt_rows t env sv s nondet))
        [] stmts
  | Create_table { name; _ }
  | Drop_table { name; _ }
  | Truncate_table name
  | Alter_table (name, _) ->
      [ (name, any_access t sv name) ]
  | Create_view _ | Drop_view _ | Create_index _ | Drop_index _
  | Create_procedure _ | Drop_procedure _ | Create_trigger _ | Drop_trigger _ ->
      []

and expr_subquery_rows t env sv (e : expr) : entry_rows =
  let rec walk (e : expr) acc =
    match e with
    | Subselect s | Exists s -> merge_rows acc (select_rows t env sv s)
    | Binop (_, a, b) -> walk b (walk a acc)
    | Unop (_, a) -> walk a acc
    | Fun_call (_, args) -> List.fold_left (fun acc a -> walk a acc) acc args
    | In_list (a, items) -> List.fold_left (fun acc x -> walk x acc) (walk a acc) items
    | Between (a, b, c) -> walk c (walk b (walk a acc))
    | Is_null (a, _) -> walk a acc
    | Lit _ | Col _ | Var _ -> acc
  in
  walk e []

and where_subquery_rows t env sv where : entry_rows =
  match where with None -> [] | Some w -> expr_subquery_rows t env sv w

and pstmts_rows t (env : penv) sv body nondet : entry_rows =
  List.fold_left (fun acc p -> merge_rows acc (pstmt_rows t env sv p nondet)) [] body

and pstmt_rows t (env : penv) sv (p : pstmt) nondet : entry_rows =
  match p with
  | P_stmt s ->
      (* triggers fired by nested DML: approximate with Any on the tables
         the trigger bodies touch *)
      let base = stmt_rows t env sv s nondet in
      let trig =
        match s with
        | Insert { table; _ } -> trigger_rows t sv table Ev_insert nondet
        | Update { table; _ } -> trigger_rows t sv table Ev_update nondet
        | Delete { table; _ } -> trigger_rows t sv table Ev_delete nondet
        | _ -> []
      in
      merge_rows base trig
  | P_declare (v, _, init) ->
      Hashtbl.replace env v (Option.bind init (peval env));
      []
  | P_set (v, e) ->
      Hashtbl.replace env v (peval env e);
      []
  | P_select_into (s, vars) ->
      (* database read: results are unknown at analysis time *)
      List.iter (fun v -> Hashtbl.replace env v None) vars;
      select_rows t env sv s
  | P_if (branches, else_body) ->
      (* both arms, with variable states merged pessimistically *)
      let arms =
        List.map (fun (_, body) -> body) branches @ [ else_body ]
      in
      let results =
        List.map
          (fun body ->
            let env_copy = Hashtbl.copy env in
            let rows = pstmts_rows t env_copy sv body nondet in
            (env_copy, rows))
          arms
      in
      (* merge variable environments: differing values become unknown *)
      let all_keys =
        List.concat_map
          (fun (e, _) -> Hashtbl.fold (fun k _ acc -> k :: acc) e [])
          results
        |> List.sort_uniq compare
      in
      List.iter
        (fun k ->
          let vals =
            List.map
              (fun (e, _) -> match Hashtbl.find_opt e k with Some v -> v | None -> None)
              results
          in
          let merged =
            match vals with
            | [] -> None
            | v :: rest -> if List.for_all (fun x -> x = v) rest then v else None
          in
          Hashtbl.replace env k merged)
        all_keys;
      List.fold_left (fun acc (_, rows) -> merge_rows acc rows) [] results
  | P_while (_, body) ->
      (* loop: assigned variables are unknown across iterations *)
      let assigned = ref [] in
      let rec scan ps =
        List.iter
          (fun p ->
            match p with
            | P_set (v, _) | P_declare (v, _, _) -> assigned := v :: !assigned
            | P_select_into (_, vars) -> assigned := vars @ !assigned
            | P_if (bs, eb) ->
                List.iter (fun (_, b) -> scan b) bs;
                scan eb
            | P_while (_, b) -> scan b
            | _ -> ())
          ps
      in
      scan body;
      List.iter (fun v -> Hashtbl.replace env v None) !assigned;
      pstmts_rows t env sv body nondet
  | P_leave _ | P_signal _ -> []

and trigger_rows t sv table event nondet : entry_rows =
  List.fold_left
    (fun acc (trig : Uv_db.Catalog.trigger) ->
      let env : penv = Hashtbl.create 4 in
      merge_rows acc (pstmts_rows t env sv trig.Uv_db.Catalog.trig_body nondet))
    []
    (Schema_view.triggers_for sv table event)

let of_entry t sv stmt nondet =
  let env : penv = Hashtbl.create 4 in
  let base = stmt_rows t env sv stmt nondet in
  (* top-level DML also fires triggers *)
  let trig =
    match stmt with
    | Insert { table; _ } -> trigger_rows t sv table Ev_insert nondet
    | Update { table; _ } -> trigger_rows t sv table Ev_update nondet
    | Delete { table; _ } -> trigger_rows t sv table Ev_delete nondet
    | _ -> []
  in
  merge_rows base trig

(* ------------------------------------------------------------------ *)
(* Overlap predicates                                                   *)
(* ------------------------------------------------------------------ *)

let overlaps t table (earlier : taccess) kind (later : taccess) =
  let dims_e = Array.length earlier and dims_l = Array.length later in
  if dims_e <> dims_l then true (* shape mismatch: be conservative *)
  else begin
    let dims =
      (* dimension column names for canonicalisation; we only have the
         index here, so use positional pseudo-names *)
      Array.init dims_e (fun i -> "#" ^ string_of_int i)
    in
    ignore dims;
    let dim_names =
      match List.assoc_opt table t.config.ri_columns with
      | Some ds when List.length ds = dims_e -> Array.of_list ds
      | _ -> Array.init dims_e (fun i -> "#" ^ string_of_int i)
    in
    let pair_overlap a b =
      let ok = ref true in
      Array.iteri
        (fun i dim ->
          if !ok && not (rs_overlap t table dim (a i) (b i)) then ok := false)
        dim_names;
      !ok
    in
    match kind with
    | `W_then_R -> pair_overlap (fun i -> earlier.(i).dw) (fun i -> later.(i).dr)
    | `Any_conflict ->
        pair_overlap (fun i -> earlier.(i).dw) (fun i -> later.(i).dr)
        || pair_overlap (fun i -> earlier.(i).dr) (fun i -> later.(i).dw)
        || pair_overlap (fun i -> earlier.(i).dw) (fun i -> later.(i).dw)
  end

let pp_riset fmt = function
  | Any -> Format.pp_print_string fmt "*"
  | Vals s ->
      Format.fprintf fmt "{%s}" (String.concat "," (Vset.elements s))

let pp_access fmt (a : taccess) =
  Array.iteri
    (fun i d ->
      if i > 0 then Format.pp_print_string fmt "; ";
      Format.fprintf fmt "r=%a w=%a" pp_riset d.dr pp_riset d.dw)
    a
