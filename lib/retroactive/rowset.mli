(** Row-wise read/write sets (§4.3, Appendix Table B).

    Each table has one or more configured RI (row-identifier) columns —
    dimensions. A statement's row-wise access per table is, per dimension,
    either a concrete set of values or the wildcard [Any]. Two accesses to
    the same table overlap iff *every* dimension overlaps (multi-dimensional
    AND semantics); [Any] overlaps everything.

    The extractor:
    - pulls equality / IN constraints on RI columns out of WHERE clauses
      (AND intersects, OR unions, anything else degrades to [Any]);
    - resolves alias-column constraints through the alias map learned from
      INSERTs (§4.3 "Alias RI Column");
    - canonicalises values through the merge map maintained when an UPDATE
      rewrites an RI value (§4.3 "Merging RI values");
    - partially evaluates CALL/TRANSACTION bodies, binding procedure
      parameters to the call's literal arguments and treating database
      reads (SELECT INTO) as unknown — unknown RI expressions degrade to
      [Any], matching the paper's "concretized at retroactive time or
      wildcard" rule. *)

open Uv_sql

module Vset : Set.S with type elt = string
(** Sets of serialized values. *)

type riset = Any | Vals of Vset.t

type dim_access = { dr : riset; dw : riset }

type taccess = dim_access array
(** One slot per configured RI dimension of the table. *)

type entry_rows = (string * taccess) list
(** Table name -> access. At most one element per table. *)

type config = {
  ri_columns : (string * string list) list;
      (** table -> RI columns (dimensions). Tables not listed default to
          their primary-key column, or a single always-[Any] dimension. *)
  ri_aliases : (string * string * string) list;
      (** (table, alias_column, ri_column) alias declarations (§D). *)
}

val default_config : config

type t
(** Mutable extraction state: alias maps and RI merge (union-find). *)

val create : config -> t

val seed_aliases : t -> Uv_db.Catalog.t -> unit
(** Learn alias-column mappings from rows already in the database when
    logging began (the checkpoint): for each declared (table, alias_col,
    ri_col), map every existing row's alias value to its RI value. *)

val ri_dims : t -> Schema_view.t -> string -> string list
(** The RI dimensions used for a table. *)

val merge_rows : entry_rows -> entry_rows -> entry_rows
(** Per-table, per-dimension union of two accesses. *)

val of_entry : t -> Schema_view.t -> Ast.stmt -> Value.t list -> entry_rows
(** Row-wise access of one statement. The [Value.t list] is the entry's
    recorded non-determinism (AUTO_INCREMENT keys are recovered from it).
    This *also* updates alias and merge state, so entries must be fed in
    commit order. *)

val canonical : t -> string -> string -> string -> string
(** [canonical t table dim v] resolves a serialized value through the
    merge map. *)

val merge_generation : t -> int
(** Monotone counter of union-find links added by [of_entry]. The
    incremental analyzer re-canonicalises its value-bucket indexes only
    when this moved since they were built; merge roots are write-once
    (only current roots gain parents), so untouched buckets stay
    correct. *)

val overlaps : t -> string -> taccess -> [ `W_then_R | `Any_conflict ] ->
  taccess -> bool
(** [overlaps t table earlier kind later]: does the earlier access's write
    set meet the later access's read set ([`W_then_R], the dependency
    rule) — or do they conflict in any read-write/write-read/write-write
    way ([`Any_conflict], the replay-scheduler rule)? *)

val pp_access : Format.formatter -> taccess -> unit
