open Uv_sql
open Ast
module Colset = Set.Make (String)

type rw = { r : Colset.t; w : Colset.t }

let empty = { r = Colset.empty; w = Colset.empty }

let union a b = { r = Colset.union a.r b.r; w = Colset.union a.w b.w }

let add_r key rw = { rw with r = Colset.add key rw.r }

let schema_key name = Schema.schema_column name

(* Qualify every column of a table/view source. For a view we expand to
   the parent tables the view reads, so writers of those columns connect
   to readers of the view. *)
let rec source_read_columns sv name =
  match Schema_view.table_columns sv name with
  | Some cols ->
      Colset.of_list (schema_key name :: List.map (Schema.qualified name) cols)
  | None -> (
      match Schema_view.view sv name with
      | Some q -> Colset.add (schema_key name) (select_reads sv q)
      | None ->
          (* Unknown source (e.g. table created later in a procedure):
             fall back to the schema column only. *)
          Colset.singleton (schema_key name))

(* All columns named [col] across candidate sources; if we cannot place
   an unqualified column we attribute it to every source (conservative). *)
and resolve_column sv sources qual col =
  let qualify table col =
    (* a view column expands to everything the view reads *)
    if Schema_view.is_view sv table then
      match Schema_view.view sv table with
      | Some q -> Colset.add (schema_key table) (select_reads sv q)
      | None -> Colset.singleton (Schema.qualified table col)
    else Colset.singleton (Schema.qualified table col)
  in
  match qual with
  | Some q -> (
      (* The qualifier is an alias or table name; map alias -> table. *)
      match List.assoc_opt q sources with
      | Some table -> qualify table col
      | None -> qualify q col)
  | None ->
      let hits =
        List.filter_map
          (fun (_, table) ->
            match Schema_view.table_columns sv table with
            | Some cols when List.mem col cols ->
                Some (Colset.singleton (Schema.qualified table col))
            | _ -> (
                match Schema_view.view sv table with
                | Some q -> Some (Colset.add (schema_key table) (select_reads sv q))
                | None -> None))
          sources
      in
      if hits <> [] then List.fold_left Colset.union Colset.empty hits
      else
        (* No source claims it: attribute to all sources. *)
        Colset.of_list
          (List.map (fun (_, table) -> Schema.qualified table col) sources)

and expr_reads sv sources e =
  match e with
  | Col (Some ("NEW" | "OLD"), _) -> Colset.empty (* trigger row, not a table *)
  | Col (_, "*") ->
      (* a COUNT star argument reads every column of every source *)
      List.fold_left
        (fun acc (_, table) -> Colset.union acc (source_read_columns sv table))
        Colset.empty sources
  | Col (qual, col) -> resolve_column sv sources qual col
  | Subselect s | Exists s -> select_reads sv s
  | e ->
      (* default: union over the immediate subexpressions *)
      List.fold_left
        (fun acc c -> Colset.union acc (expr_reads sv sources c))
        Colset.empty (Visit.expr_children e)

and select_sources (s : select) =
  let base =
    match s.sel_from with
    | Some (t, alias) -> [ (Option.value alias ~default:t, t) ]
    | None -> []
  in
  base
  @ List.map
      (fun j -> (Option.value j.join_alias ~default:j.join_table, j.join_table))
      s.sel_joins

and select_reads sv (s : select) =
  let sources = select_sources s in
  (* _S keys + full source columns only when projecting *; otherwise the
     schema key plus exactly the referenced columns. *)
  let schema_keys =
    Colset.of_list (List.map (fun (_, t) -> schema_key t) sources)
  in
  let star =
    if List.exists (function Star -> true | _ -> false) s.sel_items then
      List.fold_left
        (fun acc (_, t) -> Colset.union acc (source_read_columns sv t))
        Colset.empty sources
    else Colset.empty
  in
  (* projected items, join conditions, WHERE, GROUP BY, HAVING, ORDER BY *)
  let clause_reads =
    List.fold_left
      (fun acc e -> Colset.union acc (expr_reads sv sources e))
      Colset.empty (Visit.select_exprs s)
  in
  (* FOREIGN KEY remark of Table A: reading a table via FK columns also
     reads the referenced external columns. *)
  let fk =
    List.fold_left
      (fun acc (_, t) ->
        List.fold_left
          (fun acc (_, ftbl, fcol) -> Colset.add (Schema.qualified ftbl fcol) acc)
          acc
          (Schema_view.foreign_keys sv t))
      Colset.empty sources
  in
  List.fold_left Colset.union schema_keys [ star; clause_reads; fk ]

(* Columns a write statement targets on a table, expanding views to their
   parent table (updatable views, §4.2). Returns (real_table, rw). *)
let rec write_target sv name =
  match Schema_view.view sv name with
  | Some q -> (
      match q.sel_from with
      | Some (parent, _) ->
          let parent_tbl, extra = write_target sv parent in
          (parent_tbl, Colset.add (schema_key name) extra)
      | None -> (name, Colset.empty))
  | None -> (name, Colset.empty)

(* FK columns in other tables that reference any of [cols] of [table]
   (Table A: UPDATE/DELETE write-set addendum). *)
let referencing_fk_columns sv table cols =
  List.fold_left
    (fun acc (rtbl, rcol, refd_col) ->
      if Colset.mem (Schema.qualified table refd_col) cols then
        Colset.add (Schema.qualified rtbl rcol) acc
      else acc)
    Colset.empty
    (Schema_view.referencing_tables sv table)

let all_columns_of sv table =
  match Schema_view.table_columns sv table with
  | Some cols -> Colset.of_list (List.map (Schema.qualified table) cols)
  | None -> Colset.empty

(* Trigger bodies fired by a write on [table]. *)
let rec trigger_rw sv table event =
  List.fold_left
    (fun acc (trig : Uv_db.Catalog.trigger) ->
      let body_rw = pstmts_rw sv trig.Uv_db.Catalog.trig_body in
      let acc = union acc body_rw in
      add_r (schema_key trig.Uv_db.Catalog.trig_name) acc)
    empty
    (Schema_view.triggers_for sv table event)

and stmt_rw sv (s : stmt) : rw =
  match s with
  | Create_table { name; columns; _ } ->
      let fk_reads =
        List.filter_map (fun (c : Schema.column) -> c.Schema.references) columns
        |> List.map (fun (t, _) -> schema_key t)
      in
      {
        r = Colset.of_list (schema_key name :: fk_reads);
        w = Colset.singleton (schema_key name);
      }
  | Drop_table { name; _ } | Truncate_table name ->
      { r = Colset.singleton (schema_key name); w = Colset.singleton (schema_key name) }
  | Alter_table (name, action) ->
      let extra =
        match action with
        | Add_column { Schema.references = Some (t, _); _ } -> [ schema_key t ]
        | Rename_table n2 -> [ schema_key n2 ]
        | _ -> []
      in
      {
        r = Colset.of_list (schema_key name :: extra);
        w =
          Colset.of_list
            (schema_key name
            :: (match action with Rename_table n2 -> [ schema_key n2 ] | _ -> []));
      }
  | Create_view { name; query; _ } ->
      let sources = select_sources query in
      {
        r =
          Colset.of_list
            (schema_key name :: List.map (fun (_, t) -> schema_key t) sources);
        w = Colset.singleton (schema_key name);
      }
  | Drop_view name ->
      { r = Colset.singleton (schema_key name); w = Colset.singleton (schema_key name) }
  | Create_index { table; _ } | Drop_index { table; _ } ->
      let fk_reads =
        List.map (fun (_, t, _) -> schema_key t) (Schema_view.foreign_keys sv table)
      in
      {
        r = Colset.of_list (schema_key table :: fk_reads);
        w = Colset.singleton (schema_key table);
      }
  | Create_procedure { name; _ } | Drop_procedure name ->
      { r = Colset.singleton (schema_key name); w = Colset.singleton (schema_key name) }
  | Create_trigger { name; table; _ } ->
      {
        r = Colset.of_list [ schema_key name; schema_key table ];
        w = Colset.singleton (schema_key name);
      }
  | Drop_trigger name ->
      { r = Colset.singleton (schema_key name); w = Colset.singleton (schema_key name) }
  | Select sel -> { r = select_reads sv sel; w = Colset.empty }
  | Insert { table; columns = _; values } ->
      let real, view_extra = write_target sv table in
      let w = all_columns_of sv real in
      let inner =
        List.fold_left
          (fun acc row ->
            List.fold_left
              (fun acc e -> Colset.union acc (expr_reads sv [ (real, real) ] e))
              acc row)
          Colset.empty values
      in
      let auto =
        match Schema_view.auto_increment_column sv real with
        | Some c -> Colset.singleton (Schema.qualified real c)
        | None -> Colset.empty
      in
      let fk =
        List.fold_left
          (fun acc (_, ftbl, fcol) -> Colset.add (Schema.qualified ftbl fcol) acc)
          Colset.empty
          (Schema_view.foreign_keys sv real)
      in
      let base =
        {
          r =
            List.fold_left Colset.union
              (Colset.singleton (schema_key real))
              [ inner; auto; fk ];
          w = Colset.union w view_extra;
        }
      in
      union base (trigger_rw sv real Ev_insert)
  | Insert_select { table; columns = _; query } ->
      (* like INSERT, but the row values are the query's reads *)
      let real, view_extra = write_target sv table in
      let w = all_columns_of sv real in
      let inner = select_reads sv query in
      let auto =
        match Schema_view.auto_increment_column sv real with
        | Some c -> Colset.singleton (Schema.qualified real c)
        | None -> Colset.empty
      in
      let fk =
        List.fold_left
          (fun acc (_, ftbl, fcol) -> Colset.add (Schema.qualified ftbl fcol) acc)
          Colset.empty
          (Schema_view.foreign_keys sv real)
      in
      let base =
        {
          r =
            List.fold_left Colset.union
              (Colset.singleton (schema_key real))
              [ inner; auto; fk ];
          w = Colset.union w view_extra;
        }
      in
      union base (trigger_rw sv real Ev_insert)
  | Update { table; assigns; where } ->
      let real, view_extra = write_target sv table in
      let sources = [ (real, real) ] in
      let written =
        Colset.of_list (List.map (fun (c, _) -> Schema.qualified real c) assigns)
      in
      let assign_reads =
        List.fold_left
          (fun acc (_, e) -> Colset.union acc (expr_reads sv sources e))
          Colset.empty assigns
      in
      let where_reads =
        match where with
        | Some w -> expr_reads sv sources w
        | None -> Colset.empty
      in
      let fk_reads =
        List.fold_left
          (fun acc (_, ftbl, fcol) -> Colset.add (Schema.qualified ftbl fcol) acc)
          Colset.empty
          (Schema_view.foreign_keys sv real)
      in
      let fk_writes = referencing_fk_columns sv real written in
      let base =
        {
          r =
            List.fold_left Colset.union
              (Colset.singleton (schema_key real))
              [ assign_reads; where_reads; fk_reads ];
          w = List.fold_left Colset.union written [ fk_writes; view_extra ];
        }
      in
      union base (trigger_rw sv real Ev_update)
  | Delete { table; where } ->
      let real, view_extra = write_target sv table in
      let sources = [ (real, real) ] in
      let written = all_columns_of sv real in
      let where_reads =
        match where with
        | Some w -> expr_reads sv sources w
        | None -> Colset.empty
      in
      let fk_reads =
        List.fold_left
          (fun acc (_, ftbl, fcol) -> Colset.add (Schema.qualified ftbl fcol) acc)
          Colset.empty
          (Schema_view.foreign_keys sv real)
      in
      let fk_writes = referencing_fk_columns sv real written in
      let base =
        {
          r =
            Colset.union
              (Colset.add (schema_key real) where_reads)
              fk_reads;
          w = List.fold_left Colset.union written [ fk_writes; view_extra ];
        }
      in
      union base (trigger_rw sv real Ev_delete)
  | Call (name, args) ->
      let arg_reads =
        List.fold_left
          (fun acc e -> Colset.union acc (expr_reads sv [] e))
          Colset.empty args
      in
      let body =
        match Schema_view.procedure sv name with
        | Some proc -> pstmts_rw sv proc.Uv_db.Catalog.proc_body
        | None -> empty
      in
      add_r (schema_key name) (union { r = arg_reads; w = Colset.empty } body)
  | Transaction stmts ->
      List.fold_left (fun acc s -> union acc (stmt_rw sv s)) empty stmts

and pstmts_rw sv body =
  List.fold_left (fun acc p -> union acc (pstmt_rw sv p)) empty body

and pstmt_rw sv (p : pstmt) : rw =
  match p with
  | P_stmt s -> stmt_rw sv s
  | P_declare (_, _, Some e) -> { r = expr_reads sv [] e; w = Colset.empty }
  | P_declare (_, _, None) -> empty
  | P_set (_, e) -> { r = expr_reads sv [] e; w = Colset.empty }
  | P_select_into (s, _) -> { r = select_reads sv s; w = Colset.empty }
  | P_if (branches, else_body) ->
      (* Both arms merged: control direction depends on runtime state. *)
      let arms =
        List.fold_left
          (fun acc (cond, body) ->
            union acc
              (union { r = expr_reads sv [] cond; w = Colset.empty } (pstmts_rw sv body)))
          empty branches
      in
      union arms (pstmts_rw sv else_body)
  | P_while (cond, body) ->
      union { r = expr_reads sv [] cond; w = Colset.empty } (pstmts_rw sv body)
  | P_leave _ | P_signal _ -> empty

let of_stmt sv s = stmt_rw sv s

let of_select sv s = select_reads sv s

let pp fmt rw =
  Format.fprintf fmt "R={%s} W={%s}"
    (String.concat ", " (Colset.elements rw.r))
    (String.concat ", " (Colset.elements rw.w))
