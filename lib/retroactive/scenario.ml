
type t = {
  scn_name : string;
  eng : Uv_db.Engine.t;
  scn_parent : t option;
  mutable scn_children : t list;
  ri_config : Rowset.config;
  base : Uv_db.Catalog.t option;
}

let root ?(name = "root") ?base ?(ri_config = Rowset.default_config) eng =
  { scn_name = name; eng; scn_parent = None; scn_children = []; ri_config; base }

let name t = t.scn_name
let parent t = t.scn_parent
let children t = List.rev t.scn_children

let rec depth t = match t.scn_parent with None -> 0 | Some p -> 1 + depth p

let engine t = t.eng

let history_length t = Uv_db.Log.length (Uv_db.Engine.log t.eng)

let db_hash t = Uv_db.Engine.db_hash t.eng

let query t sel = Uv_db.Engine.query t.eng sel

let query_sql t sql = Uv_db.Engine.query_sql t.eng sql

let branch ?name ?config t (target : Analyzer.target) =
  let analyzer =
    Analyzer.analyze ~config:t.ri_config ?base:t.base (Uv_db.Engine.log t.eng)
  in
  let out = Whatif.run_exn ?config ~analyzer t.eng target in
  let child_cat = Uv_db.Catalog.snapshot (Uv_db.Engine.catalog t.eng) in
  Uv_db.Catalog.copy_tables_into out.Whatif.temp_catalog ~into:child_cat
    out.Whatif.replay.Analyzer.mutated;
  let child_eng =
    Uv_db.Engine.of_catalog ~log:(Uv_db.Log.copy out.Whatif.new_log) child_cat
  in
  let child_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "%s/#%d" t.scn_name (List.length t.scn_children + 1)
  in
  let child =
    {
      scn_name = child_name;
      eng = child_eng;
      scn_parent = Some t;
      scn_children = [];
      ri_config = t.ri_config;
      base = t.base;
    }
  in
  t.scn_children <- child :: t.scn_children;
  (child, out)

let branch_seq ?name ?config t targets =
  let ordered =
    List.sort
      (fun (a : Analyzer.target) (b : Analyzer.target) ->
        compare b.Analyzer.tau a.Analyzer.tau)
      targets
  in
  let scenario = ref t and outcomes = ref [] in
  List.iter
    (fun target ->
      let child, out = branch ?config !scenario target in
      (* unregister the intermediate from its parent to keep the tree tidy *)
      (match child.scn_parent with
      | Some p -> p.scn_children <- List.filter (fun c -> c != child) p.scn_children
      | None -> ());
      scenario := child;
      outcomes := out :: !outcomes)
    ordered;
  let final = !scenario in
  let named =
    match name with
    | Some n -> { final with scn_name = n; scn_parent = Some t }
    | None -> { final with scn_parent = Some t }
  in
  t.scn_children <- named :: t.scn_children;
  (named, List.rev !outcomes)

let rec lineage t =
  match t.scn_parent with
  | None -> [ t.scn_name ]
  | Some p -> lineage p @ [ t.scn_name ]

let rec pp_tree fmt t =
  Format.fprintf fmt "%s%s (%d statements, hash %Lx)@."
    (String.make (2 * depth t) ' ')
    t.scn_name (history_length t) (db_hash t);
  List.iter (pp_tree fmt) (children t)
