(* Thin wrapper: the DAG construction and list scheduling live in
   Conflict_dag, shared with Cc_schedule and Wave_exec. *)

let makespan ~entries ~edges ~weight ~workers =
  match entries with
  | [] -> 0.0
  | _ ->
      let dag = Conflict_dag.build ~nodes:entries ~edges in
      Conflict_dag.makespan dag ~weight ~workers

let speedup ~serial ~parallel = if parallel <= 0.0 then 1.0 else serial /. parallel
