open Uv_sql
open Ast

type t = {
  tables : (string, Schema.table) Hashtbl.t;
  views : (string, Ast.select) Hashtbl.t;
  procs : (string, Uv_db.Catalog.procedure) Hashtbl.t;
  trigs : (string, Uv_db.Catalog.trigger) Hashtbl.t;
}

let create () =
  {
    tables = Hashtbl.create 16;
    views = Hashtbl.create 8;
    procs = Hashtbl.create 8;
    trigs = Hashtbl.create 8;
  }

let of_catalog cat =
  let t = create () in
  List.iter
    (fun (name, tbl) -> Hashtbl.replace t.tables name (Uv_db.Storage.schema tbl))
    (Uv_db.Catalog.tables cat);
  List.iter
    (fun name ->
      match Uv_db.Catalog.view cat name with
      | Some sel -> Hashtbl.replace t.views name sel
      | None -> ())
    (Uv_db.Catalog.view_names cat);
  List.iter
    (fun name ->
      match Uv_db.Catalog.procedure cat name with
      | Some p -> Hashtbl.replace t.procs name p
      | None -> ())
    (Uv_db.Catalog.procedure_names cat);
  (* triggers: catalog indexes by table+event; enumerate over tables *)
  List.iter
    (fun (tname, _) ->
      List.iter
        (fun ev ->
          List.iter
            (fun (tr : Uv_db.Catalog.trigger) ->
              Hashtbl.replace t.trigs tr.Uv_db.Catalog.trig_name tr)
            (Uv_db.Catalog.triggers_for cat tname ev))
        [ Ev_insert; Ev_update; Ev_delete ])
    (Uv_db.Catalog.tables cat);
  t

let rec apply t (s : stmt) =
  match s with
  | Create_table { name; columns; _ } ->
      Hashtbl.replace t.tables name (Schema.table name columns)
  | Drop_table { name; _ } -> Hashtbl.remove t.tables name
  | Truncate_table _ -> ()
  | Alter_table (name, action) -> (
      match Hashtbl.find_opt t.tables name with
      | None -> ()
      | Some sch -> (
          match action with
          | Add_column c ->
              Hashtbl.replace t.tables name
                { sch with Schema.tbl_columns = sch.Schema.tbl_columns @ [ c ] }
          | Drop_column cname ->
              Hashtbl.replace t.tables name
                {
                  sch with
                  Schema.tbl_columns =
                    List.filter
                      (fun (c : Schema.column) ->
                        not (String.equal c.Schema.col_name cname))
                      sch.Schema.tbl_columns;
                }
          | Rename_table n2 ->
              Hashtbl.remove t.tables name;
              Hashtbl.replace t.tables n2 { sch with Schema.tbl_name = n2 }
          | Set_auto_increment _ ->
              (* counter pin: no schema shape change *)
              ()))
  | Create_view { name; query; _ } -> Hashtbl.replace t.views name query
  | Drop_view name -> Hashtbl.remove t.views name
  | Create_procedure { name; params; label; body } ->
      Hashtbl.replace t.procs name
        {
          Uv_db.Catalog.proc_name = name;
          proc_params = params;
          proc_label = label;
          proc_body = body;
        }
  | Drop_procedure name -> Hashtbl.remove t.procs name
  | Create_trigger { name; timing; event; table; body } ->
      Hashtbl.replace t.trigs name
        {
          Uv_db.Catalog.trig_name = name;
          trig_timing = timing;
          trig_event = event;
          trig_table = table;
          trig_body = body;
        }
  | Drop_trigger name -> Hashtbl.remove t.trigs name
  | Transaction stmts -> List.iter (apply t) stmts
  | Create_index _ | Drop_index _ | Select _ | Insert _ | Insert_select _ | Update _ | Delete _
  | Call _ ->
      ()

let build ?base iter =
  let t = match base with Some cat -> of_catalog cat | None -> create () in
  iter (apply t);
  t

let of_log ?base log ~upto =
  build ?base (fun apply ->
      let i = ref 1 in
      Uv_db.Log.iter log (fun e ->
          if !i < upto then apply e.Uv_db.Log.stmt;
          incr i))

let table_schema t name = Hashtbl.find_opt t.tables name

let table_columns t name =
  Option.map Schema.column_names (table_schema t name)

let view t name = Hashtbl.find_opt t.views name
let procedure t name = Hashtbl.find_opt t.procs name

let triggers_for t table event =
  Hashtbl.fold
    (fun _ (trig : Uv_db.Catalog.trigger) acc ->
      if String.equal trig.Uv_db.Catalog.trig_table table && trig.trig_event = event
      then trig :: acc
      else acc)
    t.trigs []
  |> List.sort (fun (a : Uv_db.Catalog.trigger) b -> compare a.trig_name b.trig_name)

let is_view t name = Hashtbl.mem t.views name
let is_table t name = Hashtbl.mem t.tables name

let auto_increment_column t name =
  Option.bind (table_schema t name) Schema.auto_increment_column

let foreign_keys t name =
  match table_schema t name with None -> [] | Some sch -> Schema.foreign_keys sch

let referencing_tables t name =
  Hashtbl.fold
    (fun tname sch acc ->
      List.fold_left
        (fun acc (local, ftbl, fcol) ->
          if String.equal ftbl name then (tname, local, fcol) :: acc else acc)
        acc (Schema.foreign_keys sch))
    t.tables []
  |> List.sort compare

let copy t =
  {
    tables = Hashtbl.copy t.tables;
    views = Hashtbl.copy t.views;
    procs = Hashtbl.copy t.procs;
    trigs = Hashtbl.copy t.trigs;
  }
