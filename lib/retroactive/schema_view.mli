(** Schema-only replica maintained by scanning DDL statements in commit
    order.

    The query analyzer works offline over the statement log (§2), so it
    cannot ask the live database for schema information — instead it
    rebuilds just the schema surface (tables, views, procedures, triggers)
    by applying each DDL statement it encounters. *)

open Uv_sql

type t

val create : unit -> t

val of_catalog : Uv_db.Catalog.t -> t
(** Seed the view from a live catalog — the schema state at the start of
    the analysed history (checkpoint databases populated before logging
    began). *)

val apply : t -> Ast.stmt -> unit
(** Apply the schema effects of a statement (non-DDL statements are
    no-ops, except INSERT bumping nothing — data is never tracked). *)

val build : ?base:Uv_db.Catalog.t -> ((Ast.stmt -> unit) -> unit) -> t
(** Fold-style constructor: [build iter] seeds a view from [base] (or
    empty) and hands [iter] an apply function to feed statements in
    commit order — the streaming path for histories too large to
    materialize ({!of_log} is [build] over {!Uv_db.Log.iter}; a
    segmented store streams one segment at a time through the same
    hook). *)

val of_log : ?base:Uv_db.Catalog.t -> Uv_db.Log.t -> upto:int -> t
(** Schema state just before the entry with 1-based commit index [upto]
    executes: [base] (or empty) advanced over entries [1 .. upto-1].
    Shared by the analyzer's τ-time reconstruction and the static lint
    passes' target validation. *)

val table_columns : t -> string -> string list option
val table_schema : t -> string -> Schema.table option
val view : t -> string -> Ast.select option
val procedure : t -> string -> Uv_db.Catalog.procedure option
val triggers_for : t -> string -> Ast.trigger_event -> Uv_db.Catalog.trigger list
val is_view : t -> string -> bool
val is_table : t -> string -> bool

val auto_increment_column : t -> string -> string option

val foreign_keys : t -> string -> (string * string * string) list
(** [(local_col, foreign_table, foreign_col)] for a table. *)

val referencing_tables : t -> string -> (string * string * string) list
(** Tables whose FOREIGN KEYs point *at* the given table:
    [(referencing_table, referencing_col, referenced_col)]. *)

val copy : t -> t
