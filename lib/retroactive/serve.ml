(* The serve daemon. See serve.mli for the protocol contract.

   Domain layout: one accept domain, one reader domain per accepted
   connection, [config.workers] what-if workers behind a bounded
   Domain_pool.Queue. Cheap requests (ping / stats / metrics / ingest)
   are answered on the connection's own domain — ingest deliberately
   so, since it takes the service's writer side and must not occupy a
   what-if worker slot while waiting for readers to drain. *)

module J = Uv_obs.Json
module Report = Uv_obs.Report
module Frame_io = Uv_util.Frame_io
module Queue_pool = Uv_util.Domain_pool.Queue

let schema = "uv.serve/1"

type addr = Unix_sock of string | Tcp of string * int

type config = {
  workers : int;
  queue_capacity : int;
  max_clients : int;
  max_frame : int;
  default_deadline_ms : float option;
}

let default_config =
  {
    workers = 4;
    queue_capacity = 32;
    max_clients = 32;
    max_frame = 1 lsl 20;
    default_deadline_ms = None;
  }

(* network-grade parser bounds: a hostile frame can neither recurse the
   parser off the stack nor balloon one string past the frame cap *)
let json_limits cfg =
  { J.max_bytes = cfg.max_frame; max_depth = 64; max_string = cfg.max_frame }

type conn = {
  fd : Unix.file_descr;
  wmutex : Mutex.t; (* one frame at a time, pipelined replies intact *)
  mutable alive : bool;
  in_flight : int Atomic.t;
      (* what-if jobs on the worker pool still holding this conn: the
         reader domain must not close the fd (and risk the number being
         reused) while a worker could still write a response to it *)
}

type t = {
  svc : Whatif.Service.t;
  cfg : config;
  obs : Uv_obs.Trace.t;
  durable : Durable.t option;
      (* when attached, acked ingest batches are fsynced (group commit)
         before the ack frame leaves the daemon *)
  listener : Unix.file_descr;
  sockaddr : Unix.sockaddr; (* for the self-connect shutdown poke *)
  sock_path : string option; (* unlinked on stop *)
  pool : Queue_pool.t;
  lock : Mutex.t;
  stop_cond : Condition.t;
  mutable stopping : bool;
  mutable stopped : bool;
  mutable conns : conn list;
  mutable handlers : unit Domain.t list;
  mutable accept_d : unit Domain.t option;
  mutable avg_run_ms : float; (* EWMA of completed what-if wall time *)
  started_ms : float;
  requests : int Atomic.t;
  whatifs : int Atomic.t;
  ingests : int Atomic.t;
  rejected : int Atomic.t; (* admission-control refusals *)
  shed : int Atomic.t; (* deadline-aware admission rejections *)
  deadline_hits : int Atomic.t;
  bad_requests : int Atomic.t;
}

let service t = t.svc
let obs t = t.obs

let port t =
  match Unix.getsockname t.listener with
  | Unix.ADDR_INET (_, p) -> Some p
  | _ -> None

(* ---------- response shapes ---------- *)

let ok_payload ~id ~typ result =
  J.Obj [ ("id", id); ("ok", J.Bool true); ("type", J.Str typ); ("result", result) ]

let err_payload ~id ~typ ~code ?retry_after_ms ?phase message =
  let err =
    [ ("code", J.Str code); ("message", J.Str message) ]
    @ (match retry_after_ms with
      | Some ms -> [ ("retry_after_ms", J.Float ms) ]
      | None -> [])
    @ match phase with Some p -> [ ("phase", J.Str p) ] | None -> []
  in
  J.Obj
    [ ("id", id); ("ok", J.Bool false); ("type", J.Str typ); ("error", J.Obj err) ]

let send conn payload =
  let s = Report.to_string ~schema payload in
  Mutex.lock conn.wmutex;
  if conn.alive then (
    match Frame_io.write_frame conn.fd s with
    | () -> ()
    | exception _ -> conn.alive <- false);
  Mutex.unlock conn.wmutex

(* ---------- what-if execution ---------- *)

(* the per-request config: the service's knobs with the remaining
   deadline budget swapped in *)
let config_with_deadline base deadline_ms =
  let module C = Whatif.Config in
  C.make ~mode:(C.mode base) ~workers:(C.workers base)
    ~hash_jumper:(C.hash_jumper base) ~grouped:(C.grouped base)
    ~parallel_exec:(C.parallel_exec base) ~obs:(C.obs base) ?deadline_ms
    ~fault:(C.fault base) ~checkpoint_every:(C.checkpoint_every base)
    ~plans:(C.plans base) ()

let whatif_result (r : Whatif.Service.reply) =
  let o = r.Whatif.Service.outcome in
  J.Obj
    [
      ("history_len", J.Int r.Whatif.Service.history_len);
      ("replay_set", J.Int o.Whatif.replay.Analyzer.member_count);
      ("replayed", J.Int o.Whatif.replayed);
      ("undone", J.Int o.Whatif.undone);
      ("failed_replays", J.Int o.Whatif.failed_replays);
      ("real_ms", J.Float o.Whatif.real_ms);
      ("workers", J.Int o.Whatif.workers);
      ("waves", J.Int o.Whatif.exec_waves);
      ("changed", J.Bool o.Whatif.changed);
      ("rollback_strategy", J.Str o.Whatif.rollback_strategy);
      ("plans_used", J.Int o.Whatif.plans_used);
      ("final_db_hash", J.Str (Printf.sprintf "%Lx" o.Whatif.final_db_hash));
    ]

let error_code (e : Whatif.Error.t) =
  match e.Whatif.Error.code with
  | Whatif.Error.Deadline -> "deadline"
  | Whatif.Error.Fault -> "fault"
  | Whatif.Error.Internal -> "internal"

(* crude but monotone under load: the fuller the queue, the longer the
   suggested back-off *)
let retry_after_ms t = 5.0 *. float_of_int (1 + Queue_pool.pending t.pool)

(* EWMA of completed what-if wall time, the admission controller's cost
   model; the first sample seeds it directly *)
let note_run_ms t ms =
  Mutex.lock t.lock;
  t.avg_run_ms <- (if t.avg_run_ms = 0. then ms else (0.8 *. t.avg_run_ms) +. (0.2 *. ms));
  Mutex.unlock t.lock

let run_whatif t conn ~id ~deadline_ms ~enqueued_ms target =
  let elapsed = Uv_util.Clock.now_ms () -. enqueued_ms in
  let deadline =
    match deadline_ms with Some _ -> deadline_ms | None -> t.cfg.default_deadline_ms
  in
  match deadline with
  | Some d when elapsed >= d ->
      Atomic.incr t.deadline_hits;
      Uv_obs.Trace.incr t.obs "serve.deadline_exceeded";
      send conn
        (err_payload ~id ~typ:"whatif" ~code:"deadline" ~phase:"queue"
           (Printf.sprintf "budget of %.1f ms spent waiting in queue" d))
  | _ -> (
      let remaining = Option.map (fun d -> d -. elapsed) deadline in
      let config = config_with_deadline (Whatif.Service.config t.svc) remaining in
      match Whatif.Service.run ~config t.svc target with
      | Ok reply ->
          note_run_ms t reply.Whatif.Service.outcome.Whatif.real_ms;
          send conn (ok_payload ~id ~typ:"whatif" (whatif_result reply))
      | Error e ->
          let code = error_code e in
          if code = "deadline" then begin
            Atomic.incr t.deadline_hits;
            Uv_obs.Trace.incr t.obs "serve.deadline_exceeded"
          end;
          send conn
            (err_payload ~id ~typ:"whatif" ~code ~phase:e.Whatif.Error.phase
               e.Whatif.Error.message))

(* ---------- request parsing & dispatch ---------- *)

let parse_target j =
  match (J.member "tau" j, J.member "op" j) with
  | Some (J.Int tau), Some (J.Str op) -> (
      let stmt () =
        match J.member "stmt" j with
        | Some (J.Str s) -> (
            match Uv_sql.Parser.parse_stmt s with
            | stmt -> Ok stmt
            | exception _ -> Error (Printf.sprintf "unparsable stmt %S" s))
        | _ -> Error (Printf.sprintf "op %S requires a \"stmt\" string" op)
      in
      match op with
      | "remove" -> Ok { Analyzer.tau; op = Analyzer.Remove }
      | "add" ->
          Result.map (fun s -> { Analyzer.tau; op = Analyzer.Add s }) (stmt ())
      | "change" ->
          Result.map (fun s -> { Analyzer.tau; op = Analyzer.Change s }) (stmt ())
      | _ -> Error (Printf.sprintf "unknown op %S (remove | add | change)" op))
  | _ -> Error "whatif needs integer \"tau\" and string \"op\""

let stats_json t =
  let s = Whatif.Service.stats t.svc in
  J.Obj
    [
      ("uptime_ms", J.Float (Uv_util.Clock.now_ms () -. t.started_ms));
      ("history_len", J.Int (Whatif.Service.history_len t.svc));
      ("clients", J.Int (Mutex.protect t.lock (fun () -> List.length t.conns)));
      ("requests", J.Int (Atomic.get t.requests));
      ("whatifs", J.Int (Atomic.get t.whatifs));
      ("ingests", J.Int (Atomic.get t.ingests));
      ("rejected_saturated", J.Int (Atomic.get t.rejected));
      ("shed_admission", J.Int (Atomic.get t.shed));
      ("avg_run_ms", J.Float (Mutex.protect t.lock (fun () -> t.avg_run_ms)));
      ("deadline_exceeded", J.Int (Atomic.get t.deadline_hits));
      ("bad_requests", J.Int (Atomic.get t.bad_requests));
      ("queue_pending", J.Int (Queue_pool.pending t.pool));
      ("queue_capacity", J.Int (Queue_pool.capacity t.pool));
      ("queue_completed", J.Int (Queue_pool.completed t.pool));
      ("workers", J.Int (Queue_pool.workers t.pool));
      ( "service",
        J.Obj
          [
            ("runs", J.Int s.Whatif.Service.runs);
            ("analyzer_builds", J.Int s.Whatif.Service.analyzer_builds);
            ("analyzer_extends", J.Int s.Whatif.Service.analyzer_extends);
            ("analyzed_entries", J.Int s.Whatif.Service.analyzed_entries);
            ("plan_cache_size", J.Int s.Whatif.Service.plan_cache_size);
            ("plans_compiled", J.Int s.Whatif.Service.plans_compiled);
            ("plan_cache_hits", J.Int s.Whatif.Service.plan_cache_hits);
            ("checkpoint_rungs", J.Int s.Whatif.Service.checkpoint_rungs);
            ("ingested", J.Int s.Whatif.Service.ingested);
            ("publishes", J.Int s.Whatif.Service.publishes);
            ("sessions", J.Int s.Whatif.Service.sessions);
          ] );
    ]

let handle_request t conn j =
  Atomic.incr t.requests;
  Uv_obs.Trace.incr t.obs "serve.requests";
  let id = Option.value (J.member "id" j) ~default:J.Null in
  let typ =
    match J.member "type" j with Some (J.Str s) -> s | _ -> "unknown"
  in
  let bad message =
    Atomic.incr t.bad_requests;
    Uv_obs.Trace.incr t.obs "serve.bad_requests";
    send conn (err_payload ~id ~typ ~code:"bad_request" message)
  in
  if t.stopping && typ <> "ping" then
    send conn
      (err_payload ~id ~typ ~code:"shutting_down" "server is shutting down")
  else
    match typ with
    | "ping" ->
        send conn
          (ok_payload ~id ~typ
             (J.Obj
                [
                  ("pong", J.Bool true);
                  ("history_len", J.Int (Whatif.Service.history_len t.svc));
                ]))
    | "stats" -> send conn (ok_payload ~id ~typ (stats_json t))
    | "metrics" ->
        (* the result is a uv.metrics/1 payload verbatim, so a scraper
           can re-envelope it without reshaping *)
        send conn (ok_payload ~id ~typ (Uv_obs.Trace.metrics_payload t.obs))
    | "ingest" -> (
        match J.member "sql" j with
        | Some (J.Str sql) -> (
            let idem_key =
              match J.member "idem_key" j with
              | Some (J.Str k) when k <> "" -> Some k
              | _ -> None
            in
            match Uv_sql.Parser.parse_script sql with
            | exception _ -> bad "unparsable sql"
            | stmts -> (
                let reply ~applied ~failed ~history_len ~durable ~duplicate =
                  Atomic.incr t.ingests;
                  Uv_obs.Trace.incr t.obs "serve.ingests";
                  send conn
                    (ok_payload ~id ~typ
                       (J.Obj
                          [
                            ("applied", J.Int applied);
                            ("failed", J.Int failed);
                            ("history_len", J.Int history_len);
                            ("durable", J.Bool durable);
                            ("duplicate", J.Bool duplicate);
                          ]))
                in
                match t.durable with
                | None ->
                    let applied, failed = Whatif.Service.ingest t.svc stmts in
                    reply ~applied ~failed
                      ~history_len:(Whatif.Service.history_len t.svc)
                      ~durable:false ~duplicate:false
                | Some dur -> (
                    match Durable.ingest ?key:idem_key dur stmts with
                    | ack ->
                        reply ~applied:ack.Durable.applied
                          ~failed:ack.Durable.failed
                          ~history_len:ack.Durable.history_len ~durable:true
                          ~duplicate:ack.Durable.duplicate
                    | exception Uv_fault.Fault.Injected _ ->
                        Uv_obs.Trace.incr t.obs "serve.ingest_faults";
                        send conn
                          (err_payload ~id ~typ ~code:"fault"
                             "injected crash in the durable-ingest path")
                    | exception exn ->
                        send conn
                          (err_payload ~id ~typ ~code:"internal"
                             (Printexc.to_string exn)))))
        | _ -> bad "ingest needs a \"sql\" string")
    | "health" ->
        let waiting_writers, active_readers =
          Whatif.Service.lock_pressure t.svc
        in
        let queue_pending = Queue_pool.pending t.pool in
        let queue_capacity = Queue_pool.capacity t.pool in
        let dstats = Option.map Durable.stats t.durable in
        let drec = Option.map Durable.last_recovery t.durable in
        let degraded =
          (match dstats with Some s -> s.Durable.poisoned | None -> false)
          || (match drec with Some r -> r.Durable.rec_salvaged | None -> false)
          || queue_pending >= queue_capacity
        in
        let durable_json =
          match (dstats, drec) with
          | Some s, Some r ->
              J.Obj
                [
                  ("durable_len", J.Int s.Durable.durable_len);
                  ("last_seal", J.Int s.Durable.last_seal);
                  ("pending_batches", J.Int s.Durable.pending_batches);
                  ("idem_keys", J.Int s.Durable.keys);
                  ("flushes", J.Int s.Durable.flushes);
                  ("poisoned", J.Bool s.Durable.poisoned);
                  ("recovered_records", J.Int r.Durable.rec_records);
                  ("recovery_truncated", J.Int r.Durable.rec_truncated);
                  ("recovery_salvaged", J.Bool r.Durable.rec_salvaged);
                ]
          | _ -> J.Null
        in
        send conn
          (ok_payload ~id ~typ
             (J.Obj
                [
                  ("schema", J.Str "uv.health/1");
                  ("ok", J.Bool (not degraded));
                  ("degraded", J.Bool degraded);
                  ("history_len", J.Int (Whatif.Service.history_len t.svc));
                  ("queue_pending", J.Int queue_pending);
                  ("queue_capacity", J.Int queue_capacity);
                  ("waiting_writers", J.Int waiting_writers);
                  ("active_readers", J.Int active_readers);
                  ( "avg_run_ms",
                    J.Float (Mutex.protect t.lock (fun () -> t.avg_run_ms)) );
                  ("shed_admission", J.Int (Atomic.get t.shed));
                  ("durable", durable_json);
                ]))
    | "whatif" -> (
        match parse_target j with
        | Error msg -> bad msg
        | Ok target -> (
            let deadline_ms =
              Option.bind (J.member "deadline_ms" j) J.to_float
            in
            let enqueued_ms = Uv_util.Clock.now_ms () in
            (* Deadline-aware shedding: when the queue backlog alone is
               expected to eat the whole budget, refuse now — a cheap
               typed error beats a doomed queue wait that would also
               delay everyone behind it. *)
            let predicted_wait_ms =
              let avg = Mutex.protect t.lock (fun () -> t.avg_run_ms) in
              avg
              *. float_of_int (Queue_pool.pending t.pool)
              /. float_of_int (max 1 (Queue_pool.workers t.pool))
            in
            let deadline =
              match deadline_ms with
              | Some _ -> deadline_ms
              | None -> t.cfg.default_deadline_ms
            in
            match deadline with
            | Some d when predicted_wait_ms > d ->
                Atomic.incr t.shed;
                Atomic.incr t.deadline_hits;
                Uv_obs.Trace.incr t.obs "serve.shed_admission";
                send conn
                  (err_payload ~id ~typ ~code:"deadline" ~phase:"admission"
                     ~retry_after_ms:(retry_after_ms t)
                     (Printf.sprintf
                        "predicted queue wait %.1f ms exceeds the %.1f ms budget"
                        predicted_wait_ms d))
            | _ -> (
            Atomic.incr t.whatifs;
            Uv_obs.Trace.incr t.obs "serve.whatifs";
            Atomic.incr conn.in_flight;
            match
              Queue_pool.submit t.pool (fun () ->
                  Fun.protect
                    ~finally:(fun () -> Atomic.decr conn.in_flight)
                    (fun () ->
                      run_whatif t conn ~id ~deadline_ms ~enqueued_ms target))
            with
            | `Accepted -> ()
            | `Saturated ->
                Atomic.decr conn.in_flight;
                Atomic.incr t.rejected;
                Uv_obs.Trace.incr t.obs "serve.rejected_saturated";
                send conn
                  (err_payload ~id ~typ ~code:"saturated"
                     ~retry_after_ms:(retry_after_ms t)
                     (Printf.sprintf "what-if queue is full (%d pending)"
                        (Queue_pool.pending t.pool)))
            | `Shutdown ->
                Atomic.decr conn.in_flight;
                send conn
                  (err_payload ~id ~typ ~code:"shutting_down"
                     "server is shutting down"))))
    | "shutdown" ->
        send conn (ok_payload ~id ~typ (J.Obj [ ("stopping", J.Bool true) ]))
        (* the caller runs [wait t; stop t]; the response frame is
           already in the socket buffer when teardown starts *)
    | _ -> bad (Printf.sprintf "unknown request type %S" typ)

(* returns true when the request asked the server to stop — handled
   outside [handle_request] so the response is sent first *)
let is_shutdown j =
  match J.member "type" j with Some (J.Str "shutdown") -> true | _ -> false

(* ---------- connection & accept loops ---------- *)

let forget_conn t conn =
  Mutex.lock t.lock;
  t.conns <- List.filter (fun c -> c != conn) t.conns;
  Mutex.unlock t.lock;
  (* wait out workers still holding the conn, then retire the fd:
     closing early would let the kernel reuse the number and a late
     response frame could land on an unrelated connection *)
  while Atomic.get conn.in_flight > 0 do
    Domain.cpu_relax ()
  done;
  Mutex.lock conn.wmutex;
  conn.alive <- false;
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  Mutex.unlock conn.wmutex

let request_stop t =
  Mutex.lock t.lock;
  if not t.stopping then begin
    t.stopping <- true;
    Condition.broadcast t.stop_cond
  end;
  Mutex.unlock t.lock

let handler t conn =
  let limits = json_limits t.cfg in
  let rec loop () =
    match Frame_io.read_frame ~max_len:t.cfg.max_frame conn.fd with
    | Error `Closed -> ()
    | Error (`Oversized n) ->
        (* the payload bytes are still in the stream: protocol damage,
           the one case that does cost the connection *)
        Atomic.incr t.bad_requests;
        send conn
          (err_payload ~id:J.Null ~typ:"unknown" ~code:"bad_request"
             (Printf.sprintf "frame of %d bytes exceeds the %d-byte limit" n
                t.cfg.max_frame))
    | Ok payload -> (
        match Report.parse ~limits ~expect:schema payload with
        | Error e ->
            (* the frame boundary held, so the stream is still sound:
               answer with a typed error and keep serving *)
            Atomic.incr t.bad_requests;
            Uv_obs.Trace.incr t.obs "serve.bad_requests";
            send conn (err_payload ~id:J.Null ~typ:"unknown" ~code:"bad_request" e);
            loop ()
        | Ok j ->
            handle_request t conn j;
            if is_shutdown j then request_stop t else loop ())
  in
  (try loop () with _ -> ());
  forget_conn t conn

(* a one-frame refusal on a connection we are not keeping *)
let refuse_fd t fd code message =
  let conn =
    { fd; wmutex = Mutex.create (); alive = true; in_flight = Atomic.make 0 }
  in
  send conn
    (err_payload ~id:J.Null ~typ:"connect" ~code
       ~retry_after_ms:(retry_after_ms t) message);
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let rec go () =
    match Unix.accept ~cloexec:true t.listener with
    | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) ->
        if t.stopping then () else go ()
    | fd, _ ->
        let accepted =
          Mutex.protect t.lock (fun () ->
              if t.stopping then `Stop
              else if List.length t.conns >= t.cfg.max_clients then `Full
              else begin
                let conn =
                  { fd; wmutex = Mutex.create (); alive = true;
                    in_flight = Atomic.make 0 }
                in
                t.conns <- conn :: t.conns;
                let d = Domain.spawn (fun () -> handler t conn) in
                t.handlers <- d :: t.handlers;
                `Go
              end)
        in
        (match accepted with
        | `Stop -> ( try Unix.close fd with Unix.Unix_error _ -> ())
        | `Full ->
            Atomic.incr t.rejected;
            Uv_obs.Trace.incr t.obs "serve.rejected_saturated";
            refuse_fd t fd "saturated"
              (Printf.sprintf "client limit (%d) reached" t.cfg.max_clients)
        | `Go -> ());
        if t.stopping then () else go ()
  in
  try go () with _ -> ()

(* ---------- lifecycle ---------- *)

let resolve_addr = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (host, port) ->
      let ip =
        match Unix.inet_addr_of_string host with
        | ip -> ip
        | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } ->
                invalid_arg ("serve: cannot resolve " ^ host)
            | h -> h.Unix.h_addr_list.(0)
            | exception Not_found ->
                invalid_arg ("serve: cannot resolve " ^ host))
      in
      Unix.ADDR_INET (ip, port)

let start ?(config = default_config) ?obs ?durable svc addr =
  let obs = match obs with Some o -> o | None -> Uv_obs.Trace.create () in
  if Sys.os_type = "Unix" then
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* bind the durable layer's execution path to the service before any
     connection can reach the ingest handler *)
  Option.iter
    (fun dur -> Durable.start ~ingest:(Whatif.Service.ingest svc) dur)
    durable;
  let sockaddr = resolve_addr addr in
  let sock_path =
    match addr with
    | Unix_sock p ->
        (* a previous unclean shutdown leaves the inode behind *)
        (try Unix.unlink p with Unix.Unix_error _ -> ());
        Some p
    | Tcp _ -> None
  in
  let domain =
    match sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
  in
  let listener = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt listener Unix.SO_REUSEADDR true;
     Unix.bind listener sockaddr;
     Unix.listen listener 64
   with e ->
     (try Unix.close listener with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      svc;
      cfg = config;
      obs;
      durable;
      listener;
      sockaddr = Unix.getsockname listener (* Tcp (_, 0): the real port *);
      sock_path;
      pool =
        Queue_pool.create ~workers:(max 1 config.workers)
          ~capacity:(max 1 config.queue_capacity);
      lock = Mutex.create ();
      stop_cond = Condition.create ();
      stopping = false;
      stopped = false;
      conns = [];
      handlers = [];
      accept_d = None;
      avg_run_ms = 0.;
      started_ms = Uv_util.Clock.now_ms ();
      requests = Atomic.make 0;
      whatifs = Atomic.make 0;
      ingests = Atomic.make 0;
      rejected = Atomic.make 0;
      shed = Atomic.make 0;
      deadline_hits = Atomic.make 0;
      bad_requests = Atomic.make 0;
    }
  in
  t.accept_d <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let wait t =
  Mutex.lock t.lock;
  while not t.stopping do
    Condition.wait t.stop_cond t.lock
  done;
  Mutex.unlock t.lock

(* closing a listening socket does not wake a blocked [accept] on
   Linux; a throwaway self-connection does, deterministically *)
let poke_accept t =
  match
    let fd =
      Unix.socket ~cloexec:true
        (match t.sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> Unix.connect fd t.sockaddr)
  with
  | () -> ()
  | exception _ -> ()

let stop t =
  request_stop t;
  let already =
    Mutex.protect t.lock (fun () ->
        let a = t.stopped in
        t.stopped <- true;
        a)
  in
  if not already then begin
    poke_accept t;
    (match Mutex.protect t.lock (fun () -> t.accept_d) with
    | Some d ->
        Domain.join d;
        Mutex.lock t.lock;
        t.accept_d <- None;
        Mutex.unlock t.lock
    | None -> ());
    (try Unix.close t.listener with Unix.Unix_error _ -> ());
    (* the accept loop is gone: no new conns/handlers past this point *)
    let conns, handlers =
      Mutex.protect t.lock (fun () -> (t.conns, t.handlers))
    in
    List.iter
      (fun c ->
        try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    List.iter Domain.join handlers;
    Mutex.lock t.lock;
    t.handlers <- [];
    Mutex.unlock t.lock;
    Queue_pool.shutdown t.pool;
    (* final group-commit flush: nothing acknowledged is left unsynced *)
    Option.iter Durable.close t.durable;
    Option.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) t.sock_path
  end

(* ------------------------------------------------------------------ *)
(* Client                                                               *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { fd : Unix.file_descr; max_frame : int }

  let connect ?(max_frame = default_config.max_frame) addr =
    let sockaddr = resolve_addr addr in
    let fd =
      Unix.socket ~cloexec:true
        (match sockaddr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    (try Unix.connect fd sockaddr
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    { fd; max_frame }

  let close c = try Unix.close c.fd with Unix.Unix_error _ -> ()

  type response =
    | Result of J.t
    | Refused of {
        code : string;
        message : string;
        retry_after_ms : float option;
        phase : string option;
      }

  let decode payload =
    match J.member "ok" payload with
    | Some (J.Bool true) ->
        Ok (Result (Option.value (J.member "result" payload) ~default:J.Null))
    | Some (J.Bool false) -> (
        match J.member "error" payload with
        | Some err ->
            let str k =
              match J.member k err with Some (J.Str s) -> Some s | _ -> None
            in
            Ok
              (Refused
                 {
                   code = Option.value (str "code") ~default:"internal";
                   message = Option.value (str "message") ~default:"";
                   retry_after_ms =
                     Option.bind (J.member "retry_after_ms" err) J.to_float;
                   phase = str "phase";
                 })
        | None -> Error "error reply without error object")
    | _ -> Error "reply without ok field"

  type error =
    | Reset of string
        (* the transport died mid-request (peer reset, closed socket,
           refused connect): retryable once the request is idempotent *)
    | Protocol of string
        (* the reply violated the protocol: retrying cannot help *)

  let error_to_string = function
    | Reset m -> "connection reset: " ^ m
    | Protocol m -> m

  (* Every transport failure becomes a typed [error]; no [Unix_error]
     or [Frame_io.Closed] escapes to the caller. *)
  let call_typed c payload =
    let limits =
      { J.max_bytes = c.max_frame; max_depth = 64; max_string = c.max_frame }
    in
    match
      Frame_io.write_frame c.fd (Report.to_string ~schema payload);
      Frame_io.read_frame ~max_len:c.max_frame c.fd
    with
    | exception Frame_io.Closed -> Error (Reset "connection closed mid-request")
    | exception Unix.Unix_error (e, fn, _) ->
        Error (Reset (fn ^ ": " ^ Unix.error_message e))
    | Error `Closed -> Error (Reset "connection closed before the reply")
    | Error (`Oversized _ as e) -> Error (Protocol (Frame_io.error_to_string e))
    | Ok reply -> (
        match Report.parse ~limits ~expect:schema reply with
        | Error e -> Error (Protocol e)
        | Ok j -> Result.map_error (fun e -> Protocol e) (decode j))

  let call c payload = Result.map_error error_to_string (call_typed c payload)

  (* Bounded retry with exponential backoff and deterministic jitter.
     Retryable: a transport reset (reconnect — the old socket is dead)
     and a [saturated] refusal (back off, honouring the server's
     [retry_after_ms] hint). Final: success, [deadline] (the budget is
     spent either way), every other refusal, and protocol damage. *)
  let call_retry ?(retries = 4) ?(backoff_ms = 25.) ?(max_backoff_ms = 1000.)
      ?(seed = 0) ?max_frame addr payload =
    let prng = Uv_util.Prng.create (seed lxor 0x7e7a11) in
    let backoff = ref (Float.max 1. backoff_ms) in
    let attempt = ref 0 in
    let result = ref (Error (Reset "not attempted")) in
    let final = ref false in
    while (not !final) && !attempt <= retries do
      incr attempt;
      if !attempt > 1 then begin
        let ms = !backoff +. Uv_util.Prng.float prng (!backoff *. 0.5) in
        Unix.sleepf (ms /. 1000.);
        backoff := Float.min max_backoff_ms (!backoff *. 2.)
      end;
      (match connect ?max_frame addr with
      | exception Unix.Unix_error (e, fn, _) ->
          result := Error (Reset (fn ^ ": " ^ Unix.error_message e))
      | c ->
          result :=
            Fun.protect
              ~finally:(fun () -> close c)
              (fun () -> call_typed c payload));
      match !result with
      | Ok (Refused { code = "saturated"; retry_after_ms; _ }) ->
          Option.iter
            (fun ms -> backoff := Float.min max_backoff_ms (Float.max !backoff ms))
            retry_after_ms
      | Error (Reset _) -> ()
      | _ -> final := true
    done;
    (!result, !attempt)

  let simple c typ = call c (J.Obj [ ("type", J.Str typ) ])
  let ping c = simple c "ping"
  let stats c = simple c "stats"
  let metrics c = simple c "metrics"
  let health c = simple c "health"
  let shutdown c = simple c "shutdown"

  let whatif_payload ?deadline_ms ?id ~tau ~op ?stmt () =
    J.Obj
      ([ ("type", J.Str "whatif"); ("tau", J.Int tau); ("op", J.Str op) ]
      @ (match id with Some i -> [ ("id", J.Int i) ] | None -> [])
      @ (match stmt with Some s -> [ ("stmt", J.Str s) ] | None -> [])
      @
      match deadline_ms with
      | Some d -> [ ("deadline_ms", J.Float d) ]
      | None -> [])

  let whatif ?deadline_ms ?id ~tau ~op ?stmt c () =
    call c (whatif_payload ?deadline_ms ?id ~tau ~op ?stmt ())

  let ingest_payload ?id ?idem_key sql =
    J.Obj
      ([ ("type", J.Str "ingest"); ("sql", J.Str sql) ]
      @ (match id with Some i -> [ ("id", J.Int i) ] | None -> [])
      @
      match idem_key with
      | Some k -> [ ("idem_key", J.Str k) ]
      | None -> [])

  let ingest ?id ?idem_key c sql = call c (ingest_payload ?id ?idem_key sql)
end
