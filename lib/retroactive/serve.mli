(** The [ultraverse serve] daemon: a concurrent multi-client what-if
    service over one shared, growing history.

    Wire protocol: length-prefixed frames ({!Uv_util.Frame_io} — 4-byte
    big-endian length, then the payload) over a Unix-domain or TCP
    socket. Every payload, in both directions, is a compact
    [uv.serve/1] {!Uv_obs.Report} envelope. Requests carry a [type]
    ([ping], [stats], [metrics], [health], [ingest], [whatif],
    [shutdown]) and a client-chosen [id] that is echoed verbatim in the
    response, so clients may pipeline. Responses are either

    {v {"id":…, "ok":true,  "type":…, "result":{…}} v}

    or a {e typed} error that never tears the connection down:

    {v {"id":…, "ok":false, "type":…, "error":{"code":…, "message":…,
        "retry_after_ms":…?, "phase":…?}} v}

    with [code] one of [saturated] (admission control rejected the
    request — retry after [retry_after_ms]), [deadline] (the
    per-request budget ran out, queue wait included), [fault],
    [internal], [bad_request], or [shutting_down]. Only protocol-level
    damage (an oversized frame, an unparsable envelope stream) closes a
    connection.

    Concurrency: what-if requests execute on a bounded
    {!Uv_util.Domain_pool.Queue} of worker domains over the shared
    {!Whatif.Service}; ingest runs exclusively (the service's writer
    side — a {e writer-priority} lock, so a saturating stream of
    what-ifs cannot starve committed-history writes) and republishes
    the cache snapshot. Each accepted connection gets a reader domain;
    responses are written under a per-connection mutex, so pipelined
    replies never interleave mid-frame.

    Durability: when a {!Durable.t} is attached ({!start}'s [durable]
    argument), [ingest] acknowledgments are withheld until the batch is
    fsynced through the group-commit buffer — an acked batch survives
    [kill -9]. Ingest frames may carry an [idem_key] string; re-sending
    a batch under the same key after a lost ack returns the recorded
    result ([duplicate: true]) without re-executing. The [health]
    request returns a [uv.health/1] payload (degraded flag, queue
    depths, lock pressure, durable-store watermarks) for supervisors.

    Overload: beyond queue-full [saturated] refusals, the daemon sheds
    deadline-doomed work at admission — when the queue backlog times
    the average run cost already exceeds a request's budget, it is
    refused immediately with [code deadline, phase admission] instead
    of being queued to fail. *)

type addr =
  | Unix_sock of string  (** path to a Unix-domain socket *)
  | Tcp of string * int  (** host, port; the server binds, clients connect *)

type config = {
  workers : int;  (** what-if worker domains (clamped to ≥ 1) *)
  queue_capacity : int;
      (** queued (not yet executing) what-ifs admitted before
          [saturated] rejections start *)
  max_clients : int;
      (** concurrent connections; excess connects receive one
          [saturated] error frame and are closed *)
  max_frame : int;
      (** request frame byte cap; also bounds JSON depth/strings via
          network-grade {!Uv_obs.Json.limits} *)
  default_deadline_ms : float option;
      (** budget applied to what-if requests that don't set their own *)
}

val default_config : config
(** 4 workers, capacity 32, 32 clients, 1 MiB frames, no default
    deadline. *)

type t

val start :
  ?config:config ->
  ?obs:Uv_obs.Trace.t ->
  ?durable:Durable.t ->
  Whatif.Service.t ->
  addr ->
  t
(** Bind, listen, and spawn the accept loop. [obs] (default: a fresh
    live collector) receives [serve.*] counters and everything the
    what-if runs record; the [metrics] endpoint scrapes it. [durable]
    (freshly attached, {e not} yet started — [start] binds it to the
    service's ingest path and {!stop} closes it) makes ingest
    acknowledgments crash-safe. [SIGPIPE] is ignored process-wide on
    POSIX. @raise Unix.Unix_error when the address cannot be bound. *)

val service : t -> Whatif.Service.t
val obs : t -> Uv_obs.Trace.t

val port : t -> int option
(** The bound TCP port (useful with [Tcp (host, 0)]); [None] for Unix
    sockets. *)

val request_stop : t -> unit
(** Flip the server into shutdown mode and wake {!wait}. Idempotent,
    callable from any domain (the [shutdown] request uses it). *)

val wait : t -> unit
(** Block until {!request_stop} (e.g. a client's [shutdown] request). *)

val stop : t -> unit
(** Full synchronous teardown: stop accepting, wake and join every
    connection handler, drain and join the worker pool, close and (for
    Unix sockets) unlink the listener. Idempotent. *)

(** A minimal blocking client for the protocol — one outstanding
    request per call (pipelining clients can speak the frame protocol
    directly). Used by [ultraverse client], the serve bench and the
    tests. *)
module Client : sig
  type conn

  val connect : ?max_frame:int -> addr -> conn
  val close : conn -> unit

  (** A decoded response payload. *)
  type response =
    | Result of Uv_obs.Json.t  (** the [result] object of an [ok] reply *)
    | Refused of {
        code : string;
        message : string;
        retry_after_ms : float option;
        phase : string option;
      }  (** a typed error reply — the connection is still usable *)

  (** Typed transport failure — no raw [Unix.Unix_error] or
      [Frame_io.Closed] reaches the caller. *)
  type error =
    | Reset of string
        (** the transport died mid-request (peer reset, closed socket,
            refused connect). Retryable — with an [idem_key] on ingest,
            safely so even when the original request was executed. *)
    | Protocol of string
        (** the reply violated the protocol; retrying cannot help *)

  val error_to_string : error -> string

  val call_typed : conn -> Uv_obs.Json.t -> (response, error) result
  (** Send one request payload (the [uv.serve/1] envelope is added) and
      block for the reply. On [Error] the connection should be closed. *)

  val call : conn -> Uv_obs.Json.t -> (response, string) result
  (** {!call_typed} with the error rendered — legacy convenience. *)

  val call_retry :
    ?retries:int ->
    ?backoff_ms:float ->
    ?max_backoff_ms:float ->
    ?seed:int ->
    ?max_frame:int ->
    addr ->
    Uv_obs.Json.t ->
    (response, error) result * int
  (** One logical request with bounded retry: up to [1 + retries]
      attempts (default [retries = 4]), each on a fresh connection.
      Retried: {!Reset} (reconnect) and [saturated] refusals (backing
      off exponentially from [backoff_ms], default 25 ms, capped at
      [max_backoff_ms], with deterministic jitter from [seed], and
      honouring the server's [retry_after_ms] hint). {e Not} retried:
      [deadline] refusals (the budget is spent either way), other
      refusals, and {!Protocol} damage. Returns the final outcome and
      the number of attempts used — surfaced by [ultraverse client] as
      [attempts]. Pair with an [idem_key] on ingest so a retry after a
      lost ack cannot double-apply. *)

  val ping : conn -> (response, string) result

  val whatif :
    ?deadline_ms:float ->
    ?id:int ->
    tau:int ->
    op:string ->
    ?stmt:string ->
    conn ->
    unit ->
    (response, string) result
  (** [op] is [remove], [add] or [change]; [add]/[change] require
      [stmt]. *)

  val whatif_payload :
    ?deadline_ms:float ->
    ?id:int ->
    tau:int ->
    op:string ->
    ?stmt:string ->
    unit ->
    Uv_obs.Json.t
  (** The request payload {!whatif} sends — for use with {!call_retry}. *)

  val ingest :
    ?id:int -> ?idem_key:string -> conn -> string -> (response, string) result
  (** [idem_key] makes the batch safely re-sendable: the server
      deduplicates on it after a lost acknowledgment. *)

  val ingest_payload : ?id:int -> ?idem_key:string -> string -> Uv_obs.Json.t
  (** The request payload {!ingest} sends — for use with {!call_retry}. *)

  val stats : conn -> (response, string) result
  val metrics : conn -> (response, string) result

  val health : conn -> (response, string) result
  (** The [uv.health/1] supervision payload: [ok]/[degraded], queue
      depth and capacity, service-lock pressure, average run cost, and
      (when a store is attached) the durable watermarks and recovery
      report. *)

  val shutdown : conn -> (response, string) result
end
