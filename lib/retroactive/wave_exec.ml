type item = {
  idx : int;
  stmt : Uv_sql.Ast.stmt;
  nondet : Uv_sql.Value.t list;
  app_txn : string option;
  sim_time : int;
  rowid_base : int;
  structural : bool;
  plan : Uv_db.Engine.plan option;
      (* compiled plan from the session cache; immutable, shared
         read-only across domains, self-validating at bind time *)
}

type t = {
  durations : (int, float) Hashtbl.t;
  entries : (int, Uv_db.Log.entry) Hashtbl.t;
  failed : int;
  wave_count : int;
  measured_ms : float;
  retries : int;
  degraded : bool;
}

exception Aborted of string

(* One replayed statement runs on its own lightweight engine sharing the
   temporary catalog by reference: per-statement state (journal, nondet
   cursor, PRNG, log) stays domain-local, while table data goes through
   the locked Storage layer. The seed depends only on the commit index,
   so any fresh draws past the recorded list are schedule-independent.

   An injected statement fault ([Uv_fault.Fault.Injected] out of the
   engine, which has already rolled the statement back and restored its
   PRNG/clock) is transient infrastructure failure: one retry on a
   pristine engine reenacts the statement exactly. A second injection
   escapes to the caller, which aborts the run — unlike an application-
   level [Sql_error], which counts as a failed replay exactly as in
   serial replay. *)
let run_item ?(obs = Uv_obs.Trace.disabled)
    ?(fault = Uv_fault.Fault.disabled) ?(on_retry = fun () -> ()) ~rtt_ms
    catalog it =
  let attempt () =
    let eng =
      Uv_db.Engine.of_catalog ~seed:((1_000_003 * it.idx) + 7) ~rtt_ms ~obs
        ~fault catalog
    in
    Uv_db.Engine.set_sim_time eng it.sim_time;
    (* the span is opened on the executing domain, so parallel replay
       renders as one trace lane per domain *)
    let sp =
      Uv_obs.Trace.start obs ~cat:"replay" (Printf.sprintf "Q%d" it.idx)
    in
    Fun.protect ~finally:(fun () -> Uv_obs.Trace.finish obs sp) @@ fun () ->
    let t0 = Uv_util.Clock.now_ms () in
    let ok =
      try
        ignore
          (Uv_db.Engine.exec ?app_txn:it.app_txn ~nondet:it.nondet
             ~rowid_base:it.rowid_base ?plan:it.plan eng it.stmt);
        true
      with Uv_db.Engine.Sql_error _ | Uv_db.Engine.Signal_raised _ -> false
    in
    let d = Uv_util.Clock.now_ms () -. t0 in
    let entry =
      if ok && Uv_db.Log.length (Uv_db.Engine.log eng) >= 1 then
        Some (Uv_db.Log.entry (Uv_db.Engine.log eng) 1)
      else None
    in
    (d, entry)
  in
  try attempt ()
  with Uv_fault.Fault.Injected _ ->
    on_retry ();
    attempt ()

(* Row operations of one entry on one table, in execution order. *)
let row_ops_for table undo =
  List.filter
    (function
      | Uv_db.Log.U_row_insert (t, _, _)
      | Uv_db.Log.U_row_delete (t, _, _)
      | Uv_db.Log.U_row_update (t, _, _, _) ->
          String.equal t table
      | _ -> false)
    (List.rev undo)

(* Exact hash delta of one statement on one table, from its journal:
   every operation carries the row images it needs, inserts included. *)
let delta_of storage ops =
  let th = Uv_util.Table_hash.create () in
  let arr = Array.of_list ops in
  let n = Array.length arr in
  for k = 0 to n - 1 do
    match arr.(k) with
    | Uv_db.Log.U_row_update (_, _, before, after) ->
        Uv_util.Table_hash.remove_row th (Uv_db.Storage.serialize_row storage before);
        Uv_util.Table_hash.add_row th (Uv_db.Storage.serialize_row storage after)
    | Uv_db.Log.U_row_delete (_, _, row) ->
        Uv_util.Table_hash.remove_row th (Uv_db.Storage.serialize_row storage row)
    | Uv_db.Log.U_row_insert (_, _, image) ->
        Uv_util.Table_hash.add_row th (Uv_db.Storage.serialize_row storage image)
    | _ -> ()
  done;
  Uv_util.Table_hash.value th

let execute ?(obs = Uv_obs.Trace.disabled) ?(fault = Uv_fault.Fault.disabled)
    ?(should_abort = fun () -> false) ~workers ~rtt_ms ~catalog ~head ~items
    ~edges () =
  let t0 = Uv_util.Clock.now_ms () in
  let traced = Uv_obs.Trace.enabled obs in
  let durations = Hashtbl.create 64 in
  let raw : (int, Uv_db.Log.entry) Hashtbl.t = Hashtbl.create 64 in
  let deltas : (int * string, int64) Hashtbl.t = Hashtbl.create 64 in
  let failed = ref 0 in
  let subwaves = ref 0 in
  (* stmt-level retries happen on pool domains; batch-level retries on
     the caller — one atomic counter covers both *)
  let retries = Atomic.make 0 in
  let on_retry () = Atomic.incr retries in
  let degraded = ref false in
  (* table hashes at replay start: the base the commit-order restamping
     accumulates from *)
  let base =
    List.map (fun (name, st) -> (name, Uv_db.Storage.hash st))
      (Uv_db.Catalog.tables catalog)
  in
  let finish_item it (d, entry_opt) =
    Hashtbl.replace durations it.idx d;
    match entry_opt with
    | Some e -> Hashtbl.replace raw it.idx e
    | None -> incr failed
  in
  (* Deltas are taken at the end of the wave that ran the items — before
     any later wave can rewrite the rows the journals refer to. *)
  let compute_deltas its =
    List.iter
      (fun it ->
        match Hashtbl.find_opt raw it.idx with
        | None -> ()
        | Some e ->
            List.iter
              (fun (tname, _) ->
                match Uv_db.Catalog.table catalog tname with
                | None -> ()
                | Some st ->
                    Hashtbl.replace deltas (it.idx, tname)
                      (delta_of st (row_ops_for tname e.Uv_db.Log.undo)))
              e.Uv_db.Log.written_hashes)
      its
  in
  (* the per-item closure the pool runs; [allow_crash] is off on the
     caller lane (degraded serial finish), whose "domain" cannot die *)
  let item_fn ~allow_crash it =
    if allow_crash then
      (match
         Uv_fault.Fault.check ~key:it.idx fault Uv_fault.Fault.Site.worker
           [ Uv_fault.Fault.Worker_crash; Uv_fault.Fault.Slow ]
       with
      | Some inj -> (
          match inj.Uv_fault.Fault.kind with
          | Uv_fault.Fault.Worker_crash ->
              raise
                (Uv_util.Domain_pool.Worker_exit (Uv_fault.Fault.Injected inj))
          | Uv_fault.Fault.Slow ->
              Unix.sleepf (inj.Uv_fault.Fault.arg /. 1000.0)
          | _ -> ())
      | None -> ());
    run_item ~obs ~fault ~on_retry ~rtt_ms catalog it
  in
  let pool = Uv_util.Domain_pool.create ~workers in
  Fun.protect ~finally:(fun () -> Uv_util.Domain_pool.shutdown pool)
  @@ fun () ->
  let wave_span n_items =
    Uv_obs.Trace.start obs ~cat:"replay"
      ~args:[ ("items", Uv_obs.Json.Int n_items) ]
      (Printf.sprintf "wave.%d" !subwaves)
  in
  (* wave boundary: honour the deadline and probe for a domain found
     dead between waves (degrades the rest of the replay to the caller
     lane — same results, one lane) *)
  let wave_boundary () =
    if should_abort () then raise (Aborted "deadline");
    match
      Uv_fault.Fault.check ~key:!subwaves fault Uv_fault.Fault.Site.wave
        [ Uv_fault.Fault.Worker_crash; Uv_fault.Fault.Slow ]
    with
    | Some inj -> (
        match inj.Uv_fault.Fault.kind with
        | Uv_fault.Fault.Worker_crash -> degraded := true
        | Uv_fault.Fault.Slow -> Unix.sleepf (inj.Uv_fault.Fault.arg /. 1000.0)
        | _ -> ())
    | None -> ()
  in
  let run_batch batch =
    match batch with
    | [] -> ()
    | [ it ] ->
        incr subwaves;
        wave_boundary ();
        let sp = wave_span 1 in
        finish_item it (item_fn ~allow_crash:false it);
        compute_deltas batch;
        Uv_obs.Trace.finish obs sp
    | _ ->
        incr subwaves;
        wave_boundary ();
        let arr = Array.of_list batch in
        let n = Array.length arr in
        let results = Array.make n None in
        let sp = wave_span n in
        let dispatch = if traced then Uv_util.Clock.now_ms () else 0.0 in
        (* Whole statement batches per pool slot: a lane claims a
           contiguous chunk of the wave at once instead of one statement
           per atomic pickup, so per-item dispatch (cursor contention,
           condvar wakeups) amortizes over the chunk. A crashed lane
           leaves its chunk's unfinished items as [None]; the redispatch
           below re-chunks only those. *)
        let run_pool () =
          let lanes = max 1 (Uv_util.Domain_pool.lanes pool) in
          let chunks = max 1 (min n (lanes * 4)) in
          let per = (n + chunks - 1) / chunks in
          Uv_util.Domain_pool.run pool ~count:chunks (fun c ->
              let lo = c * per and hi = min n ((c + 1) * per) - 1 in
              if lo < n && traced then
                Uv_obs.Trace.observe obs "replay.queue_wait_ms"
                  (Uv_util.Clock.now_ms () -. dispatch);
              for i = lo to hi do
                if results.(i) = None then
                  results.(i) <- Some (item_fn ~allow_crash:true arr.(i))
              done)
        in
        (* caller-lane finish of whatever the pool left undone: exact
           same computation, no crash probes — the degradation path *)
        let run_direct () =
          Array.iteri
            (fun i it ->
              if results.(i) = None then
                results.(i) <- Some (item_fn ~allow_crash:false it))
            arr
        in
        if !degraded then run_direct ()
        else begin
          try run_pool ()
          with Uv_util.Domain_pool.Worker_exit _ -> (
            (* a lane died mid-batch: its unfinished items are re-run.
               One redispatch through the (shrunken) pool; a second death
               degrades the rest of the run to the caller lane. *)
            on_retry ();
            try run_pool ()
            with Uv_util.Domain_pool.Worker_exit _ ->
              degraded := true;
              run_direct ())
        end;
        if traced then begin
          (* fraction of the pool's lane-time this batch kept busy *)
          let wall = Uv_util.Clock.now_ms () -. dispatch in
          let busy =
            Array.fold_left
              (fun a r -> match r with Some (d, _) -> a +. d | None -> a)
              0.0 results
          in
          let lanes = float_of_int (Uv_util.Domain_pool.lanes pool) in
          if wall > 0.0 then
            Uv_obs.Trace.observe obs "replay.utilization"
              (busy /. (wall *. lanes))
        end;
        Array.iteri
          (fun i it ->
            match results.(i) with
            | Some r -> finish_item it r
            | None -> incr failed)
          arr;
        compute_deltas batch;
        Uv_obs.Trace.finish obs sp
  in
  (match head with Some h -> run_batch [ h ] | None -> ());
  let dag =
    Uv_obs.Trace.with_span obs ~cat:"analyze" "cluster" (fun () ->
        Conflict_dag.build ~nodes:(List.map (fun it -> it.idx) items) ~edges)
  in
  let by_idx = Hashtbl.create 64 in
  List.iter (fun it -> Hashtbl.replace by_idx it.idx it) items;
  List.iter
    (fun wave ->
      (* structural items break the wave into parallel batches and run
         exclusively in between, preserving commit order within the wave *)
      let batch = ref [] in
      let flush () =
        run_batch (List.rev !batch);
        batch := []
      in
      List.iter
        (fun idx ->
          let it = Hashtbl.find by_idx idx in
          if it.structural then begin
            flush ();
            run_batch [ it ]
          end
          else batch := it :: !batch)
        wave;
      flush ())
    (Conflict_dag.waves dag);
  (* Restamp written_hashes in global commit order so each entry logs the
     hash its table had right after it committed — bit-identical to a
     serial replay, and therefore safe for the Hash-jumper to consume on
     branched universes. *)
  let running = Hashtbl.create 16 in
  List.iter (fun (n, h) -> Hashtbl.replace running n h) base;
  let stamped = Hashtbl.create 64 in
  let all_idxs =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) raw [])
  in
  List.iter
    (fun idx ->
      let e = Hashtbl.find raw idx in
      let wh =
        List.map
          (fun (n, h) ->
            match Hashtbl.find_opt deltas (idx, n) with
            | None -> (n, h)
            | Some d ->
                let cur = Option.value (Hashtbl.find_opt running n) ~default:0L in
                let v = Uv_util.Table_hash.add_mod cur d in
                Hashtbl.replace running n v;
                (n, v))
          e.Uv_db.Log.written_hashes
      in
      Hashtbl.replace stamped idx { e with Uv_db.Log.written_hashes = wh })
    all_idxs;
  {
    durations;
    entries = stamped;
    failed = !failed;
    wave_count = !subwaves;
    measured_ms = Uv_util.Clock.now_ms () -. t0;
    retries = Atomic.get retries;
    degraded = !degraded;
  }
