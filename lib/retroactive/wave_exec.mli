(** Real parallel replay: waves of the conflict DAG on OCaml 5 domains.

    Where {!Scheduler} *simulates* the parallel replay cost, this module
    executes it. The replay set's conflict DAG ({!Conflict_dag}, over
    [Analyzer.exec_dependency_edges]) is layered into waves; the entries
    of one wave are mutually conflict-free and run concurrently on a
    fixed {!Uv_util.Domain_pool}, each on a lightweight engine sharing
    the temporary universe's catalog by reference. Per-table locking in
    [Uv_db.Storage] serializes physical access; statements marked
    {e structural} (trigger-cascade writers — DDL never reaches this
    module, the driver falls back to serial replay for it) run alone
    between the parallel batches of their wave.

    Determinism at every worker count:
    - recorded non-determinism is forced per entry, exactly as in serial
      replay;
    - each statement draws rowids from a private range ([rowid_base]),
      so physical row placement does not depend on scheduling;
    - each entry's logged [written_hashes] are reconstructed after the
      run from per-statement hash deltas accumulated in commit order —
      bit-identical to what serial replay would have logged;
    - the additive table hash (§4.5) is order-independent, so the final
      universe hash is invariant under intra-wave scheduling. *)

type item = {
  idx : int;  (** commit index; the retroactive operation itself is 0 *)
  stmt : Uv_sql.Ast.stmt;
  nondet : Uv_sql.Value.t list;  (** recorded draws, forced on replay *)
  app_txn : string option;
  sim_time : int;  (** logical clock to install before execution *)
  rowid_base : int;  (** private rowid range for the statement's inserts *)
  structural : bool;  (** run exclusively (trigger-firing writes) *)
  plan : Uv_db.Engine.plan option;
      (** compiled plan from the what-if session's cache, keyed by this
          entry's identity; immutable and therefore shared read-only
          across domains. A stale plan self-invalidates at bind time, so
          carrying one never changes results. *)
}

type t = {
  durations : (int, float) Hashtbl.t;  (** idx -> measured ms *)
  entries : (int, Uv_db.Log.entry) Hashtbl.t;
      (** idx -> the re-executed entry (successful replays only),
          [written_hashes] already restamped to serial-exact values *)
  failed : int;  (** replays that signalled or errored *)
  wave_count : int;  (** executed batches, structural singletons included *)
  measured_ms : float;  (** wall time of the whole replay *)
  retries : int;
      (** transient-fault recoveries: statement re-executions after an
          injected fault plus batch redispatches after a lane death *)
  degraded : bool;
      (** the replay finished on the caller lane after repeated lane
          deaths; results are identical, parallelism was lost *)
}

exception Aborted of string
(** The replay stopped at a wave boundary because [should_abort]
    returned [true]. The catalog is left mid-replay and must be
    discarded. *)

val execute :
  ?obs:Uv_obs.Trace.t ->
  ?fault:Uv_fault.Fault.t ->
  ?should_abort:(unit -> bool) ->
  workers:int ->
  rtt_ms:float ->
  catalog:Uv_db.Catalog.t ->
  head:item option ->
  items:item list ->
  edges:(int * int) list ->
  unit ->
  t
(** [execute ~workers ~rtt_ms ~catalog ~head ~items ~edges ()] replays
    [head] (the retroactive operation) exclusively first, then [items]
    (ascending [idx]) wave by wave. [edges] are [(later, earlier)]
    conflicts among the items' indexes; items must not contain DDL.
    The catalog is mutated in place.

    [obs] records a [cluster] span around DAG construction, one
    [wave.N] span per executed batch, a [QIDX] span per replayed
    statement on the domain that ran it (one trace lane per domain),
    the [replay.queue_wait_ms] histogram (dispatch-to-start latency per
    item) and [replay.utilization] (busy lane-time fraction per parallel
    batch).

    Fault handling ([fault] probes, see {!Uv_fault.Fault.Site}):
    - [engine.exec]/[engine.commit] statement faults are retried once on
      a pristine engine (the failed attempt was rolled back); a second
      injection escapes as [Uv_fault.Fault.Injected] — the run aborts.
    - [domain_pool.worker] crashes kill the executing lane
      ({!Uv_util.Domain_pool.Worker_exit}); the batch's unfinished items
      are redispatched once over the surviving lanes, and a second death
      degrades the remainder of the replay to the caller lane
      (reported via [degraded]).
    - [domain_pool.worker]/[wave] [Slow] injections only sleep.

    [should_abort] is polled at every wave boundary; returning [true]
    raises {!Aborted}. *)
