module Config = struct
  type t = {
    mode : Analyzer.mode;
    workers : int;
    hash_jumper : bool;
    grouped : bool;
    parallel_exec : bool;
    obs : Uv_obs.Trace.t;
    deadline_ms : float option;
    fault : Uv_fault.Fault.t;
    checkpoint_every : int;
    plans : bool;
  }

  let make ?(mode = Analyzer.Cell) ?(workers = 8) ?(hash_jumper = false)
      ?(grouped = false) ?(parallel_exec = true)
      ?(obs = Uv_obs.Trace.disabled) ?deadline_ms
      ?(fault = Uv_fault.Fault.disabled) ?(checkpoint_every = 0)
      ?(plans = true) () =
    {
      mode;
      workers = max 1 workers;
      hash_jumper;
      grouped;
      parallel_exec;
      obs;
      deadline_ms;
      fault;
      checkpoint_every = max 0 checkpoint_every;
      plans;
    }

  let default = make ()
  let mode c = c.mode
  let workers c = c.workers
  let hash_jumper c = c.hash_jumper
  let grouped c = c.grouped
  let parallel_exec c = c.parallel_exec
  let obs c = c.obs
  let deadline_ms c = c.deadline_ms
  let fault c = c.fault
  let checkpoint_every c = c.checkpoint_every
  let plans c = c.plans
end

module Error = struct
  type code = Deadline | Fault | Internal

  type t = { code : code; phase : string; message : string }

  let code_name = function
    | Deadline -> "deadline"
    | Fault -> "fault"
    | Internal -> "internal"

  let to_string e =
    Printf.sprintf "what-if aborted [%s] during %s: %s" (code_name e.code)
      e.phase e.message
end

exception Abort of Error.t

type config = Config.t

let default_config = Config.default

type outcome = {
  replay : Analyzer.replay_set;
  replayed : int;
  undone : int;
  failed_replays : int;
  hash_jump_at : int option;
  real_ms : float;
  serial_cost_ms : float;
  simulated_parallel_ms : float;
  measured_parallel_ms : float option;
  workers : int;
  exec_waves : int;
  analysis_ms : float;
  phases : (string * float) list;
  final_db_hash : int64;
  changed : bool;
  degraded : bool;
  retries : int;
  temp_catalog : Uv_db.Catalog.t;
  new_log : Uv_db.Log.t;
  rollback_strategy : string;
  plans_used : int;
}

let fault_message (inj : Uv_fault.Fault.injection) =
  Printf.sprintf "injected %s at %s (key %d, hit %d)"
    (Uv_fault.Fault.kind_name inj.Uv_fault.Fault.kind)
    inj.Uv_fault.Fault.site inj.Uv_fault.Fault.key inj.Uv_fault.Fault.hit

let member_indexes (rs : Analyzer.replay_set) =
  let out = ref [] in
  Array.iteri (fun i b -> if b then out := (i + 1) :: !out) rs.Analyzer.members;
  List.rev !out

let is_schema_key k = String.length k > 3 && String.sub k 0 3 = "_S."

let write_tables (rw : Rwset.rw) =
  Rwset.Colset.fold
    (fun key acc ->
      if is_schema_key key then acc
      else
        match String.index_opt key '.' with
        | Some i -> String.sub key 0 i :: acc
        | None -> acc)
    rw.Rwset.w []
  |> List.sort_uniq compare

(* Serial fallback conditions (see DESIGN.md §parallel replay executor):
   the wave executor handles DML only. DDL members (or a DDL target)
   mutate the schema mid-replay, and the Hash-jumper needs commit-prefix
   semantics that waves do not provide. *)
let parallel_eligible (config : Config.t) ~analyzer target members =
  config.Config.parallel_exec
  && (not config.Config.hash_jumper)
  && (match target.Analyzer.op with
     | Analyzer.Add s | Analyzer.Change s -> not (Uv_sql.Ast.is_ddl s)
     | Analyzer.Remove -> true)
  && List.for_all
       (fun i ->
         let inf = Analyzer.info analyzer i in
         (not (Uv_sql.Ast.is_ddl inf.Analyzer.stmt))
         && not (Rwset.Colset.exists is_schema_key inf.Analyzer.rw.Rwset.w))
       members

(* Checkpoint-jumping rollback (strategy B): instead of undoing every
   member newest-first, jump each affected table back to the nearest
   checkpoint rung below the oldest undone entry and redo the
   non-members' row effects forward from their journal images. Chosen
   only when it is applicable — no DDL records anywhere in the redo
   window, every affected table present in the rung — and cheaper:
   fewer redo records than undo records.

   Equivalence with selective undo: every entry in (c, n] is either
   undone (skipped here, its cells revert to the rung's values plus
   non-member redo) or redone from its per-cell before/after images.
   A non-member writing the same *cell* as a member would have joined
   the replay set through the W∩W rule in both closures, so per-cell
   merges commute and both strategies leave identical cell values.
   AUTO_INCREMENT counters are pinned to what the undo path would have
   left (the pre-statement value journalled by the oldest undone entry
   that records one; live otherwise), and the rowid allocator is raised
   back to its live watermark so replayed inserts land in fresh slots
   either way. *)
let checkpoint_rollback ladder log temp_cat undo_list =
  match List.rev undo_list with
  | [] -> false
  | oldest :: _ -> (
      match Uv_db.Checkpoint.nearest ladder (oldest - 1) with
      | None -> false
      | Some (c, rung_cat) ->
          let n = Uv_db.Log.length log in
          let undone = Array.make (n + 1) false in
          List.iter (fun i -> if i <= n then undone.(i) <- true) undo_list;
          let row_only =
            List.for_all (function
              | Uv_db.Log.U_row_insert _ | Uv_db.Log.U_row_delete _
              | Uv_db.Log.U_row_update _ | Uv_db.Log.U_auto_value _ ->
                  true
              | _ -> false)
          in
          let ok = ref true in
          let redo_cost = ref 0 and undo_cost = ref 0 in
          for i = c + 1 to n do
            let e = Uv_db.Log.entry log i in
            if not (row_only e.Uv_db.Log.undo) then ok := false
            else if undone.(i) then
              undo_cost := !undo_cost + List.length e.Uv_db.Log.undo
            else redo_cost := !redo_cost + List.length e.Uv_db.Log.undo
          done;
          let temp_tables = Uv_db.Catalog.tables temp_cat in
          if !ok then
            ok :=
              List.for_all
                (fun (name, _) -> Uv_db.Catalog.table rung_cat name <> None)
                temp_tables;
          if not (!ok && !redo_cost < !undo_cost) then false
          else begin
            (* the counter value selective undo would leave: it applies
               entries newest-first, so the oldest undone entry's
               journalled pre-statement value wins *)
            let final_auto : (string, int) Hashtbl.t = Hashtbl.create 8 in
            List.iter
              (fun i ->
                List.iter
                  (function
                    | Uv_db.Log.U_auto_value (tbl, v) ->
                        Hashtbl.replace final_auto tbl v
                    | _ -> ())
                  (Uv_db.Log.entry log i).Uv_db.Log.undo)
              undo_list;
            List.iter
              (fun (name, _) ->
                match Uv_db.Catalog.table rung_cat name with
                | Some rung_tbl ->
                    Uv_db.Catalog.add_table temp_cat
                      (Uv_db.Storage.copy rung_tbl)
                | None -> ())
              temp_tables;
            for i = c + 1 to n do
              if not undone.(i) then
                Uv_db.Log.apply_redo temp_cat
                  (Uv_db.Log.entry log i).Uv_db.Log.undo
            done;
            List.iter
              (fun (name, live_tbl) ->
                match Uv_db.Catalog.table temp_cat name with
                | None -> ()
                | Some tbl ->
                    let auto =
                      match Hashtbl.find_opt final_auto name with
                      | Some v -> v
                      | None -> Uv_db.Storage.next_auto_value live_tbl
                    in
                    Uv_db.Storage.set_auto_value tbl auto;
                    Uv_db.Storage.set_rowid_floor tbl
                      (Uv_db.Storage.next_rowid live_tbl))
              temp_tables;
            true
          end)

let run_inner ~(config : Config.t) ~cur_phase ~analyzer
    ?(plan_for = fun _ -> None) eng (target : Analyzer.target) =
  let obs = config.Config.obs in
  let fault = config.Config.fault in
  let log = Uv_db.Engine.log eng in
  let rtt = Uv_util.Clock.rtt_ms (Uv_db.Engine.clock eng) in
  let op_kind =
    match target.Analyzer.op with
    | Analyzer.Add _ -> "add"
    | Analyzer.Remove -> "remove"
    | Analyzer.Change _ -> "change"
  in
  Uv_obs.Trace.with_span obs ~cat:"whatif"
    ~args:
      [ ("op", Uv_obs.Json.Str op_kind);
        ("tau", Uv_obs.Json.Int target.Analyzer.tau) ]
    "whatif"
  @@ fun () ->
  let t0 = Uv_util.Clock.now_ms () in
  (* the wall-clock budget: checked at every phase boundary, before every
     serial statement and at every parallel wave boundary — an abort
     leaves the original engine untouched (only the temporary universe is
     mid-flight, and it is discarded with the exception) *)
  let deadline_at =
    Option.map (fun d -> t0 +. d) config.Config.deadline_ms
  in
  let deadline_hit () =
    match deadline_at with
    | Some at -> Uv_util.Clock.now_ms () > at
    | None -> false
  in
  let check_deadline () =
    if deadline_hit () then
      raise
        (Abort
           {
             Error.code = Error.Deadline;
             phase = !cur_phase;
             message =
               Printf.sprintf "deadline of %g ms exceeded"
                 (Option.value config.Config.deadline_ms ~default:0.0);
           })
  in
  (* phase breakdown is measured on the plain clock even with observability
     off — it is a handful of timestamps per run and feeds the outcome *)
  let phases = ref [] in
  let phase ?args name f =
    cur_phase := name;
    check_deadline ();
    let s = Uv_util.Clock.now_ms () in
    let r = Uv_obs.Trace.with_span obs ~cat:"phase" ?args name f in
    phases := (name, Uv_util.Clock.now_ms () -. s) :: !phases;
    r
  in
  (* 1. replay-set computation *)
  let rs =
    phase "analyze" (fun () ->
        if config.Config.grouped then
          Analyzer.replay_set_grouped ~obs ~mode:config.Config.mode analyzer
            target
        else Analyzer.replay_set ~obs ~mode:config.Config.mode analyzer target)
  in
  let analysis_ms = List.assoc "analyze" !phases in
  let members = member_indexes rs in
  (* 2. temporary database: mutated + consulted tables *)
  let affected = List.sort_uniq compare (rs.Analyzer.mutated @ rs.Analyzer.consulted) in
  let temp_cat =
    phase "snapshot" (fun () ->
        Uv_db.Catalog.snapshot_tables (Uv_db.Engine.catalog eng) affected)
  in
  (* the hash-jump phase is always recorded — with the jumper off it is an
     empty marker, so traces show the phase was considered and skipped *)
  let jumper =
    phase "hash-jump"
      ~args:[ ("enabled", Uv_obs.Json.Bool config.Config.hash_jumper) ]
      (fun () ->
        if config.Config.hash_jumper then begin
          let j =
            Hash_jumper.of_log ~initial:(Analyzer.base_hashes analyzer) log
          in
          let final =
            List.filter_map
              (fun table ->
                Option.map
                  (fun tbl -> (table, Uv_db.Storage.hash tbl))
                  (Uv_db.Catalog.table (Uv_db.Engine.catalog eng) table))
              rs.Analyzer.mutated
          in
          Some
            (Hash_jumper.expectations j ~final ~mutated:rs.Analyzer.mutated
               ~members)
        end
        else None)
  in
  (* 3. rollback: undo members (and the removed/changed target) newest
     first — or, when the engine carries a checkpoint ladder that makes
     it cheaper, jump the affected tables to a rung below the oldest
     member and redo the non-members forward *)
  let undone, rollback_strategy =
    phase "rollback" (fun () ->
        let undo_list =
          let tgt =
            match target.Analyzer.op with
            | Analyzer.Remove | Analyzer.Change _
              when target.Analyzer.tau >= 1
                   && target.Analyzer.tau <= Uv_db.Log.length log ->
                [ target.Analyzer.tau ]
            | _ -> []
          in
          List.sort_uniq compare (tgt @ members) |> List.rev
        in
        let jumped =
          match Uv_db.Engine.checkpoints eng with
          | Some ladder when undo_list <> [] ->
              checkpoint_rollback ladder log temp_cat undo_list
          | _ -> false
        in
        if jumped then Uv_obs.Trace.incr obs "whatif.checkpoint_jumps"
        else
          List.iter
            (fun i ->
              let entry = Uv_db.Log.entry log i in
              Uv_db.Log.apply_undo temp_cat entry.Uv_db.Log.undo)
            undo_list;
        (List.length undo_list, if jumped then "checkpoint" else "undo"))
  in
  (* 4. replay forward: real parallel waves when eligible, else serial *)
  let weights : (int, float) Hashtbl.t = Hashtbl.create 64 in
  (* successful replays by commit index; the retroactive op is 0 *)
  let entry_of : (int, Uv_db.Log.entry) Hashtbl.t = Hashtbl.create 64 in
  let failed = ref 0 in
  let replayed = ref 0 in
  let hash_jump_at = ref None in
  let measured_parallel_ms = ref None in
  let exec_waves = ref 0 in
  let retries = ref 0 in
  let degraded = ref false in
  (* compiled plans from the session cache, one lookup per member *)
  let member_plans = List.map (fun i -> (i, plan_for i)) members in
  let plans_used =
    List.length (List.filter (fun (_, p) -> Option.is_some p) member_plans)
  in
  if plans_used > 0 then
    Uv_obs.Trace.incr obs ~by:plans_used "whatif.plans_used";
  phase "replay" (fun () ->
  if parallel_eligible config ~analyzer target members then begin
    let stride = 1 lsl 20 in
    let r0 =
      (* a private rowid range per statement, above everything live —
         including ranges a previous what-if stamped into this universe *)
      let mx =
        List.fold_left
          (fun acc (_, st) -> max acc (Uv_db.Storage.next_rowid st))
          0
          (Uv_db.Catalog.tables temp_cat)
      in
      ((mx / stride) + 1) * stride
    in
    let structural_tables =
      List.filter_map
        (fun (name, _) ->
          if
            List.exists
              (fun ev -> Uv_db.Catalog.triggers_for temp_cat name ev <> [])
              [ Uv_sql.Ast.Ev_insert; Uv_sql.Ast.Ev_update; Uv_sql.Ast.Ev_delete ]
          then Some name
          else None)
        (Uv_db.Catalog.tables temp_cat)
    in
    let items =
      List.map
        (fun (i, plan) ->
          let entry = Uv_db.Log.entry log i in
          let inf = Analyzer.info analyzer i in
          {
            Wave_exec.idx = i;
            stmt = entry.Uv_db.Log.stmt;
            nondet = entry.Uv_db.Log.nondet;
            app_txn = entry.Uv_db.Log.app_txn;
            sim_time = 1_700_000_000 + i;
            rowid_base = r0 + (i * stride);
            structural =
              List.exists
                (fun t -> List.mem t structural_tables)
                (write_tables inf.Analyzer.rw);
            plan;
          })
        member_plans
    in
    let head =
      match target.Analyzer.op with
      | Analyzer.Add s | Analyzer.Change s ->
          Some
            {
              Wave_exec.idx = 0;
              stmt = s;
              nondet = [];
              app_txn = None;
              sim_time = 1_700_000_000 + target.Analyzer.tau;
              rowid_base = r0;
              structural = true;
              plan = None;
            }
      | Analyzer.Remove -> None
    in
    let exec_edges = Analyzer.exec_dependency_edges analyzer ~members:rs.Analyzer.members in
    let res =
      Wave_exec.execute ~obs ~fault ~should_abort:deadline_hit
        ~workers:config.Config.workers ~rtt_ms:rtt ~catalog:temp_cat ~head
        ~items ~edges:exec_edges ()
    in
    Hashtbl.iter (fun k v -> Hashtbl.replace weights k v) res.Wave_exec.durations;
    Hashtbl.iter (fun k v -> Hashtbl.replace entry_of k v) res.Wave_exec.entries;
    failed := res.Wave_exec.failed;
    replayed := List.length members;
    measured_parallel_ms := Some res.Wave_exec.measured_ms;
    exec_waves := res.Wave_exec.wave_count;
    retries := res.Wave_exec.retries;
    degraded := res.Wave_exec.degraded
  end
  else begin
    let temp_eng = Uv_db.Engine.of_catalog ~rtt_ms:rtt ~obs ~fault temp_cat in
    let temp_log = Uv_db.Engine.log temp_eng in
    let exec_timed ?app_txn ?nondet ?plan idx stmt =
      check_deadline ();
      let s = Uv_util.Clock.now_ms () in
      let len0 = Uv_db.Log.length temp_log in
      (* an injected statement fault was rolled back with the engine's
         clock and PRNG restored, so one retry reenacts the statement
         exactly; a second injection aborts the run *)
      let rec attempt again =
        try
          ignore (Uv_db.Engine.exec ?app_txn ?nondet ?plan temp_eng stmt);
          if Uv_db.Log.length temp_log > len0 then
            Hashtbl.replace entry_of idx (Uv_db.Log.entry temp_log (len0 + 1))
        with
        | Uv_db.Engine.Signal_raised _ | Uv_db.Engine.Sql_error _ ->
            incr failed
        | Uv_fault.Fault.Injected inj ->
            if again then
              raise
                (Abort
                   {
                     Error.code = Error.Fault;
                     phase = !cur_phase;
                     message = fault_message inj ^ " persisted after retry";
                   })
            else begin
              incr retries;
              attempt true
            end
      in
      attempt false;
      let d = Uv_util.Clock.now_ms () -. s in
      Hashtbl.replace weights idx d
    in
    (* the retroactive operation itself, just before τ *)
    (match target.Analyzer.op with
    | Analyzer.Add stmt | Analyzer.Change stmt ->
        Uv_db.Engine.set_sim_time temp_eng (1_700_000_000 + target.Analyzer.tau);
        exec_timed 0 stmt
    | Analyzer.Remove -> ());
    (try
       List.iteri
         (fun pos (i, plan) ->
           let entry = Uv_db.Log.entry log i in
           Uv_db.Engine.set_sim_time temp_eng (1_700_000_000 + i);
           exec_timed ~nondet:entry.Uv_db.Log.nondet
             ?app_txn:entry.Uv_db.Log.app_txn ?plan i entry.Uv_db.Log.stmt;
           incr replayed;
           match jumper with
           | Some exp ->
               Uv_obs.Trace.incr obs "hash_jumper.checks";
               if Hash_jumper.converged exp temp_cat ~member_pos:pos then begin
                 Uv_obs.Trace.incr obs "hash_jumper.hits";
                 Uv_obs.Trace.instant obs "hash_jumper.hit"
                   ~args:[ ("index", Uv_obs.Json.Int i) ];
                 hash_jump_at := Some i;
                 raise Exit
               end
               else Uv_obs.Trace.incr obs "hash_jumper.misses"
           | None -> ())
         member_plans
     with Exit -> ());
    (* on a hash-hit the original tables are retained (§4.5): reflect the
       original's affected tables in the temporary catalog so the outcome's
       universe is consistent *)
    match !hash_jump_at with
    | Some _ ->
        Uv_db.Catalog.copy_tables_into (Uv_db.Engine.catalog eng) ~into:temp_cat
          affected;
        (* on a hit the original timeline is retained wholesale, schema
           objects included *)
        Uv_db.Catalog.copy_objects_into (Uv_db.Engine.catalog eng) ~into:temp_cat
    | None -> ()
  end);
  (* 5. cost model *)
  let serial_cost_ms, simulated_parallel_ms, changed =
    phase "cost-model" (fun () ->
        let replayed_members =
          match !hash_jump_at with
          | None -> members
          | Some stop -> List.filter (fun i -> i <= stop) members
        in
        let weight i =
          (try Hashtbl.find weights i with Not_found -> 0.0) +. rtt
        in
        let op_weight = if Hashtbl.mem weights 0 then weight 0 else 0.0 in
        let serial_cost_ms =
          op_weight
          +. List.fold_left (fun acc i -> acc +. weight i) 0.0 replayed_members
        in
        let edges =
          Analyzer.dependency_edges analyzer ~members:rs.Analyzer.members
        in
        let simulated_parallel_ms =
          op_weight
          +. Scheduler.makespan ~entries:replayed_members ~edges ~weight
               ~workers:config.Config.workers
        in
        let changed =
          match !hash_jump_at with
          | Some _ -> false
          | None ->
              (not
                 (Int64.equal
                    (Uv_db.Catalog.db_hash temp_cat)
                    (Uv_db.Catalog.db_hash
                       (Uv_db.Catalog.snapshot_tables
                          (Uv_db.Engine.catalog eng) affected))))
              || not
                   (String.equal
                      (Uv_db.Catalog.objects_signature temp_cat)
                      (Uv_db.Catalog.objects_signature
                         (Uv_db.Engine.catalog eng)))
        in
        (serial_cost_ms, simulated_parallel_ms, changed))
  in
  let real_ms = Uv_util.Clock.now_ms () -. t0 in
  (* merged new-universe log: original entries for non-members, replayed
     entries for members, the retroactive operation at tau; reindexed *)
  let new_log =
    phase "merge-log" @@ fun () ->
    let merged = Uv_db.Log.create () in
    let push e =
      Uv_db.Log.append merged
        { e with Uv_db.Log.index = Uv_db.Log.length merged + 1 }
    in
    let op_entry = Hashtbl.find_opt entry_of 0 in
    for i = 1 to Uv_db.Log.length log do
      if i = target.Analyzer.tau then begin
        (match (target.Analyzer.op, op_entry) with
        | (Analyzer.Add _ | Analyzer.Change _), Some e -> push e
        | _ -> ());
        match target.Analyzer.op with
        | Analyzer.Add _ -> push (Uv_db.Log.entry log i)
        | Analyzer.Remove | Analyzer.Change _ -> ()
      end
      else if rs.Analyzer.members.(i - 1) then begin
        (* only successful replays produced an entry; an aborted
           transaction is correctly absent from the new history, and past
           a hash-hit the original entry re-derives itself *)
        match Hashtbl.find_opt entry_of i with
        | Some e -> push e
        | None -> if !hash_jump_at <> None then push (Uv_db.Log.entry log i)
      end
      else push (Uv_db.Log.entry log i)
    done;
    (* an addition past the end of the history *)
    if target.Analyzer.tau > Uv_db.Log.length log then (
      match (target.Analyzer.op, op_entry) with
      | Analyzer.Add _, Some e -> push e
      | _ -> ());
    merged
  in
  {
    replay = rs;
    replayed = !replayed;
    undone;
    failed_replays = !failed;
    hash_jump_at = !hash_jump_at;
    real_ms;
    serial_cost_ms;
    simulated_parallel_ms;
    measured_parallel_ms = !measured_parallel_ms;
    workers = config.Config.workers;
    exec_waves = !exec_waves;
    analysis_ms;
    phases = List.rev !phases;
    final_db_hash = Uv_db.Catalog.db_hash temp_cat;
    changed;
    degraded = !degraded;
    retries = !retries;
    temp_catalog = temp_cat;
    new_log;
    rollback_strategy;
    plans_used;
  }

let guarded cur_phase f =
  try Ok (f ()) with
  | Abort e -> Error e
  | Wave_exec.Aborted reason ->
      Error { Error.code = Error.Deadline; phase = !cur_phase; message = reason }
  | Uv_fault.Fault.Injected inj ->
      Error
        {
          Error.code = Error.Fault;
          phase = !cur_phase;
          message = fault_message inj ^ " persisted after retry";
        }
  | Uv_util.Domain_pool.Worker_exit e ->
      Error
        {
          Error.code = Error.Fault;
          phase = !cur_phase;
          message = "worker lane died: " ^ Printexc.to_string e;
        }
  | (Out_of_memory | Stack_overflow | Assert_failure _) as e -> raise e
  | e ->
      Error
        {
          Error.code = Error.Internal;
          phase = !cur_phase;
          message = Printexc.to_string e;
        }

(* ------------------------------------------------------------------ *)
(* Service: thread-safe what-if over one shared, growing history        *)
(* ------------------------------------------------------------------ *)

module Imap = Map.Make (Int)

module Service_impl = struct
  (* One immutable view of every analysis cache, published as a unit:
     readers obtain the whole set with a single atomic load and can
     never observe a half-swapped cache (analyzer from one history
     length, plans from another). The atomic swap alone is not the full
     concurrency argument, though — [Analyzer.extend] mutates the
     analyzer value *inside* the current snapshot in place. The
     reader/writer lock is what makes that sound: ingest/publish runs
     on the write side, every what-if runs on the read side, so no run
     ever overlaps an extend. The snapshot swap's job is the rebuild
     case (new analyzer value) and tear-freedom of the switch. *)
  type snapshot = {
    analyzer : Analyzer.t option;
    analyzed_len : int;
    epoch : int;
    plans : Uv_db.Engine.plan option Imap.t;
  }

  let empty_snapshot =
    { analyzer = None; analyzed_len = 0; epoch = -1; plans = Imap.empty }

  type reply = { outcome : outcome; history_len : int }

  type stats = {
    runs : int;
    analyzer_builds : int;
    analyzer_extends : int;
    analyzed_entries : int;
    plan_cache_size : int;
    plans_compiled : int;
    plan_cache_hits : int;
    checkpoint_rungs : int;
    checkpoint_every : int;
    ingested : int;
    publishes : int;
    sessions : int;
  }

  (* [t] is defined after [stats] on purpose: the two share field names
     and unannotated [t.runs]-style accesses must resolve here. *)
  type t = {
    eng : Uv_db.Engine.t;
    config : Config.t;
    rowset : Rowset.config option;
    base : Uv_db.Catalog.t option;
    lock : Uv_util.Rwlock.t;
    state : snapshot Atomic.t;
    pinned : bool;
        (* one-shot wrapper mode: trust the caller's prebuilt analyzer
           and never refresh (the sessionless [Whatif.run] contract) *)
    runs : int Atomic.t;
    analyzer_builds : int Atomic.t;
    analyzer_extends : int Atomic.t;
    plans_compiled : int Atomic.t;
    plan_cache_hits : int Atomic.t;
    ingested : int Atomic.t;
    publishes : int Atomic.t;
    sessions : int Atomic.t;
  }

  let make_t ~config ~rowset ~base ~pinned ~state eng =
    {
      eng;
      config;
      rowset;
      base;
      (* Writer priority: a waiting ingest blocks *new* runs from being
         admitted, so a saturating stream of what-ifs cannot starve the
         committed-history writer. Safe here because the service lock is
         never read-acquired re-entrantly (run_fresh holds the read side
         exactly once; the engine's own storage locks are separate,
         reader-preferring instances). *)
      lock = Uv_util.Rwlock.create ~writer_priority:true ();
      state = Atomic.make state;
      pinned;
      runs = Atomic.make 0;
      analyzer_builds = Atomic.make 0;
      analyzer_extends = Atomic.make 0;
      plans_compiled = Atomic.make 0;
      plan_cache_hits = Atomic.make 0;
      ingested = Atomic.make 0;
      publishes = Atomic.make 0;
      sessions = Atomic.make 0;
    }

  let create ?(config = Config.default) ?rowset ?base eng =
    if
      Config.checkpoint_every config > 0
      && Option.is_none (Uv_db.Engine.checkpoints eng)
    then
      Uv_db.Engine.enable_checkpoints eng
        ~every:(Config.checkpoint_every config);
    make_t ~config ~rowset ~base ~pinned:false ~state:empty_snapshot eng

  (* Internal: the sessionless [Whatif.run]/[run_exn] path. The given
     analyzer is trusted as covering the engine's current log, exactly
     as the historical contract stated. *)
  let of_analyzer ~config ~analyzer eng =
    let state =
      {
        analyzer = Some analyzer;
        analyzed_len = Uv_db.Log.length (Uv_db.Engine.log eng);
        epoch = Uv_db.Catalog.epoch (Uv_db.Engine.catalog eng);
        plans = Imap.empty;
      }
    in
    make_t ~config ~rowset:None ~base:None ~pinned:true ~state eng

  let engine t = t.eng
  let config t = t.config

  let lock_pressure t =
    (Uv_util.Rwlock.waiting_writers t.lock, Uv_util.Rwlock.active_readers t.lock)

  let history_len t =
    Uv_util.Rwlock.read t.lock (fun () ->
        Uv_db.Log.length (Uv_db.Engine.log t.eng))

  let stale t snap =
    Option.is_none snap.analyzer
    || snap.analyzed_len <> Uv_db.Log.length (Uv_db.Engine.log t.eng)
    || snap.epoch <> Uv_db.Catalog.epoch (Uv_db.Engine.catalog t.eng)

  (* Bring the published snapshot up to the engine's committed head.
     Caller must hold the write lock. New DML-only entries extend the
     analyzer in O(Δ) and compile plans for just the delta; a shrunk
     log, a catalog epoch change (DDL, restore) or DDL among the new
     entries rebuilds from scratch. *)
  let publish_locked t =
    let obs = Config.obs t.config in
    let log = Uv_db.Engine.log t.eng in
    let n = Uv_db.Log.length log in
    let ep = Uv_db.Catalog.epoch (Uv_db.Engine.catalog t.eng) in
    let snap = Atomic.get t.state in
    let compile plans lo =
      if not (Config.plans t.config) then plans
      else begin
        let acc = ref plans in
        for i = lo to n do
          let p =
            Uv_db.Engine.prepare
              (Uv_db.Engine.catalog t.eng)
              (Uv_db.Log.entry log i).Uv_db.Log.stmt
          in
          if Option.is_some p then Atomic.incr t.plans_compiled;
          acc := Imap.add i p !acc
        done;
        !acc
      end
    in
    let new_ddl () =
      let rec go i =
        i <= n
        && (Uv_sql.Ast.is_ddl (Uv_db.Log.entry log i).Uv_db.Log.stmt
           || go (i + 1))
      in
      go (snap.analyzed_len + 1)
    in
    let fresh =
      match snap.analyzer with
      | Some a when n >= snap.analyzed_len && ep = snap.epoch && not (new_ddl ()) ->
          if n > snap.analyzed_len then begin
            ignore (Analyzer.extend ~obs a : int);
            Atomic.incr t.analyzer_extends;
            Uv_obs.Trace.incr obs "whatif.service.analyzer_extends"
          end;
          {
            analyzer = Some a;
            analyzed_len = n;
            epoch = ep;
            plans = compile snap.plans (snap.analyzed_len + 1);
          }
      | _ ->
          let a =
            Analyzer.of_source ?config:t.rowset ?base:t.base ~obs
              (Analyzer.source_of_log log)
          in
          Atomic.incr t.analyzer_builds;
          Uv_obs.Trace.incr obs "whatif.service.analyzer_builds";
          { analyzer = Some a; analyzed_len = n; epoch = ep;
            plans = compile Imap.empty 1 }
    in
    Atomic.incr t.publishes;
    Atomic.set t.state fresh

  let publish t = Uv_util.Rwlock.write t.lock (fun () -> publish_locked t)

  let invalidate t =
    Uv_util.Rwlock.write t.lock (fun () -> Atomic.set t.state empty_snapshot)

  let ingest t stmts =
    Uv_util.Rwlock.write t.lock (fun () ->
        let failed = ref 0 in
        List.iter
          (fun s ->
            match ignore (Uv_db.Engine.exec t.eng s) with
            | () -> ()
            | exception Uv_db.Engine.Sql_error _ -> incr failed)
          stmts;
        let applied = List.length stmts - !failed in
        ignore (Atomic.fetch_and_add t.ingested applied : int);
        publish_locked t;
        (applied, !failed))

  let ingest_sql t sql = ingest t (Uv_sql.Parser.parse_script sql)

  let plan_lookup t snap config i =
    if not (Config.plans config) then None
    else
      match Imap.find_opt i snap.plans with
      | Some p ->
          Atomic.incr t.plan_cache_hits;
          p
      | None -> None

  (* Run [f] over a snapshot that is current w.r.t. the engine's head,
     holding the read side of the lock for the whole evaluation so no
     ingest can extend the analyzer mid-run. The pull-refresh retry loop
     keeps Session's original semantics: a what-if issued after the log
     grew sees the grown history. *)
  let rec run_fresh t f =
    match
      Uv_util.Rwlock.read t.lock (fun () ->
          let snap = Atomic.get t.state in
          if (not t.pinned) && stale t snap then None else Some (f snap))
    with
    | Some v -> v
    | None ->
        Uv_util.Rwlock.write t.lock (fun () ->
            if stale t (Atomic.get t.state) then publish_locked t);
        run_fresh t f

  let run_with t config cur_phase snap target =
    Atomic.incr t.runs;
    let analyzer =
      match snap.analyzer with
      | Some a -> a
      | None -> invalid_arg "Whatif.Service.run: no published analyzer"
    in
    let outcome =
      run_inner ~config ~cur_phase ~analyzer
        ~plan_for:(plan_lookup t snap config)
        t.eng target
    in
    { outcome; history_len = snap.analyzed_len }

  let run_unguarded ?config t target =
    let config = Option.value config ~default:t.config in
    run_fresh t (fun snap ->
        let cur_phase = ref "init" in
        run_with t config cur_phase snap target)

  let run ?config t target =
    let config = Option.value config ~default:t.config in
    run_fresh t (fun snap ->
        let cur_phase = ref "init" in
        guarded cur_phase (fun () -> run_with t config cur_phase snap target))

  let stats t =
    let rungs, every =
      match Uv_db.Engine.checkpoints t.eng with
      | Some l -> (Uv_db.Checkpoint.count l, Uv_db.Checkpoint.every l)
      | None -> (0, 0)
    in
    let snap = Atomic.get t.state in
    {
      runs = Atomic.get t.runs;
      analyzer_builds = Atomic.get t.analyzer_builds;
      analyzer_extends = Atomic.get t.analyzer_extends;
      analyzed_entries = snap.analyzed_len;
      plan_cache_size = Imap.cardinal snap.plans;
      plans_compiled = Atomic.get t.plans_compiled;
      plan_cache_hits = Atomic.get t.plan_cache_hits;
      checkpoint_rungs = rungs;
      checkpoint_every = every;
      ingested = Atomic.get t.ingested;
      publishes = Atomic.get t.publishes;
      sessions = Atomic.get t.sessions;
    }
end

let run_exn ?(config = Config.default) ~analyzer eng target =
  let svc = Service_impl.of_analyzer ~config ~analyzer eng in
  (Service_impl.run_unguarded svc target).Service_impl.outcome

let run ?(config = Config.default) ~analyzer eng target =
  let svc = Service_impl.of_analyzer ~config ~analyzer eng in
  match Service_impl.run svc target with
  | Ok r -> Ok r.Service_impl.outcome
  | Error e -> Error e

let commit eng outcome =
  if outcome.changed then begin
    Uv_db.Catalog.copy_tables_into outcome.temp_catalog
      ~into:(Uv_db.Engine.catalog eng)
      outcome.replay.Analyzer.mutated;
    (* retroactive DDL on schema objects (views, procedures, triggers,
       indexes) lands in the live catalog too *)
    Uv_db.Catalog.copy_objects_into outcome.temp_catalog
      ~into:(Uv_db.Engine.catalog eng)
  end

let query_new_universe outcome sel =
  let eng = Uv_db.Engine.of_catalog outcome.temp_catalog in
  Uv_db.Engine.query eng sel

(* ------------------------------------------------------------------ *)
(* Sessions: the single-owner view over a Service                       *)
(* ------------------------------------------------------------------ *)

module Session = struct
  type stats = {
    runs : int;
    analyzer_builds : int;
    analyzer_extends : int;
    analyzed_entries : int;
    plan_cache_size : int;
    plans_compiled : int;
    plan_cache_hits : int;
    checkpoint_rungs : int;
    checkpoint_every : int;
  }

  (* A session is now just a handle on a service: same caches, same
     refresh policy, minus the service-wide counters. *)
  type t = Service_impl.t

  let create ?config ?rowset ?base eng =
    Service_impl.create ?config ?rowset ?base eng

  let engine = Service_impl.engine
  let config = Service_impl.config
  let invalidate = Service_impl.invalidate

  let run t target =
    match Service_impl.run t target with
    | Ok r -> Ok r.Service_impl.outcome
    | Error e -> Error e

  let stats t =
    let s = Service_impl.stats t in
    {
      runs = s.Service_impl.runs;
      analyzer_builds = s.Service_impl.analyzer_builds;
      analyzer_extends = s.Service_impl.analyzer_extends;
      analyzed_entries = s.Service_impl.analyzed_entries;
      plan_cache_size = s.Service_impl.plan_cache_size;
      plans_compiled = s.Service_impl.plans_compiled;
      plan_cache_hits = s.Service_impl.plan_cache_hits;
      checkpoint_rungs = s.Service_impl.checkpoint_rungs;
      checkpoint_every = s.Service_impl.checkpoint_every;
    }
end

module Service = struct
  include Service_impl

  let open_session t =
    Atomic.incr t.sessions;
    t
end
