(** The retroactive operation driver (§4.4): rollback, replay, update.

    Given an engine holding a committed history and a retroactive target,
    [run]:

    + computes the replay set 𝕀 with the {!Analyzer} (mode-selectable:
      column-only, row-only, or cell-wise);
    + builds a temporary database holding deep copies of the mutated and
      consulted tables (regular service on the original engine is never
      blocked);
    + rolls back 𝕀's entries in reverse commit order by applying their
      logged inverse operations (rollback option (i) of §5's
      implementation list, made selective by the dependency analysis);
    + applies the retroactive operation at τ and replays 𝕀 forward —
      by default on real OCaml 5 domains, wave by wave over the conflict
      DAG ({!Wave_exec}), falling back to serial replay for ineligible
      histories (DDL members or targets, or when the Hash-jumper is on);
    + optionally runs the Hash-jumper after every replayed entry and
      early-terminates on a hash-hit (serial replay only);
    + reports three cost views: measured serial-sum time, the simulated
      makespan over the replay conflict DAG, and — when the parallel
      executor ran — the measured parallel wall time.

    The original engine is left untouched. [commit] performs the
    database-update step, copying the mutated tables back. *)

open Uv_sql

(** What-if driver knobs, built with {!Config.make} so future options
    don't break existing call sites. *)
module Config : sig
  type t

  val make :
    ?mode:Analyzer.mode ->
    ?workers:int ->
    ?hash_jumper:bool ->
    ?grouped:bool ->
    ?parallel_exec:bool ->
    ?obs:Uv_obs.Trace.t ->
    ?deadline_ms:float ->
    ?fault:Uv_fault.Fault.t ->
    unit ->
    t
  (** Defaults: [mode = Cell]; [workers = 8] (the paper's testbed width;
      clamped to at least 1); [hash_jumper = false]; [grouped = false]
      (transaction-granularity closure, the non-transpiled "D" system);
      [parallel_exec = true] — replay on real domains whenever the
      history is eligible; [obs = Uv_obs.Trace.disabled] — pass a live
      collector to trace the run (root [whatif] span, per-phase spans,
      and every instrumented layer underneath); [deadline_ms = None] —
      when set, the run's wall-clock budget: checked at every phase
      boundary, before every serial statement and at every parallel wave
      boundary, and exceeded budgets abort the run cleanly (the original
      engine is never touched mid-run, so there is nothing to undo);
      [fault = Uv_fault.Fault.disabled] — a fault-injection plan
      ({!Uv_fault.Fault}) threaded into the temporary engines, the wave
      executor and the domain pool. *)

  val default : t
  (** [make ()]. *)

  val mode : t -> Analyzer.mode
  val workers : t -> int
  val hash_jumper : t -> bool
  val grouped : t -> bool
  val parallel_exec : t -> bool
  val obs : t -> Uv_obs.Trace.t
  val deadline_ms : t -> float option
  val fault : t -> Uv_fault.Fault.t
end

(** Why a what-if run could not produce an outcome. *)
module Error : sig
  type code =
    | Deadline  (** the [deadline_ms] budget ran out *)
    | Fault
        (** an injected (or reported) infrastructure fault persisted
            after retry — transient faults are absorbed by statement
            retry, batch redispatch and graceful degradation first *)
    | Internal  (** an unexpected exception; see [message] *)

  type t = {
    code : code;
    phase : string;
        (** the phase the run was in ([analyze], [snapshot], [hash-jump],
            [rollback], [replay], [cost-model], [merge-log], or [init]) *)
    message : string;
  }

  val code_name : code -> string
  (** Stable lowercase name ([deadline] / [fault] / [internal]). *)

  val to_string : t -> string
end

exception Abort of Error.t
(** Raised by {!run_exn} when the run aborts (deadline, or a fault that
    survived retry). {!run} returns it as [Error]. *)

type config = Config.t

val default_config : config
(** [Config.default]. *)

type outcome = {
  replay : Analyzer.replay_set;
  replayed : int;  (** entries actually re-executed *)
  undone : int;  (** entries rolled back *)
  failed_replays : int;
      (** replays that signalled or errored (aborted app transactions) *)
  hash_jump_at : int option;
      (** original commit index at which the Hash-jumper fired *)
  real_ms : float;  (** measured wall time of the whole operation *)
  serial_cost_ms : float;
      (** sum of per-entry replay costs + one round trip each *)
  simulated_parallel_ms : float;
      (** conflict-DAG list-scheduling makespan with [workers] lanes *)
  measured_parallel_ms : float option;
      (** measured wall time of the parallel wave replay; [None] when the
          serial path ran (ineligible history, Hash-jumper, or
          [parallel_exec = false]) *)
  workers : int;  (** the worker count the outcome was computed with *)
  exec_waves : int;
      (** executed wave batches (structural singletons included); [0]
          on the serial path *)
  analysis_ms : float;  (** replay-set computation time *)
  phases : (string * float) list;
      (** wall-time breakdown of the run in execution order —
          [analyze], [snapshot], [hash-jump], [rollback], [replay],
          [cost-model], [merge-log] — populated even with observability
          disabled (a handful of clock reads per run) *)
  final_db_hash : int64;  (** hash of the temporary universe *)
  changed : bool;  (** false when the Hash-jumper proved no effect *)
  degraded : bool;
      (** the parallel replay lost its worker domains and finished on the
          caller lane; results are identical, only parallelism was lost *)
  retries : int;
      (** transient faults absorbed without affecting the outcome:
          statement re-executions and wave redispatches *)
  temp_catalog : Uv_db.Catalog.t;  (** the new universe *)
  new_log : Uv_db.Log.t;
      (** the new universe's committed history: non-members keep their
          original entries, replayed members contribute their re-executed
          entries, and the retroactive operation sits at τ. This is what
          makes scenarios branchable (§6 "Managing Many what-if
          Scenarios"): a further what-if can analyse this log. The
          parallel executor restamps member [written_hashes] in commit
          order, so the log is bit-identical at every worker count —
          and identical to what serial replay produces. *)
}

val run :
  ?config:config ->
  analyzer:Analyzer.t ->
  Uv_db.Engine.t ->
  Analyzer.target ->
  (outcome, Error.t) result
(** The analyzer must have been built over the engine's current log
    (Ultraverse derives R/W sets asynchronously during regular service;
    analysis construction is therefore not part of what-if latency).
    [final_db_hash] and [new_log] are invariant under [workers].

    Returns [Error] instead of raising when the run aborts: the deadline
    expired, an injected fault persisted after retry and degradation, or
    an unexpected exception escaped a phase ([Error.Internal]). In every
    [Error] case the original engine is untouched — what-if runs never
    mutate it before {!commit} — so the caller can simply retry.
    [Out_of_memory], [Stack_overflow] and [Assert_failure] are not
    converted; they propagate. *)

val run_exn :
  ?config:config ->
  analyzer:Analyzer.t ->
  Uv_db.Engine.t ->
  Analyzer.target ->
  outcome
(** Exception-style variant of {!run} for callers that configure neither
    deadlines nor fault injection: exceptions propagate raw (an abort
    surfaces as {!Abort}). *)

val commit : Uv_db.Engine.t -> outcome -> unit
(** Database-update phase: copy the outcome's mutated tables into the
    engine's live catalog (no-op when [changed] is false). The engine's
    log is *not* rewritten — callers exploring scenarios should keep the
    outcome's temporary catalog instead. *)

val query_new_universe : outcome -> Ast.select -> Uv_db.Engine.result
(** Run a read-only query against the outcome's temporary database —
    the "what would X have been" question the analysis exists to answer. *)
