(** The retroactive operation driver (§4.4): rollback, replay, update.

    Given an engine holding a committed history and a retroactive target,
    [run]:

    + computes the replay set 𝕀 with the {!Analyzer} (mode-selectable:
      column-only, row-only, or cell-wise);
    + builds a temporary database holding deep copies of the mutated and
      consulted tables (regular service on the original engine is never
      blocked);
    + rolls back 𝕀's entries in reverse commit order by applying their
      logged inverse operations (rollback option (i) of §5's
      implementation list, made selective by the dependency analysis);
    + applies the retroactive operation at τ and replays 𝕀 forward —
      by default on real OCaml 5 domains, wave by wave over the conflict
      DAG ({!Wave_exec}), falling back to serial replay for ineligible
      histories (DDL members or targets, or when the Hash-jumper is on);
    + optionally runs the Hash-jumper after every replayed entry and
      early-terminates on a hash-hit (serial replay only);
    + reports three cost views: measured serial-sum time, the simulated
      makespan over the replay conflict DAG, and — when the parallel
      executor ran — the measured parallel wall time.

    The original engine is left untouched. [commit] performs the
    database-update step, copying the mutated tables back. *)

open Uv_sql

(** What-if driver knobs, built with {!Config.make} so future options
    don't break existing call sites. *)
module Config : sig
  type t

  val make :
    ?mode:Analyzer.mode ->
    ?workers:int ->
    ?hash_jumper:bool ->
    ?grouped:bool ->
    ?parallel_exec:bool ->
    ?obs:Uv_obs.Trace.t ->
    ?deadline_ms:float ->
    ?fault:Uv_fault.Fault.t ->
    ?checkpoint_every:int ->
    ?plans:bool ->
    unit ->
    t
  (** Defaults: [mode = Cell]; [workers = 8] (the paper's testbed width;
      clamped to at least 1); [hash_jumper = false]; [grouped = false]
      (transaction-granularity closure, the non-transpiled "D" system);
      [parallel_exec = true] — replay on real domains whenever the
      history is eligible; [obs = Uv_obs.Trace.disabled] — pass a live
      collector to trace the run (root [whatif] span, per-phase spans,
      and every instrumented layer underneath); [deadline_ms = None] —
      when set, the run's wall-clock budget: checked at every phase
      boundary, before every serial statement and at every parallel wave
      boundary, and exceeded budgets abort the run cleanly (the original
      engine is never touched mid-run, so there is nothing to undo);
      [fault = Uv_fault.Fault.disabled] — a fault-injection plan
      ({!Uv_fault.Fault}) threaded into the temporary engines, the wave
      executor and the domain pool; [checkpoint_every = 0] — when
      positive, a {!Session} attaches a checkpoint ladder to the engine
      snapshotting the catalog every that many commits, and the rollback
      phase may jump to the nearest rung instead of undoing the whole
      member tail; [plans = true] — let a {!Session} compile and cache
      statement plans for replayed members (caches only ever amortize:
      outcomes are bitwise-identical with both knobs off). *)

  val default : t
  (** [make ()]. *)

  val mode : t -> Analyzer.mode
  val workers : t -> int
  val hash_jumper : t -> bool
  val grouped : t -> bool
  val parallel_exec : t -> bool
  val obs : t -> Uv_obs.Trace.t
  val deadline_ms : t -> float option
  val fault : t -> Uv_fault.Fault.t
  val checkpoint_every : t -> int
  val plans : t -> bool
end

(** Why a what-if run could not produce an outcome. *)
module Error : sig
  type code =
    | Deadline  (** the [deadline_ms] budget ran out *)
    | Fault
        (** an injected (or reported) infrastructure fault persisted
            after retry — transient faults are absorbed by statement
            retry, batch redispatch and graceful degradation first *)
    | Internal  (** an unexpected exception; see [message] *)

  type t = {
    code : code;
    phase : string;
        (** the phase the run was in ([analyze], [snapshot], [hash-jump],
            [rollback], [replay], [cost-model], [merge-log], or [init]) *)
    message : string;
  }

  val code_name : code -> string
  (** Stable lowercase name ([deadline] / [fault] / [internal]). *)

  val to_string : t -> string
end

exception Abort of Error.t
(** Raised by {!run_exn} when the run aborts (deadline, or a fault that
    survived retry). {!run} returns it as [Error]. *)

type config = Config.t

val default_config : config
(** [Config.default]. *)

type outcome = {
  replay : Analyzer.replay_set;
  replayed : int;  (** entries actually re-executed *)
  undone : int;  (** entries rolled back *)
  failed_replays : int;
      (** replays that signalled or errored (aborted app transactions) *)
  hash_jump_at : int option;
      (** original commit index at which the Hash-jumper fired *)
  real_ms : float;  (** measured wall time of the whole operation *)
  serial_cost_ms : float;
      (** sum of per-entry replay costs + one round trip each *)
  simulated_parallel_ms : float;
      (** conflict-DAG list-scheduling makespan with [workers] lanes *)
  measured_parallel_ms : float option;
      (** measured wall time of the parallel wave replay; [None] when the
          serial path ran (ineligible history, Hash-jumper, or
          [parallel_exec = false]) *)
  workers : int;  (** the worker count the outcome was computed with *)
  exec_waves : int;
      (** executed wave batches (structural singletons included); [0]
          on the serial path *)
  analysis_ms : float;  (** replay-set computation time *)
  phases : (string * float) list;
      (** wall-time breakdown of the run in execution order —
          [analyze], [snapshot], [hash-jump], [rollback], [replay],
          [cost-model], [merge-log] — populated even with observability
          disabled (a handful of clock reads per run) *)
  final_db_hash : int64;  (** hash of the temporary universe *)
  changed : bool;  (** false when the Hash-jumper proved no effect *)
  degraded : bool;
      (** the parallel replay lost its worker domains and finished on the
          caller lane; results are identical, only parallelism was lost *)
  retries : int;
      (** transient faults absorbed without affecting the outcome:
          statement re-executions and wave redispatches *)
  temp_catalog : Uv_db.Catalog.t;  (** the new universe *)
  new_log : Uv_db.Log.t;
      (** the new universe's committed history: non-members keep their
          original entries, replayed members contribute their re-executed
          entries, and the retroactive operation sits at τ. This is what
          makes scenarios branchable (§6 "Managing Many what-if
          Scenarios"): a further what-if can analyse this log. The
          parallel executor restamps member [written_hashes] in commit
          order, so the log is bit-identical at every worker count —
          and identical to what serial replay produces. *)
  rollback_strategy : string;
      (** how the rollback phase reached the pre-τ state: ["undo"] —
          selective inverse operations newest-first; ["checkpoint"] —
          jumped the affected tables to a checkpoint rung below the
          oldest member and redid the non-member tail from journal
          images (only when an attached ladder made that cheaper) *)
  plans_used : int;
      (** members replayed through a compiled plan from the session's
          cache (0 outside a {!Session} or with [Config.plans] off) *)
}

val run :
  ?config:config ->
  analyzer:Analyzer.t ->
  Uv_db.Engine.t ->
  Analyzer.target ->
  (outcome, Error.t) result
(** The analyzer must have been built over the engine's current log
    (Ultraverse derives R/W sets asynchronously during regular service;
    analysis construction is therefore not part of what-if latency).
    [final_db_hash] and [new_log] are invariant under [workers].

    Returns [Error] instead of raising when the run aborts: the deadline
    expired, an injected fault persisted after retry and degradation, or
    an unexpected exception escaped a phase ([Error.Internal]). In every
    [Error] case the original engine is untouched — what-if runs never
    mutate it before {!commit} — so the caller can simply retry.
    [Out_of_memory], [Stack_overflow] and [Assert_failure] are not
    converted; they propagate. *)

val run_exn :
  ?config:config ->
  analyzer:Analyzer.t ->
  Uv_db.Engine.t ->
  Analyzer.target ->
  outcome
(** Exception-style variant of {!run} for callers that configure neither
    deadlines nor fault injection: exceptions propagate raw (an abort
    surfaces as {!Abort}). *)

val commit : Uv_db.Engine.t -> outcome -> unit
(** Database-update phase: copy the outcome's mutated tables into the
    engine's live catalog (no-op when [changed] is false). The engine's
    log is *not* rewritten — callers exploring scenarios should keep the
    outcome's temporary catalog instead. *)

val query_new_universe : outcome -> Ast.select -> Uv_db.Engine.result
(** Run a read-only query against the outcome's temporary database —
    the "what would X have been" question the analysis exists to answer. *)

(** A what-if session caches analysis work across runs over the same
    engine, making the second and later questions O(Δ) instead of
    O(history):

    - the {!Analyzer} is built once and {!Analyzer.extend}ed when the
      log grows (DML only); a shrunk log, a catalog epoch change or new
      DDL rebuilds it from scratch;
    - compiled statement plans ({!Uv_db.Engine.prepare}) are cached per
      log index and handed to the replay hot path — plans self-validate
      at bind time, so a stale plan silently falls back to the
      interpreter;
    - with [Config.checkpoint_every > 0] the engine records periodic
      catalog snapshots that let the rollback phase jump near τ.

    Everything cached is an accelerator, never a semantic input: a
    session's outcomes (final hash, new log) are bitwise-identical to
    sessionless runs at every worker count.

    Since the Session→Service split a session is a thin handle over a
    {!Service} — same caches, same refresh policy — and the supported
    constructor is {!Service.open_session}. *)
module Session : sig
  type t

  type stats = {
    runs : int;
    analyzer_builds : int;  (** full history scans *)
    analyzer_extends : int;  (** incremental O(Δ) refreshes *)
    analyzed_entries : int;  (** log length the analyzer covers *)
    plan_cache_size : int;  (** entries with a cached compile decision *)
    plans_compiled : int;  (** statements that yielded a plan *)
    plan_cache_hits : int;  (** lookups served without recompiling *)
    checkpoint_rungs : int;  (** live rungs on the engine's ladder *)
    checkpoint_every : int;  (** current rung stride (thinning doubles it) *)
  }

  val create :
    ?config:config ->
    ?rowset:Rowset.config ->
    ?base:Uv_db.Catalog.t ->
    Uv_db.Engine.t ->
    t
  [@@ocaml.alert deprecated "use Whatif.Service.open_session"]
  (** Attach a session to an engine. When the config asks for
      checkpoints and the engine has no ladder yet, one is enabled —
      rungs accumulate as the application commits from here on.
      [rowset] and [base] are handed to every {!Analyzer.analyze} the
      session performs (the workload's RI configuration and the catalog
      the history grew from) — pass the same values a sessionless caller
      would give [analyze], or the replay sets will differ.

      @deprecated Construct a {!Service} and call
      {!Service.open_session} instead; this shorthand remains for
      single-owner scripts only. *)

  val engine : t -> Uv_db.Engine.t
  val config : t -> config

  val run : t -> Analyzer.target -> (outcome, Error.t) result
  (** {!Whatif.run} with the session's caches: refreshes the analyzer
      (extend or rebuild as needed), then drives the what-if with cached
      plans. *)

  val invalidate : t -> unit
  (** Drop every cache; the next {!run} rebuilds from the live engine
      ([ultraverse recover --force] style full recompute). *)

  val stats : t -> stats
end

(** A thread-safe what-if service over one shared, growing history —
    the long-lived core behind [ultraverse serve] and every
    single-owner {!Session}.

    One service owns one engine. Committed traffic enters through
    {!Service.ingest} (exclusive); any number of domains concurrently
    ask what-if questions through sessions opened with
    {!Service.open_session} (shared). Internally the analyzer,
    compiled-plan cache and checkpoint ladder live in an immutable
    {e snapshot} republished atomically after every ingest: a reader
    obtains the whole cache set with one atomic load and can never
    observe a half-swapped state (analyzer from one history length,
    plans from another). A readers-writer lock serializes ingest
    against in-flight runs, because [Analyzer.extend] updates the
    analyzer inside the current snapshot in place.

    Everything cached is an accelerator, never a semantic input: a
    service's outcomes (final hash, new log) are bitwise-identical to
    sessionless {!run}s at every worker count and under any
    interleaving of ingest and queries. *)
module Service : sig
  type t

  type reply = {
    outcome : outcome;
    history_len : int;
        (** committed history length the outcome was computed against —
            under concurrent ingest this tells the client exactly which
            universe answered *)
  }

  type stats = {
    runs : int;
    analyzer_builds : int;  (** full history scans *)
    analyzer_extends : int;  (** incremental O(Δ) refreshes *)
    analyzed_entries : int;  (** log length the published snapshot covers *)
    plan_cache_size : int;  (** entries with a cached compile decision *)
    plans_compiled : int;  (** statements that yielded a plan *)
    plan_cache_hits : int;  (** lookups served from the snapshot *)
    checkpoint_rungs : int;  (** live rungs on the engine's ladder *)
    checkpoint_every : int;  (** current rung stride (thinning doubles it) *)
    ingested : int;  (** statements applied through {!ingest} *)
    publishes : int;  (** snapshot swaps *)
    sessions : int;  (** handles opened with {!open_session} *)
  }

  val create :
    ?config:config ->
    ?rowset:Rowset.config ->
    ?base:Uv_db.Catalog.t ->
    Uv_db.Engine.t ->
    t
  (** Attach a service to an engine. When the config asks for
      checkpoints and the engine has no ladder yet, one is enabled.
      [rowset] and [base] are handed to every analyzer build — pass the
      same values a sessionless caller would give [Analyzer.analyze],
      or the replay sets will differ. The engine must not be mutated
      behind the service's back once serving starts: route committed
      traffic through {!ingest}. *)

  val engine : t -> Uv_db.Engine.t
  val config : t -> config

  val history_len : t -> int
  (** Committed history length, read under the service lock. *)

  val lock_pressure : t -> int * int
  (** [(waiting writers, active readers)] on the service lock, sampled
      without acquiring it — the [health] endpoint's view of ingest
      back-pressure. The lock is writer-priority: a waiting ingest
      blocks new run admissions, so the first component staying [> 0]
      across samples is the signature of a stuck run, not of reader
      starvation. *)

  val ingest : t -> Uv_sql.Ast.stmt list -> int * int
  (** Apply committed transactions to the shared history and republish
      the caches: [(applied, failed)]. Exclusive with every in-flight
      run; DML-only batches refresh the snapshot in O(Δ) ([extend] plus
      plans for just the new entries), DDL or a shrunk log rebuilds.
      Statements that fail ([Sql_error]) are counted and skipped. *)

  val ingest_sql : t -> string -> int * int
  (** {!ingest} of [Uv_sql.Parser.parse_script]. *)

  val publish : t -> unit
  (** Force a snapshot refresh without ingesting (e.g. after attaching
      to an engine that already holds history). Runs refresh on demand,
      so this is an optional warm-up. *)

  val invalidate : t -> unit
  (** Drop every cache; the next run rebuilds from the live engine. *)

  val run : ?config:config -> t -> Analyzer.target -> (reply, Error.t) result
  (** Answer a what-if over the current published snapshot, holding the
      shared (read) side of the service lock for the whole evaluation.
      Safe to call from any domain concurrently. [config] overrides the
      service's default per request — the serve daemon uses it to
      enforce a per-request [deadline_ms] budget. *)

  val open_session : t -> Session.t
  (** Open a what-if handle on the shared service — the supported way
      to obtain a {!Session}. Handles are cheap (the caches live in the
      service) and safe to use from different domains concurrently. *)

  val stats : t -> stats
end

