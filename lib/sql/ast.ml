type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Lit of Value.t
  | Col of string option * string
  | Var of string
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Fun_call of string * expr list
  | Subselect of select
  | Exists of select
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Is_null of expr * bool

and order_dir = Asc | Desc

and select_item = Star | Item of expr * string option

and join = { join_table : string; join_alias : string option; join_on : expr }

and select = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : (string * string option) option;
  sel_joins : join list;
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;
  sel_order_by : (expr * order_dir) list;
  sel_limit : int option;
  sel_offset : int option;  (** rows to skip before LIMIT applies *)
}

type alter_action =
  | Add_column of Schema.column
  | Drop_column of string
  | Rename_table of string
  | Set_auto_increment of int
      (** [ALTER TABLE t AUTO_INCREMENT = n]: pin the table's next fresh
          auto key. Emitted by dumps so a checkpoint restores the exact
          counter even when the row holding the highest key was deleted. *)

type trigger_event = Ev_insert | Ev_update | Ev_delete
type trigger_timing = Before | After

type stmt =
  | Create_table of { name : string; columns : Schema.column list; if_not_exists : bool }
  | Drop_table of { name : string; if_exists : bool }
  | Truncate_table of string
  | Alter_table of string * alter_action
  | Create_view of { name : string; query : select; or_replace : bool }
  | Drop_view of string
  | Create_index of { name : string; table : string; columns : string list }
  | Drop_index of { name : string; table : string }
  | Create_procedure of {
      name : string;
      params : (string * Value.ty) list;
      label : string option;
      body : pstmt list;
    }
  | Drop_procedure of string
  | Create_trigger of {
      name : string;
      timing : trigger_timing;
      event : trigger_event;
      table : string;
      body : pstmt list;
    }
  | Drop_trigger of string
  | Select of select
  | Insert of { table : string; columns : string list option; values : expr list list }
  | Insert_select of { table : string; columns : string list option; query : select }
  | Update of { table : string; assigns : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Call of string * expr list
  | Transaction of stmt list

and pstmt =
  | P_stmt of stmt
  | P_declare of string * Value.ty * expr option
  | P_set of string * expr
  | P_select_into of select * string list
  | P_if of (expr * pstmt list) list * pstmt list
  | P_while of expr * pstmt list
  | P_leave of string
  | P_signal of string

let select ?(distinct = false) ?from ?(joins = []) ?where ?(group_by = [])
    ?having ?(order_by = []) ?limit ?offset items =
  {
    sel_distinct = distinct;
    sel_items = items;
    sel_from = from;
    sel_joins = joins;
    sel_where = where;
    sel_group_by = group_by;
    sel_having = having;
    sel_order_by = order_by;
    sel_limit = limit;
    sel_offset = offset;
  }

let col name = Col (None, name)
let qcol tbl name = Col (Some tbl, name)
let lit_int i = Lit (Value.Int i)
let lit_str s = Lit (Value.Text s)
let lit_float f = Lit (Value.Float f)
let lit_bool b = Lit (Value.Bool b)

let ( ==. ) a b = Binop (Eq, a, b)
let ( &&. ) a b = Binop (And, a, b)
let ( ||. ) a b = Binop (Or, a, b)

let stmt_kind = function
  | Create_table _ -> "CREATE TABLE"
  | Drop_table _ -> "DROP TABLE"
  | Truncate_table _ -> "TRUNCATE TABLE"
  | Alter_table _ -> "ALTER TABLE"
  | Create_view _ -> "CREATE VIEW"
  | Drop_view _ -> "DROP VIEW"
  | Create_index _ -> "CREATE INDEX"
  | Drop_index _ -> "DROP INDEX"
  | Create_procedure _ -> "CREATE PROCEDURE"
  | Drop_procedure _ -> "DROP PROCEDURE"
  | Create_trigger _ -> "CREATE TRIGGER"
  | Drop_trigger _ -> "DROP TRIGGER"
  | Select _ -> "SELECT"
  | Insert _ -> "INSERT"
  | Insert_select _ -> "INSERT"
  | Update _ -> "UPDATE"
  | Delete _ -> "DELETE"
  | Call _ -> "CALL"
  | Transaction _ -> "TRANSACTION"

let is_read_only = function Select _ -> true | _ -> false

let is_ddl = function
  | Create_table _ | Drop_table _ | Truncate_table _ | Alter_table _
  | Create_view _ | Drop_view _ | Create_index _ | Drop_index _
  | Create_procedure _ | Drop_procedure _ | Create_trigger _ | Drop_trigger _
    ->
      true
  | Select _ | Insert _ | Insert_select _ | Update _ | Delete _ | Call _
  | Transaction _ ->
      false
