(** Abstract syntax of the SQL dialect Ultraverse analyses and replays.

    Covers the statement classes of Table A: DDL (tables, views, indexes,
    procedures, triggers), DML (SELECT/INSERT/UPDATE/DELETE), transactions,
    procedure calls, and the procedure-body control-flow constructs
    (DECLARE/SET/IF/WHILE/LEAVE/SIGNAL) that the SQL transpiler emits. *)

type binop =
  | Add | Sub | Mul | Div | Mod
  | Eq | Neq | Lt | Le | Gt | Ge
  | And | Or

type unop = Not | Neg

type expr =
  | Lit of Value.t
  | Col of string option * string  (** optionally qualified column *)
  | Var of string                  (** procedure parameter or local *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Fun_call of string * expr list (** built-in: CONCAT, COUNT, RAND, ... *)
  | Subselect of select            (** scalar subquery *)
  | Exists of select
  | In_list of expr * expr list
  | Between of expr * expr * expr
  | Is_null of expr * bool         (** IS NULL / IS NOT NULL *)

and order_dir = Asc | Desc

and select_item =
  | Star
  | Item of expr * string option   (** expression with optional alias *)

and join = {
  join_table : string;
  join_alias : string option;
  join_on : expr;
}

and select = {
  sel_distinct : bool;
  sel_items : select_item list;
  sel_from : (string * string option) option;
  sel_joins : join list;
  sel_where : expr option;
  sel_group_by : expr list;
  sel_having : expr option;  (** post-aggregation group filter *)
  sel_order_by : (expr * order_dir) list;
  sel_limit : int option;
  sel_offset : int option;  (** rows to skip before LIMIT applies *)
}

type alter_action =
  | Add_column of Schema.column
  | Drop_column of string
  | Rename_table of string
  | Set_auto_increment of int
      (** [ALTER TABLE t AUTO_INCREMENT = n]: pin the table's next fresh
          auto key. Emitted by dumps so a checkpoint restores the exact
          counter even when the row holding the highest key was deleted. *)

type trigger_event = Ev_insert | Ev_update | Ev_delete
type trigger_timing = Before | After

type stmt =
  | Create_table of { name : string; columns : Schema.column list; if_not_exists : bool }
  | Drop_table of { name : string; if_exists : bool }
  | Truncate_table of string
  | Alter_table of string * alter_action
  | Create_view of { name : string; query : select; or_replace : bool }
  | Drop_view of string
  | Create_index of { name : string; table : string; columns : string list }
  | Drop_index of { name : string; table : string }
  | Create_procedure of {
      name : string;
      params : (string * Value.ty) list;
      label : string option;
      body : pstmt list;
    }
  | Drop_procedure of string
  | Create_trigger of {
      name : string;
      timing : trigger_timing;
      event : trigger_event;
      table : string;
      body : pstmt list;
    }
  | Drop_trigger of string
  | Select of select
  | Insert of {
      table : string;
      columns : string list option;
      values : expr list list;
    }
  | Insert_select of {
      table : string;
      columns : string list option;
      query : select;
    }  (** INSERT INTO t SELECT ... — rows come from a query *)
  | Update of { table : string; assigns : (string * expr) list; where : expr option }
  | Delete of { table : string; where : expr option }
  | Call of string * expr list
  | Transaction of stmt list
      (** [BEGIN; ...; COMMIT] treated as one atomic, single-round-trip unit. *)

and pstmt =
  | P_stmt of stmt
  | P_declare of string * Value.ty * expr option
  | P_set of string * expr
  | P_select_into of select * string list
  | P_if of (expr * pstmt list) list * pstmt list
      (** IF/ELSEIF chain with an (possibly empty) ELSE block. *)
  | P_while of expr * pstmt list
  | P_leave of string
  | P_signal of string  (** SIGNAL SQLSTATE 'value' *)

val select :
  ?distinct:bool ->
  ?from:string * string option ->
  ?joins:join list ->
  ?where:expr ->
  ?group_by:expr list ->
  ?having:expr ->
  ?order_by:(expr * order_dir) list ->
  ?limit:int ->
  ?offset:int ->
  select_item list ->
  select
(** Convenience constructor with empty defaults. *)

val col : string -> expr
(** Unqualified column reference. *)

val qcol : string -> string -> expr
(** Qualified column reference. *)

val lit_int : int -> expr
val lit_str : string -> expr
val lit_float : float -> expr
val lit_bool : bool -> expr

val ( ==. ) : expr -> expr -> expr
(** Equality, for concise query construction in workloads and tests. *)

val ( &&. ) : expr -> expr -> expr
val ( ||. ) : expr -> expr -> expr

val stmt_kind : stmt -> string
(** Short tag ("INSERT", "CREATE TABLE", ...) for logs and stats. *)

val is_read_only : stmt -> bool
(** [true] for statements that can never write the database (standalone
    SELECT). Dependency analysis omits these from the graph (§4.2). *)

val is_ddl : stmt -> bool
(** [true] for schema-changing statements (CREATE/DROP/ALTER/TRUNCATE of
    tables, views, indexes, procedures, triggers). [Transaction] is not
    itself DDL — classify its members individually. *)
