open Ast

exception Parse_error of string

type state = {
  toks : Lexer.token array;
  mutable pos : int;
  mutable scope : string list; (* procedure params + DECLAREd locals *)
}

let fail st msg =
  let tok =
    if st.pos < Array.length st.toks then Lexer.show_token st.toks.(st.pos)
    else "end of input"
  in
  raise (Parse_error (Printf.sprintf "%s (at %s)" msg tok))

let peek st = st.toks.(min st.pos (Array.length st.toks - 1))
let peek2 st = st.toks.(min (st.pos + 1) (Array.length st.toks - 1))
let advance st = st.pos <- st.pos + 1

let next st =
  let t = peek st in
  advance st;
  t

let accept_kw st kw =
  match peek st with
  | Lexer.Keyword k when String.equal k kw ->
      advance st;
      true
  | _ -> false

let expect_kw st kw = if not (accept_kw st kw) then fail st ("expected " ^ kw)

let accept_punct st p =
  match peek st with
  | Lexer.Punct q when String.equal p q ->
      advance st;
      true
  | _ -> false

let expect_punct st p = if not (accept_punct st p) then fail st ("expected '" ^ p ^ "'")

let accept_op st o =
  match peek st with
  | Lexer.Op q when String.equal o q ->
      advance st;
      true
  | _ -> false

let expect_op st o = if not (accept_op st o) then fail st ("expected '" ^ o ^ "'")

let ident st =
  match next st with
  | Lexer.Ident s -> s
  | Lexer.Keyword s -> s (* allow keywords as names where unambiguous *)
  | _ ->
      st.pos <- st.pos - 1;
      fail st "expected identifier"

(* Identifier strictly (not a keyword). *)
let strict_ident st =
  match peek st with
  | Lexer.Ident s ->
      advance st;
      s
  | _ -> fail st "expected identifier"

let in_scope st name = List.exists (String.equal name) st.scope

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

let parse_type st =
  let name =
    match next st with
    | Lexer.Keyword k -> k
    | Lexer.Ident s -> s
    | _ ->
        st.pos <- st.pos - 1;
        fail st "expected type name"
  in
  (* skip optional (n[,m]) size spec *)
  if accept_punct st "(" then begin
    let rec skip () =
      match next st with
      | Lexer.Punct ")" -> ()
      | Lexer.Eof -> fail st "unterminated type size"
      | _ -> skip ()
    in
    skip ()
  end;
  match Value.ty_of_name name with
  | Some ty -> ty
  | None -> fail st ("unknown type " ^ name)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)
(* ------------------------------------------------------------------ *)

let rec parse_or st =
  let lhs = parse_and st in
  if accept_kw st "OR" then Binop (Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept_kw st "AND" then Binop (And, lhs, parse_and st) else lhs

and parse_not st =
  if accept_kw st "NOT" then Unop (Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_additive st in
  match peek st with
  | Lexer.Op ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
      let op =
        match next st with
        | Lexer.Op "=" -> Eq
        | Lexer.Op "<>" -> Neq
        | Lexer.Op "<" -> Lt
        | Lexer.Op "<=" -> Le
        | Lexer.Op ">" -> Gt
        | Lexer.Op ">=" -> Ge
        | _ -> assert false
      in
      Binop (op, lhs, parse_additive st)
  | Lexer.Keyword "IS" ->
      advance st;
      let positive = not (accept_kw st "NOT") in
      expect_kw st "NULL";
      Is_null (lhs, positive)
  | Lexer.Keyword "IN" ->
      advance st;
      expect_punct st "(";
      let items = parse_expr_list st in
      expect_punct st ")";
      In_list (lhs, items)
  | Lexer.Keyword "BETWEEN" ->
      advance st;
      let lo = parse_additive st in
      expect_kw st "AND";
      let hi = parse_additive st in
      Between (lhs, lo, hi)
  | Lexer.Keyword "NOT" when peek2 st = Lexer.Keyword "IN" ->
      advance st;
      advance st;
      expect_punct st "(";
      let items = parse_expr_list st in
      expect_punct st ")";
      Unop (Not, In_list (lhs, items))
  | Lexer.Keyword "LIKE" ->
      advance st;
      let pat = parse_additive st in
      Fun_call ("LIKE", [ lhs; pat ])
  | _ -> lhs

and parse_additive st =
  let lhs = ref (parse_multiplicative st) in
  let continue = ref true in
  while !continue do
    if accept_op st "+" then lhs := Binop (Add, !lhs, parse_multiplicative st)
    else if accept_op st "-" then lhs := Binop (Sub, !lhs, parse_multiplicative st)
    else continue := false
  done;
  !lhs

and parse_multiplicative st =
  let lhs = ref (parse_unary st) in
  let continue = ref true in
  while !continue do
    if accept_op st "*" then lhs := Binop (Mul, !lhs, parse_unary st)
    else if accept_op st "/" then lhs := Binop (Div, !lhs, parse_unary st)
    else if accept_op st "%" then lhs := Binop (Mod, !lhs, parse_unary st)
    else continue := false
  done;
  !lhs

and parse_unary st =
  if accept_op st "-" then
    match parse_unary st with
    (* fold negative literals so printing round-trips *)
    | Lit (Value.Int i) -> Lit (Value.Int (-i))
    | Lit (Value.Float f) -> Lit (Value.Float (-.f))
    | e -> Unop (Neg, e)
  else parse_primary st

and parse_primary st =
  match next st with
  | Lexer.Int_lit i -> Lit (Value.Int i)
  | Lexer.Float_lit f -> Lit (Value.Float f)
  | Lexer.Str_lit s -> Lit (Value.Text s)
  | Lexer.At_var v -> Var v
  | Lexer.Keyword "NULL" -> Lit Value.Null
  | Lexer.Keyword "TRUE" -> Lit (Value.Bool true)
  | Lexer.Keyword "FALSE" -> Lit (Value.Bool false)
  | Lexer.Keyword "EXISTS" ->
      expect_punct st "(";
      let s = parse_select st in
      expect_punct st ")";
      Exists s
  | Lexer.Keyword "CASE" -> parse_case st
  | Lexer.Keyword "SELECT" ->
      st.pos <- st.pos - 1;
      Subselect (parse_select st)
  | Lexer.Keyword "IF" when peek st = Lexer.Punct "(" ->
      (* IF(cond, a, b) function form *)
      advance st;
      let args = parse_expr_list st in
      expect_punct st ")";
      Fun_call ("IF", args)
  | Lexer.Keyword "REPLACE" when peek st = Lexer.Punct "(" ->
      advance st;
      let args = parse_expr_list st in
      expect_punct st ")";
      Fun_call ("REPLACE", args)
  | Lexer.Punct "(" ->
      let e =
        match peek st with
        | Lexer.Keyword "SELECT" -> Subselect (parse_select st)
        | _ -> parse_or st
      in
      expect_punct st ")";
      e
  | Lexer.Op "*" -> Col (None, "*") (* the COUNT( * ) argument *)
  | Lexer.Ident name -> parse_name st name
  | t ->
      st.pos <- st.pos - 1;
      fail st ("unexpected " ^ Lexer.show_token t)

and parse_name st name =
  match peek st with
  | Lexer.Punct "(" ->
      advance st;
      let uname = String.uppercase_ascii name in
      let distinct =
        (match uname with
        | "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" -> true
        | _ -> false)
        && accept_kw st "DISTINCT"
      in
      let args = if peek st = Lexer.Punct ")" then [] else parse_expr_list st in
      expect_punct st ")";
      Fun_call ((if distinct then uname ^ ".D" else uname), args)
  | Lexer.Punct "." ->
      advance st;
      let field =
        match next st with
        | Lexer.Ident f -> f
        | Lexer.Op "*" -> "*"
        | Lexer.Keyword f -> f
        | _ ->
            st.pos <- st.pos - 1;
            fail st "expected column name after '.'"
      in
      Col (Some name, field)
  | _ -> if in_scope st name then Var name else Col (None, name)

and parse_case st =
  (* CASE WHEN c THEN e [WHEN ...] [ELSE e] END -> nested IF() calls *)
  let rec branches () =
    if accept_kw st "WHEN" then begin
      let c = parse_or st in
      expect_kw st "THEN";
      let e = parse_or st in
      let rest = branches () in
      Fun_call ("IF", [ c; e; rest ])
    end
    else if accept_kw st "ELSE" then begin
      let e = parse_or st in
      expect_kw st "END";
      e
    end
    else begin
      expect_kw st "END";
      Lit Value.Null
    end
  in
  branches ()

and parse_expr_list st =
  let e = parse_or st in
  if accept_punct st "," then e :: parse_expr_list st else [ e ]

(* ------------------------------------------------------------------ *)
(* SELECT                                                               *)
(* ------------------------------------------------------------------ *)

and parse_select_item st =
  match peek st with
  | Lexer.Op "*" ->
      advance st;
      Star
  | _ ->
      let e = parse_or st in
      if accept_kw st "AS" then Item (e, Some (ident st))
      else
        (* bare alias: SELECT a b FROM ... — not supported; keep simple *)
        Item (e, None)

and parse_select st =
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items = ref [ parse_select_item st ] in
  while accept_punct st "," do
    items := parse_select_item st :: !items
  done;
  let items = List.rev !items in
  (* INTO handled by the caller (procedure bodies) via [parse_into_opt]. *)
  let from =
    if accept_kw st "FROM" then begin
      let t = ident st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Lexer.Ident a when not (is_clause_start st) ->
              advance st;
              Some a
          | _ -> None
      in
      Some (t, alias)
    end
    else None
  in
  let joins = ref [] in
  while accept_kw st "JOIN" do
    let t = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Lexer.Ident a when a <> "" && peek2 st = Lexer.Keyword "ON" ->
            advance st;
            Some a
        | _ -> None
    in
    expect_kw st "ON";
    let on = parse_or st in
    joins := { join_table = t; join_alias = alias; join_on = on } :: !joins
  done;
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let one () =
        let e = parse_or st in
        let dir =
          if accept_kw st "DESC" then Desc
          else begin
            ignore (accept_kw st "ASC");
            Asc
          end
        in
        (e, dir)
      in
      let items = ref [ one () ] in
      while accept_punct st "," do
        items := one () :: !items
      done;
      List.rev !items
    end
    else []
  in
  let limit, offset =
    if accept_kw st "LIMIT" then
      let int_lit what =
        match next st with
        | Lexer.Int_lit i -> i
        | _ ->
            st.pos <- st.pos - 1;
            fail st ("expected integer after " ^ what)
      in
      let first = int_lit "LIMIT" in
      if accept_kw st "OFFSET" then (Some first, Some (int_lit "OFFSET"))
      else if accept_punct st "," then
        (* MySQL LIMIT offset, count *)
        (Some (int_lit "LIMIT"), Some first)
      else (Some first, None)
    else (None, None)
  in
  {
    sel_distinct = distinct;
    sel_items = items;
    sel_from = from;
    sel_joins = List.rev !joins;
    sel_where = where;
    sel_group_by = group_by;
    sel_having = having;
    sel_order_by = order_by;
    sel_limit = limit;
    sel_offset = offset;
  }

and is_clause_start st =
  match peek st with
  | Lexer.Keyword
      ( "FROM" | "WHERE" | "JOIN" | "GROUP" | "HAVING" | "ORDER" | "LIMIT" | "ON" | "AS"
      | "AND" | "OR" | "INTO" | "SET" | "VALUES" | "THEN" | "DO" ) ->
      true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Column definitions                                                   *)
(* ------------------------------------------------------------------ *)

let parse_column_def st =
  let name = strict_ident st in
  let ty = parse_type st in
  let primary_key = ref false in
  let auto_increment = ref false in
  let not_null = ref false in
  let unique = ref false in
  let references = ref None in
  let continue = ref true in
  while !continue do
    if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      not_null := true
    end
    else if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      primary_key := true
    end
    else if accept_kw st "AUTO_INCREMENT" then auto_increment := true
    else if accept_kw st "UNIQUE" then unique := true
    else if accept_kw st "DEFAULT" then ignore (parse_or st)
    else if accept_kw st "REFERENCES" then begin
      let t = ident st in
      expect_punct st "(";
      let c = ident st in
      expect_punct st ")";
      references := Some (t, c)
    end
    else continue := false
  done;
  {
    Schema.col_name = name;
    col_ty = ty;
    primary_key = !primary_key;
    auto_increment = !auto_increment;
    not_null = !not_null;
    unique = !unique;
    references = !references;
  }

(* A table-level constraint consumed inside CREATE TABLE's column list.
   Returns a patch to apply to already-parsed columns. *)
type table_constraint =
  | Tc_primary of string list
  | Tc_foreign of string * (string * string)

let rec parse_table_constraint st =
  if accept_kw st "PRIMARY" then begin
    expect_kw st "KEY";
    expect_punct st "(";
    let cols = ref [ ident st ] in
    while accept_punct st "," do
      cols := ident st :: !cols
    done;
    expect_punct st ")";
    Some (Tc_primary (List.rev !cols))
  end
  else if accept_kw st "FOREIGN" then begin
    expect_kw st "KEY";
    expect_punct st "(";
    let c = ident st in
    expect_punct st ")";
    expect_kw st "REFERENCES";
    let t = ident st in
    expect_punct st "(";
    let fc = ident st in
    expect_punct st ")";
    Some (Tc_foreign (c, (t, fc)))
  end
  else if accept_kw st "CONSTRAINT" then begin
    let _name = ident st in
    parse_table_constraint st
  end
  else None

(* ------------------------------------------------------------------ *)
(* Procedure bodies                                                     *)
(* ------------------------------------------------------------------ *)

let rec parse_pstmts st ~until =
  let body = ref [] in
  let stop () =
    match peek st with
    | Lexer.Keyword k -> List.mem k until
    | Lexer.Eof -> true
    | _ -> false
  in
  while not (stop ()) do
    let p = parse_pstmt st in
    ignore (accept_punct st ";");
    body := p :: !body
  done;
  List.rev !body

and parse_pstmt st =
  match peek st with
  | Lexer.Keyword "DECLARE" ->
      advance st;
      let v = strict_ident st in
      let ty = parse_type st in
      let init = if accept_kw st "DEFAULT" then Some (parse_or st) else None in
      st.scope <- v :: st.scope;
      P_declare (v, ty, init)
  | Lexer.Keyword "SET" ->
      advance st;
      let v =
        match next st with
        | Lexer.Ident v -> v
        | Lexer.At_var v -> v
        | _ ->
            st.pos <- st.pos - 1;
            fail st "expected variable name after SET"
      in
      expect_op st "=";
      P_set (v, parse_or st)
  | Lexer.Keyword "SELECT" ->
      let s = parse_select_with_into st in
      (match s with
      | sel, Some vars -> P_select_into (sel, vars)
      | sel, None -> P_stmt (Select sel))
  | Lexer.Keyword "IF" ->
      (* In statement position a leading IF is always control flow; the
         IF(c, a, b) function form only occurs inside expressions. *)
      advance st;
      let rec branches acc =
        let cond = parse_or st in
        expect_kw st "THEN";
        let body = parse_pstmts st ~until:[ "ELSEIF"; "ELSE"; "END" ] in
        let acc = (cond, body) :: acc in
        if accept_kw st "ELSEIF" then branches acc
        else if accept_kw st "ELSE" then begin
          let else_body = parse_pstmts st ~until:[ "END" ] in
          expect_kw st "END";
          expect_kw st "IF";
          P_if (List.rev acc, else_body)
        end
        else begin
          expect_kw st "END";
          expect_kw st "IF";
          P_if (List.rev acc, [])
        end
      in
      branches []
  | Lexer.Keyword "WHILE" ->
      advance st;
      let cond = parse_or st in
      expect_kw st "DO";
      let body = parse_pstmts st ~until:[ "END" ] in
      expect_kw st "END";
      expect_kw st "WHILE";
      P_while (cond, body)
  | Lexer.Keyword "LEAVE" ->
      advance st;
      P_leave (ident st)
  | Lexer.Keyword "SIGNAL" ->
      advance st;
      expect_kw st "SQLSTATE";
      (match next st with
      | Lexer.Str_lit s -> P_signal s
      | _ ->
          st.pos <- st.pos - 1;
          fail st "expected SQLSTATE string")
  | _ -> P_stmt (parse_stmt_inner st)

and parse_select_with_into st =
  (* SELECT items [INTO vars] rest... — we parse items manually to catch
     INTO, then delegate to parse_select for the tail by re-entering it. *)
  expect_kw st "SELECT";
  let distinct = accept_kw st "DISTINCT" in
  let items = ref [ parse_select_item st ] in
  while accept_punct st "," do
    items := parse_select_item st :: !items
  done;
  let items = List.rev !items in
  let into =
    if accept_kw st "INTO" then begin
      let vars = ref [ ident st ] in
      while accept_punct st "," do
        vars := ident st :: !vars
      done;
      Some (List.rev !vars)
    end
    else None
  in
  (* Reparse the remaining clauses by faking a SELECT head. *)
  let tail = parse_select_tail st items in
  ({ tail with sel_distinct = distinct }, into)

and parse_select_tail st items =
  let from =
    if accept_kw st "FROM" then begin
      let t = ident st in
      let alias =
        if accept_kw st "AS" then Some (ident st)
        else
          match peek st with
          | Lexer.Ident a when not (is_clause_start st) ->
              advance st;
              Some a
          | _ -> None
      in
      Some (t, alias)
    end
    else None
  in
  let joins = ref [] in
  while accept_kw st "JOIN" do
    let t = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Lexer.Ident a when peek2 st = Lexer.Keyword "ON" ->
            advance st;
            Some a
        | _ -> None
    in
    expect_kw st "ON";
    let on = parse_or st in
    joins := { join_table = t; join_alias = alias; join_on = on } :: !joins
  done;
  let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      parse_expr_list st
    end
    else []
  in
  let having = if accept_kw st "HAVING" then Some (parse_or st) else None in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let one () =
        let e = parse_or st in
        let dir =
          if accept_kw st "DESC" then Desc
          else begin
            ignore (accept_kw st "ASC");
            Asc
          end
        in
        (e, dir)
      in
      let acc = ref [ one () ] in
      while accept_punct st "," do
        acc := one () :: !acc
      done;
      List.rev !acc
    end
    else []
  in
  let limit, offset =
    if accept_kw st "LIMIT" then
      let int_lit what =
        match next st with
        | Lexer.Int_lit i -> i
        | _ ->
            st.pos <- st.pos - 1;
            fail st ("expected integer after " ^ what)
      in
      let first = int_lit "LIMIT" in
      if accept_kw st "OFFSET" then (Some first, Some (int_lit "OFFSET"))
      else if accept_punct st "," then
        (* MySQL LIMIT offset, count *)
        (Some (int_lit "LIMIT"), Some first)
      else (Some first, None)
    else (None, None)
  in
  {
    sel_distinct = false;
    sel_items = items;
    sel_from = from;
    sel_joins = List.rev !joins;
    sel_where = where;
    sel_group_by = group_by;
    sel_having = having;
    sel_order_by = order_by;
    sel_limit = limit;
    sel_offset = offset;
  }

(* ------------------------------------------------------------------ *)
(* Statements                                                           *)
(* ------------------------------------------------------------------ *)

and parse_stmt_inner st =
  match peek st with
  | Lexer.Keyword "SELECT" -> Select (parse_select st)
  | Lexer.Keyword "INSERT" ->
      advance st;
      expect_kw st "INTO";
      let table = ident st in
      let columns =
        if peek st = Lexer.Punct "(" then begin
          advance st;
          let cols = ref [ ident st ] in
          while accept_punct st "," do
            cols := ident st :: !cols
          done;
          expect_punct st ")";
          Some (List.rev !cols)
        end
        else None
      in
      if peek st = Lexer.Keyword "SELECT" then
        Insert_select { table; columns; query = parse_select st }
      else begin
        expect_kw st "VALUES";
        let row () =
          expect_punct st "(";
          let vs = parse_expr_list st in
          expect_punct st ")";
          vs
        in
        let rows = ref [ row () ] in
        while accept_punct st "," do
          rows := row () :: !rows
        done;
        Insert { table; columns; values = List.rev !rows }
      end
  | Lexer.Keyword "UPDATE" ->
      advance st;
      let table = ident st in
      expect_kw st "SET";
      let one () =
        let c =
          (* column name possibly matching a keyword like KEY *)
          ident st
        in
        expect_op st "=";
        (c, parse_or st)
      in
      let assigns = ref [ one () ] in
      while accept_punct st "," do
        assigns := one () :: !assigns
      done;
      let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
      Update { table; assigns = List.rev !assigns; where }
  | Lexer.Keyword "DELETE" ->
      advance st;
      expect_kw st "FROM";
      let table = ident st in
      let where = if accept_kw st "WHERE" then Some (parse_or st) else None in
      Delete { table; where }
  | Lexer.Keyword "CALL" ->
      advance st;
      let name = ident st in
      let args =
        if accept_punct st "(" then begin
          let a = if peek st = Lexer.Punct ")" then [] else parse_expr_list st in
          expect_punct st ")";
          a
        end
        else []
      in
      Call (name, args)
  | Lexer.Keyword "CREATE" ->
      advance st;
      parse_create st
  | Lexer.Keyword "DROP" ->
      advance st;
      parse_drop st
  | Lexer.Keyword "TRUNCATE" ->
      advance st;
      ignore (accept_kw st "TABLE");
      Truncate_table (ident st)
  | Lexer.Keyword "ALTER" ->
      advance st;
      expect_kw st "TABLE";
      let name = ident st in
      if accept_kw st "ADD" then begin
        ignore (accept_kw st "COLUMN");
        Alter_table (name, Add_column (parse_column_def st))
      end
      else if accept_kw st "DROP" then begin
        ignore (accept_kw st "COLUMN");
        Alter_table (name, Drop_column (ident st))
      end
      else if accept_kw st "RENAME" then begin
        expect_kw st "TO";
        Alter_table (name, Rename_table (ident st))
      end
      else if accept_kw st "AUTO_INCREMENT" then begin
        ignore (accept_op st "=" : bool);
        match next st with
        | Lexer.Int_lit v -> Alter_table (name, Set_auto_increment v)
        | tok -> fail st ("expected an integer, got " ^ Lexer.show_token tok)
      end
      else fail st "expected ADD, DROP, RENAME or AUTO_INCREMENT"
  | Lexer.Keyword "BEGIN" ->
      advance st;
      ignore (accept_kw st "TRANSACTION");
      ignore (accept_punct st ";");
      let stmts = ref [] in
      while not (accept_kw st "COMMIT") do
        if peek st = Lexer.Eof then fail st "unterminated transaction";
        stmts := parse_stmt_inner st :: !stmts;
        ignore (accept_punct st ";")
      done;
      Transaction (List.rev !stmts)
  | t -> fail st ("unexpected " ^ Lexer.show_token t)

and parse_create st =
  if accept_kw st "TABLE" then begin
    let if_not_exists =
      if accept_kw st "IF" then begin
        expect_kw st "NOT";
        expect_kw st "EXISTS";
        true
      end
      else false
    in
    let name = ident st in
    expect_punct st "(";
    let columns = ref [] in
    let constraints = ref [] in
    let rec items () =
      (match parse_table_constraint st with
      | Some c -> constraints := c :: !constraints
      | None -> columns := parse_column_def st :: !columns);
      if accept_punct st "," then items ()
    in
    items ();
    expect_punct st ")";
    let columns =
      List.fold_left
        (fun cols c ->
          match c with
          | Tc_primary pk ->
              List.map
                (fun (col : Schema.column) ->
                  if List.mem col.Schema.col_name pk then
                    { col with Schema.primary_key = true }
                  else col)
                cols
          | Tc_foreign (local, target) ->
              List.map
                (fun (col : Schema.column) ->
                  if String.equal col.Schema.col_name local then
                    { col with Schema.references = Some target }
                  else col)
                cols)
        (List.rev !columns) !constraints
    in
    Create_table { name; columns; if_not_exists }
  end
  else if accept_kw st "OR" then begin
    expect_kw st "REPLACE";
    expect_kw st "VIEW";
    let name = ident st in
    expect_kw st "AS";
    Create_view { name; query = parse_select st; or_replace = true }
  end
  else if accept_kw st "VIEW" then begin
    let name = ident st in
    expect_kw st "AS";
    Create_view { name; query = parse_select st; or_replace = false }
  end
  else if accept_kw st "INDEX" then begin
    let name = ident st in
    expect_kw st "ON";
    let table = ident st in
    expect_punct st "(";
    let cols = ref [ ident st ] in
    while accept_punct st "," do
      cols := ident st :: !cols
    done;
    expect_punct st ")";
    Create_index { name; table; columns = List.rev !cols }
  end
  else if accept_kw st "PROCEDURE" then begin
    let name = ident st in
    expect_punct st "(";
    let params = ref [] in
    if peek st <> Lexer.Punct ")" then begin
      let one () =
        ignore (accept_kw st "IN" || accept_kw st "OUT" || accept_kw st "INOUT");
        let p = strict_ident st in
        let ty = parse_type st in
        (p, ty)
      in
      params := [ one () ];
      while accept_punct st "," do
        params := one () :: !params
      done
    end;
    expect_punct st ")";
    let params = List.rev !params in
    let saved_scope = st.scope in
    st.scope <- List.map fst params @ st.scope;
    let label =
      match (peek st, peek2 st) with
      | Lexer.Ident l, Lexer.Punct ":" ->
          advance st;
          advance st;
          Some l
      | _ -> None
    in
    expect_kw st "BEGIN";
    let body = parse_pstmts st ~until:[ "END" ] in
    expect_kw st "END";
    st.scope <- saved_scope;
    Create_procedure { name; params; label; body }
  end
  else if accept_kw st "TRIGGER" then begin
    let name = ident st in
    let timing =
      if accept_kw st "BEFORE" then Before
      else begin
        expect_kw st "AFTER";
        After
      end
    in
    let event =
      if accept_kw st "INSERT" then Ev_insert
      else if accept_kw st "UPDATE" then Ev_update
      else begin
        expect_kw st "DELETE";
        Ev_delete
      end
    in
    expect_kw st "ON";
    let table = ident st in
    expect_kw st "FOR";
    expect_kw st "EACH";
    expect_kw st "ROW";
    expect_kw st "BEGIN";
    let body = parse_pstmts st ~until:[ "END" ] in
    expect_kw st "END";
    Create_trigger { name; timing; event; table; body }
  end
  else fail st "expected TABLE, VIEW, INDEX, PROCEDURE or TRIGGER"

and parse_drop st =
  if accept_kw st "TABLE" then begin
    let if_exists =
      if accept_kw st "IF" then begin
        expect_kw st "EXISTS";
        true
      end
      else false
    in
    Drop_table { name = ident st; if_exists }
  end
  else if accept_kw st "VIEW" then Drop_view (ident st)
  else if accept_kw st "INDEX" then begin
    let name = ident st in
    expect_kw st "ON";
    Drop_index { name; table = ident st }
  end
  else if accept_kw st "PROCEDURE" then Drop_procedure (ident st)
  else if accept_kw st "TRIGGER" then Drop_trigger (ident st)
  else fail st "expected TABLE, VIEW, INDEX, PROCEDURE or TRIGGER"

(* ------------------------------------------------------------------ *)
(* Entry points                                                         *)
(* ------------------------------------------------------------------ *)

let make_state src =
  let toks =
    try Lexer.tokenize src
    with Lexer.Lex_error (msg, pos) ->
      raise (Parse_error (Printf.sprintf "lex error at %d: %s" pos msg))
  in
  { toks = Array.of_list toks; pos = 0; scope = [] }

let parse_stmt src =
  let st = make_state src in
  let s = parse_stmt_inner st in
  ignore (accept_punct st ";");
  if peek st <> Lexer.Eof then fail st "trailing tokens after statement";
  s

let parse_script src =
  let st = make_state src in
  let stmts = ref [] in
  while peek st <> Lexer.Eof do
    stmts := parse_stmt_inner st :: !stmts;
    ignore (accept_punct st ";")
  done;
  List.rev !stmts

let parse_expr src =
  let st = make_state src in
  let e = parse_or st in
  if peek st <> Lexer.Eof then fail st "trailing tokens after expression";
  e
