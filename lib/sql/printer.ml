open Ast

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "%"
  | Eq -> "=" | Neq -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | And -> "AND" | Or -> "OR"

let rec expr = function
  | Lit v -> Value.to_literal v
  | Col (None, c) -> c
  | Col (Some t, c) -> t ^ "." ^ c
  | Var v -> "@" ^ v
  | Binop (op, a, b) -> "(" ^ expr a ^ " " ^ binop_name op ^ " " ^ expr b ^ ")"
  | Unop (Not, e) -> "(NOT " ^ expr e ^ ")"
  | Unop (Neg, e) -> "(-" ^ expr e ^ ")"
  | Fun_call (name, args)
    when String.length name > 2 && String.sub name (String.length name - 2) 2 = ".D"
    ->
      (* DISTINCT aggregate: COUNT.D x  prints as  COUNT(DISTINCT x) *)
      String.sub name 0 (String.length name - 2)
      ^ "(DISTINCT "
      ^ String.concat ", " (List.map expr args)
      ^ ")"
  | Fun_call (name, args) -> name ^ "(" ^ String.concat ", " (List.map expr args) ^ ")"
  | Subselect s -> "(" ^ select s ^ ")"
  | Exists s -> "EXISTS (" ^ select s ^ ")"
  | In_list (e, items) ->
      expr e ^ " IN (" ^ String.concat ", " (List.map expr items) ^ ")"
  | Between (e, lo, hi) ->
      "(" ^ expr e ^ " BETWEEN " ^ expr lo ^ " AND " ^ expr hi ^ ")"
  | Is_null (e, true) -> "(" ^ expr e ^ " IS NULL)"
  | Is_null (e, false) -> "(" ^ expr e ^ " IS NOT NULL)"

and select_item = function
  | Star -> "*"
  | Item (e, None) -> expr e
  | Item (e, Some alias) -> expr e ^ " AS " ^ alias

and select ?into s =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.sel_distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map select_item s.sel_items));
  (match into with
  | Some vars -> Buffer.add_string buf (" INTO " ^ String.concat ", " vars)
  | None -> ());
  (match s.sel_from with
  | Some (t, alias) ->
      Buffer.add_string buf (" FROM " ^ t);
      Option.iter (fun a -> Buffer.add_string buf (" AS " ^ a)) alias
  | None -> ());
  List.iter
    (fun j ->
      Buffer.add_string buf (" JOIN " ^ j.join_table);
      Option.iter (fun a -> Buffer.add_string buf (" AS " ^ a)) j.join_alias;
      Buffer.add_string buf (" ON " ^ expr j.join_on))
    s.sel_joins;
  Option.iter (fun w -> Buffer.add_string buf (" WHERE " ^ expr w)) s.sel_where;
  (match s.sel_group_by with
  | [] -> ()
  | gs ->
      Buffer.add_string buf (" GROUP BY " ^ String.concat ", " (List.map expr gs)));
  Option.iter (fun h -> Buffer.add_string buf (" HAVING " ^ expr h)) s.sel_having;
  (match s.sel_order_by with
  | [] -> ()
  | os ->
      let one (e, d) = expr e ^ (match d with Asc -> " ASC" | Desc -> " DESC") in
      Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map one os)));
  Option.iter (fun n -> Buffer.add_string buf (" LIMIT " ^ string_of_int n)) s.sel_limit;
  Option.iter
    (fun n -> Buffer.add_string buf (" OFFSET " ^ string_of_int n))
    s.sel_offset;
  Buffer.contents buf

let column_def (c : Schema.column) =
  let buf = Buffer.create 32 in
  Buffer.add_string buf (c.Schema.col_name ^ " " ^ Value.ty_name c.Schema.col_ty);
  if c.Schema.not_null then Buffer.add_string buf " NOT NULL";
  if c.Schema.unique then Buffer.add_string buf " UNIQUE";
  if c.Schema.primary_key then Buffer.add_string buf " PRIMARY KEY";
  if c.Schema.auto_increment then Buffer.add_string buf " AUTO_INCREMENT";
  (match c.Schema.references with
  | Some (t, col) -> Buffer.add_string buf (" REFERENCES " ^ t ^ "(" ^ col ^ ")")
  | None -> ());
  Buffer.contents buf

let indent_str n = String.make (n * 2) ' '

let rec stmt = function
  | Create_table { name; columns; if_not_exists } ->
      Printf.sprintf "CREATE TABLE %s%s (%s)"
        (if if_not_exists then "IF NOT EXISTS " else "")
        name
        (String.concat ", " (List.map column_def columns))
  | Drop_table { name; if_exists } ->
      Printf.sprintf "DROP TABLE %s%s" (if if_exists then "IF EXISTS " else "") name
  | Truncate_table name -> "TRUNCATE TABLE " ^ name
  | Alter_table (name, Add_column c) ->
      Printf.sprintf "ALTER TABLE %s ADD COLUMN %s" name (column_def c)
  | Alter_table (name, Drop_column c) ->
      Printf.sprintf "ALTER TABLE %s DROP COLUMN %s" name c
  | Alter_table (name, Rename_table n2) ->
      Printf.sprintf "ALTER TABLE %s RENAME TO %s" name n2
  | Alter_table (name, Set_auto_increment v) ->
      Printf.sprintf "ALTER TABLE %s AUTO_INCREMENT = %d" name v
  | Create_view { name; query; or_replace } ->
      Printf.sprintf "CREATE %sVIEW %s AS %s"
        (if or_replace then "OR REPLACE " else "")
        name (select query)
  | Drop_view name -> "DROP VIEW " ^ name
  | Create_index { name; table; columns } ->
      Printf.sprintf "CREATE INDEX %s ON %s (%s)" name table
        (String.concat ", " columns)
  | Drop_index { name; table } -> Printf.sprintf "DROP INDEX %s ON %s" name table
  | Create_procedure { name; params; label; body } ->
      let param (p, ty) = Printf.sprintf "IN %s %s" p (Value.ty_name ty) in
      let lbl = match label with Some l -> l ^ ": " | None -> "" in
      Printf.sprintf "CREATE PROCEDURE %s(%s) %sBEGIN\n%s\nEND" name
        (String.concat ", " (List.map param params))
        lbl
        (String.concat "\n" (List.map (pstmt ~indent:1) body))
  | Drop_procedure name -> "DROP PROCEDURE " ^ name
  | Create_trigger { name; timing; event; table; body } ->
      Printf.sprintf "CREATE TRIGGER %s %s %s ON %s FOR EACH ROW BEGIN\n%s\nEND"
        name
        (match timing with Before -> "BEFORE" | After -> "AFTER")
        (match event with
        | Ev_insert -> "INSERT"
        | Ev_update -> "UPDATE"
        | Ev_delete -> "DELETE")
        table
        (String.concat "\n" (List.map (pstmt ~indent:1) body))
  | Drop_trigger name -> "DROP TRIGGER " ^ name
  | Select s -> select s
  | Insert { table; columns; values } ->
      let cols =
        match columns with
        | None -> ""
        | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      in
      let row vs = "(" ^ String.concat ", " (List.map expr vs) ^ ")" in
      Printf.sprintf "INSERT INTO %s%s VALUES %s" table cols
        (String.concat ", " (List.map row values))
  | Insert_select { table; columns; query } ->
      let cols =
        match columns with
        | None -> ""
        | Some cs -> " (" ^ String.concat ", " cs ^ ")"
      in
      "INSERT INTO " ^ table ^ cols ^ " " ^ select query
  | Update { table; assigns; where } ->
      let one (c, e) = c ^ " = " ^ expr e in
      Printf.sprintf "UPDATE %s SET %s%s" table
        (String.concat ", " (List.map one assigns))
        (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Delete { table; where } ->
      Printf.sprintf "DELETE FROM %s%s" table
        (match where with None -> "" | Some w -> " WHERE " ^ expr w)
  | Call (name, args) ->
      Printf.sprintf "CALL %s(%s)" name (String.concat ", " (List.map expr args))
  | Transaction stmts ->
      "BEGIN TRANSACTION;\n"
      ^ String.concat ";\n" (List.map stmt stmts)
      ^ ";\nCOMMIT"

and pstmt ?(indent = 0) p =
  let ind = indent_str indent in
  match p with
  | P_stmt s -> ind ^ stmt s ^ ";"
  | P_declare (v, ty, init) ->
      ind ^ "DECLARE " ^ v ^ " " ^ Value.ty_name ty
      ^ (match init with None -> "" | Some e -> " DEFAULT " ^ expr e)
      ^ ";"
  | P_set (v, e) -> ind ^ "SET " ^ v ^ " = " ^ expr e ^ ";"
  | P_select_into (s, vars) -> ind ^ select ~into:vars s ^ ";"
  | P_if (branches, else_body) ->
      let buf = Buffer.create 128 in
      List.iteri
        (fun i (cond, body) ->
          Buffer.add_string buf
            (ind ^ (if i = 0 then "IF " else "ELSEIF ") ^ expr cond ^ " THEN\n");
          List.iter
            (fun p -> Buffer.add_string buf (pstmt ~indent:(indent + 1) p ^ "\n"))
            body)
        branches;
      if else_body <> [] then begin
        Buffer.add_string buf (ind ^ "ELSE\n");
        List.iter
          (fun p -> Buffer.add_string buf (pstmt ~indent:(indent + 1) p ^ "\n"))
          else_body
      end;
      Buffer.add_string buf (ind ^ "END IF;");
      Buffer.contents buf
  | P_while (cond, body) ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf (ind ^ "WHILE " ^ expr cond ^ " DO\n");
      List.iter
        (fun p -> Buffer.add_string buf (pstmt ~indent:(indent + 1) p ^ "\n"))
        body;
      Buffer.add_string buf (ind ^ "END WHILE;");
      Buffer.contents buf
  | P_leave label -> ind ^ "LEAVE " ^ label ^ ";"
  | P_signal state -> ind ^ "SIGNAL SQLSTATE " ^ Value.to_literal (Value.Text state) ^ ";"

let stmt_compact s =
  String.concat " "
    (List.filter (fun x -> x <> "") (String.split_on_char '\n' (stmt s) |> List.map String.trim))
