type ty = Tint | Tfloat | Ttext | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

let ty_of = function
  | Null -> None
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | Text _ -> Some Ttext
  | Bool _ -> Some Tbool

let ty_name = function
  | Tint -> "INT"
  | Tfloat -> "DOUBLE"
  | Ttext -> "VARCHAR"
  | Tbool -> "BOOLEAN"

let ty_of_name name =
  let base =
    match String.index_opt name '(' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  match String.uppercase_ascii (String.trim base) with
  | "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" -> Some Tint
  | "DOUBLE" | "FLOAT" | "DECIMAL" | "REAL" | "NUMERIC" -> Some Tfloat
  | "VARCHAR" | "TEXT" | "CHAR" | "DATETIME" | "TIMESTAMP" | "DATE" -> Some Ttext
  | "BOOLEAN" | "BOOL" -> Some Tbool
  | _ -> None

let is_null = function Null -> true | _ -> false

let to_bool = function
  | Null -> false
  | Int i -> i <> 0
  | Float f -> f <> 0.0
  | Bool b -> b
  | Text s -> s <> "" && s <> "0"

let to_int = function
  | Null -> 0
  | Int i -> i
  | Float f -> int_of_float f
  | Bool b -> if b then 1 else 0
  | Text s -> ( try int_of_string (String.trim s) with _ -> 0)

let to_float = function
  | Null -> 0.0
  | Int i -> float_of_int i
  | Float f -> f
  | Bool b -> if b then 1.0 else 0.0
  | Text s -> ( try float_of_string (String.trim s) with _ -> 0.0)

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else
    (* shortest representation that round-trips *)
    let s12 = Printf.sprintf "%.12g" f in
    if float_of_string s12 = f then s12 else Printf.sprintf "%.17g" f

let to_string = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Bool b -> if b then "1" else "0"
  | Text s -> s

let coerce ty v =
  match (v, ty) with
  | Null, _ -> Null
  | Int _, Tint -> v
  | Float _, Tfloat -> v
  | Text _, Ttext -> v
  | Bool _, Tbool -> v
  | _, Tint -> (
      match v with
      | Text s -> (
          match int_of_string_opt (String.trim s) with
          | Some i -> Int i
          | None -> (
              match float_of_string_opt (String.trim s) with
              | Some f -> Int (int_of_float f)
              | None -> failwith ("cannot coerce '" ^ s ^ "' to INT")))
      | _ -> Int (to_int v))
  | _, Tfloat -> (
      match v with
      | Text s -> (
          match float_of_string_opt (String.trim s) with
          | Some f -> Float f
          | None -> failwith ("cannot coerce '" ^ s ^ "' to DOUBLE"))
      | _ -> Float (to_float v))
  | _, Ttext -> Text (to_string v)
  | _, Tbool -> Bool (to_bool v)

let numericp = function Int _ | Float _ | Bool _ -> true | _ -> false

let rec compare_sql a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, _ -> -1
  | _, Null -> 1
  | Int x, Int y -> compare x y
  | Text x, Text y -> compare x y
  | Bool x, Bool y -> compare x y
  | x, y when numericp x && numericp y -> compare (to_float x) (to_float y)
  | Text s, y when numericp y -> (
      (* MySQL compares string-vs-number numerically when the string parses. *)
      match float_of_string_opt (String.trim s) with
      | Some f -> compare f (to_float y)
      | None -> compare s (to_string y))
  | x, Text s when numericp x -> -compare_text_num s x
  | x, y -> compare (to_string x) (to_string y)

and compare_text_num s x =
  match float_of_string_opt (String.trim s) with
  | Some f -> compare f (to_float x)
  | None -> compare s (to_string x)

let equal_sql a b =
  match (a, b) with Null, _ | _, Null -> false | _ -> compare_sql a b = 0

(* Structural equality: NULL = NULL holds and constructors never mix, so
   [equal a b] agrees with [serialize a = serialize b] without building
   the strings — the rollback hot path compares before/after cells. *)
let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> Int.equal x y
  | Float x, Float y ->
      (* serialize prints %h, under which nan = nan and 0. <> -0. *)
      Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
      || (Float.is_nan x && Float.is_nan y)
  | Text x, Text y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | _ -> false

let arith op_i op_f a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> Int (op_i x y)
  | _ -> Float (op_f (to_float a) (to_float b))

let add = arith ( + ) ( +. )
let sub = arith ( - ) ( -. )
let mul = arith ( * ) ( *. )

let div a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | _ ->
      let d = to_float b in
      if d = 0.0 then Null else Float (to_float a /. d)

let modulo a b =
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> if y = 0 then Null else Int (x mod y)
  | _ ->
      let d = to_float b in
      if d = 0.0 then Null else Float (Float.rem (to_float a) d)

let serialize = function
  | Null -> "N"
  | Int i -> "I" ^ string_of_int i
  | Float f -> "F" ^ Printf.sprintf "%h" f
  | Bool b -> if b then "B1" else "B0"
  | Text s -> "T" ^ string_of_int (String.length s) ^ ":" ^ s

let deserialize s =
  let n = String.length s in
  if n = 0 then failwith "Value.deserialize: empty"
  else
    match s.[0] with
    | 'N' when n = 1 -> Null
    | 'I' -> (
        match int_of_string_opt (String.sub s 1 (n - 1)) with
        | Some i -> Int i
        | None -> failwith "Value.deserialize: bad int")
    | 'F' -> (
        match float_of_string_opt (String.sub s 1 (n - 1)) with
        | Some f -> Float f
        | None -> failwith "Value.deserialize: bad float")
    | 'B' when s = "B1" -> Bool true
    | 'B' when s = "B0" -> Bool false
    | 'T' -> (
        match String.index_opt s ':' with
        | Some colon -> (
            match int_of_string_opt (String.sub s 1 (colon - 1)) with
            | Some len when colon + 1 + len = n ->
                Text (String.sub s (colon + 1) len)
            | _ -> failwith "Value.deserialize: bad text length")
        | None -> failwith "Value.deserialize: missing text length")
    | _ -> failwith "Value.deserialize: unknown tag"

let to_literal = function
  | Null -> "NULL"
  | Int i -> string_of_int i
  | Float f -> float_repr f
  | Bool b -> if b then "TRUE" else "FALSE"
  | Text s ->
      let buf = Buffer.create (String.length s + 2) in
      Buffer.add_char buf '\'';
      String.iter
        (fun c ->
          if c = '\'' then Buffer.add_string buf "''" else Buffer.add_char buf c)
        s;
      Buffer.add_char buf '\'';
      Buffer.contents buf

let pp fmt v = Format.pp_print_string fmt (to_literal v)
