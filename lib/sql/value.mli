(** SQL runtime values and column types.

    The engine supports the four scalar families the paper's workloads
    need: integers, floats, text, and booleans, plus [Null]. Comparison and
    arithmetic follow MySQL-flavoured coercion: any operation on [Null]
    yields [Null]; numeric contexts coerce numerically; string contexts
    stringify. *)

type ty = Tint | Tfloat | Ttext | Tbool

type t =
  | Null
  | Int of int
  | Float of float
  | Text of string
  | Bool of bool

val ty_of : t -> ty option
(** [None] for [Null]. *)

val ty_name : ty -> string
(** SQL type keyword: INT, DOUBLE, VARCHAR, BOOLEAN. *)

val ty_of_name : string -> ty option
(** Parse a SQL type keyword (case-insensitive; accepts VARCHAR(n), TEXT,
    INT, INTEGER, BIGINT, DOUBLE, FLOAT, DECIMAL, BOOLEAN, BOOL,
    DATETIME/TIMESTAMP as text). *)

val is_null : t -> bool

val to_bool : t -> bool
(** SQL truthiness: [Null] is false, numbers are [<> 0], text is non-empty
    and not ["0"]. *)

val to_int : t -> int
val to_float : t -> float
val to_string : t -> string
(** Raw string content (no SQL quoting). [Null] is ["NULL"]. *)

val coerce : ty -> t -> t
(** Coerce a value to a column type; [Null] stays [Null]. Raises
    [Failure] on a lossy text→number coercion of a non-numeric string. *)

val compare_sql : t -> t -> int
(** Three-way comparison with numeric coercion across [Int]/[Float]/[Bool]
    and lexicographic text comparison. [Null] sorts first. *)

val equal_sql : t -> t -> bool
(** SQL [=] semantics over non-null values ([Null = x] is false). *)

val equal : t -> t -> bool
(** Structural equality — [Null] equals [Null], constructors never mix.
    Agrees with [serialize a = serialize b] at no allocation; the
    rollback path uses it to find the cells a statement changed. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val modulo : t -> t -> t

val serialize : t -> string
(** Compact, unambiguous, injective wire form used for row hashing and the
    statement log. *)

val deserialize : string -> t
(** Inverse of {!serialize}.
    @raise Failure on a malformed wire form. *)

val to_literal : t -> string
(** SQL literal syntax ('quoted' text, NULL, TRUE/FALSE). *)

val pp : Format.formatter -> t -> unit
