open Ast

let expr_children = function
  | Lit _ | Var _ | Col _ -> []
  | Binop (_, a, b) -> [ a; b ]
  | Unop (_, a) -> [ a ]
  | Fun_call (_, args) -> args
  | Subselect _ | Exists _ -> []
  | In_list (a, items) -> a :: items
  | Between (a, b, c) -> [ a; b; c ]
  | Is_null (a, _) -> [ a ]

let expr_selects = function Subselect s | Exists s -> [ s ] | _ -> []

let select_exprs (s : select) =
  let items =
    List.filter_map (function Star -> None | Item (e, _) -> Some e) s.sel_items
  in
  let joins = List.map (fun j -> j.join_on) s.sel_joins in
  items @ joins
  @ Option.to_list s.sel_where
  @ s.sel_group_by
  @ Option.to_list s.sel_having
  @ List.map fst s.sel_order_by

let stmt_exprs = function
  | Insert { values; _ } -> List.concat values
  | Update { assigns; where; _ } ->
      List.map snd assigns @ Option.to_list where
  | Delete { where; _ } -> Option.to_list where
  | Call (_, args) -> args
  | Create_table _ | Drop_table _ | Truncate_table _ | Alter_table _
  | Create_view _ | Drop_view _ | Create_index _ | Drop_index _
  | Create_procedure _ | Drop_procedure _ | Create_trigger _ | Drop_trigger _
  | Select _ | Insert_select _ | Transaction _ ->
      []

let stmt_selects = function
  | Select s | Insert_select { query = s; _ } | Create_view { query = s; _ } ->
      [ s ]
  | _ -> []

let stmt_children = function Transaction stmts -> stmts | _ -> []

let stmt_pstmts = function
  | Create_procedure { body; _ } | Create_trigger { body; _ } -> body
  | _ -> []

let pstmt_exprs = function
  | P_stmt _ -> []
  | P_declare (_, _, init) -> Option.to_list init
  | P_set (_, e) -> [ e ]
  | P_select_into _ -> []
  | P_if (branches, _) -> List.map fst branches
  | P_while (cond, _) -> [ cond ]
  | P_leave _ | P_signal _ -> []

let pstmt_selects = function P_select_into (s, _) -> [ s ] | _ -> []

let pstmt_children = function
  | P_if (branches, else_body) -> List.concat_map snd branches @ else_body
  | P_while (_, body) -> body
  | _ -> []

let pstmt_stmts = function P_stmt s -> [ s ] | _ -> []

let rec fold_expr f acc e =
  let acc = f acc e in
  let acc = List.fold_left (fold_expr f) acc (expr_children e) in
  List.fold_left (fold_select f) acc (expr_selects e)

and fold_select f acc s = List.fold_left (fold_expr f) acc (select_exprs s)

let rec fold_stmt_exprs f acc s =
  let acc = List.fold_left (fold_expr f) acc (stmt_exprs s) in
  let acc = List.fold_left (fold_select f) acc (stmt_selects s) in
  let acc = List.fold_left (fold_stmt_exprs f) acc (stmt_children s) in
  List.fold_left (fold_pstmt_exprs f) acc (stmt_pstmts s)

and fold_pstmt_exprs f acc p =
  let acc = List.fold_left (fold_expr f) acc (pstmt_exprs p) in
  let acc = List.fold_left (fold_select f) acc (pstmt_selects p) in
  let acc = List.fold_left (fold_stmt_exprs f) acc (pstmt_stmts p) in
  List.fold_left (fold_pstmt_exprs f) acc (pstmt_children p)

let rec fold_pstmts f acc body =
  List.fold_left
    (fun acc p ->
      let acc = f acc p in
      fold_pstmts f acc (pstmt_children p))
    acc body
