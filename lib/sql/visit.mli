(** Generic traversal helpers over the SQL AST.

    Every static pass over statements — the dependency analyzer's
    read/write sets, the lint passes of [uv_analysis], the transpiler's
    coverage accounting — needs the same "children of this node" plumbing.
    This module centralises it: [*_children]/[*_exprs] return the
    immediate sub-nodes of one AST node, and the [fold_*] functions build
    the usual deep pre-order folds on top, so a pass only writes the cases
    it actually cares about. *)

val expr_children : Ast.expr -> Ast.expr list
(** Immediate subexpressions of an expression. [Subselect]/[Exists]
    contribute nothing here — nested query blocks are surfaced separately
    by {!expr_selects} so scope-sensitive passes can handle them. *)

val expr_selects : Ast.expr -> Ast.select list
(** Nested query blocks directly under an expression
    ([Subselect]/[Exists]). *)

val select_exprs : Ast.select -> Ast.expr list
(** Immediate expressions of one query block: projected items, join
    conditions, WHERE, GROUP BY, HAVING, ORDER BY. Does not descend into
    nested [Subselect]s. *)

val stmt_exprs : Ast.stmt -> Ast.expr list
(** Immediate expressions of a statement (INSERT values, UPDATE
    assignments and WHERE, DELETE WHERE, CALL arguments). Query blocks
    and procedure/trigger bodies are surfaced by {!stmt_selects} and
    {!stmt_pstmts}. *)

val stmt_selects : Ast.stmt -> Ast.select list
(** Immediate query blocks of a statement ([Select], [Insert_select]'s
    query, [Create_view]'s definition). *)

val stmt_children : Ast.stmt -> Ast.stmt list
(** Nested statements ([Transaction] bodies). *)

val stmt_pstmts : Ast.stmt -> Ast.pstmt list
(** Procedure/trigger bodies defined by the statement. *)

val pstmt_exprs : Ast.pstmt -> Ast.expr list
(** Immediate expressions of a procedure statement (DECLARE initialiser,
    SET value, IF/WHILE conditions). *)

val pstmt_selects : Ast.pstmt -> Ast.select list
(** Immediate query blocks ([P_select_into]). *)

val pstmt_children : Ast.pstmt -> Ast.pstmt list
(** Nested procedure statements (IF arms, WHILE bodies). *)

val pstmt_stmts : Ast.pstmt -> Ast.stmt list
(** Embedded top-level statements ([P_stmt]). *)

val fold_expr : ('a -> Ast.expr -> 'a) -> 'a -> Ast.expr -> 'a
(** Deep pre-order fold over an expression and every descendant,
    descending into nested query blocks. *)

val fold_select : ('a -> Ast.expr -> 'a) -> 'a -> Ast.select -> 'a
(** Deep fold over every expression reachable from a query block. *)

val fold_stmt_exprs : ('a -> Ast.expr -> 'a) -> 'a -> Ast.stmt -> 'a
(** Deep fold over every expression reachable from a statement, including
    nested query blocks, transaction members, and procedure/trigger
    bodies it defines. *)

val fold_pstmts : ('a -> Ast.pstmt -> 'a) -> 'a -> Ast.pstmt list -> 'a
(** Deep pre-order fold over procedure statements: each [pstmt] is
    visited, then its nested bodies (IF arms, WHILE bodies). Embedded SQL
    statements are not entered — pair with {!pstmt_stmts} when needed. *)
