open Uv_symexec
module Sql = Uv_sql.Ast

type t = {
  txn_name : string;
  proc_name : string;
  procedure : Uv_sql.Ast.stmt;
  app_params : string list;
  blackbox_params : (string * string * int) list;
  paths : int;
  unexplored : int;
  runs : int;
}

(* ------------------------------------------------------------------ *)
(* Leaf inventory                                                       *)
(* ------------------------------------------------------------------ *)

let sanitize s =
  String.map
    (fun c ->
      if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
      then c
      else '_')
    s

let rec leaf_root = function
  | Sym.Field (a, _) | Sym.Item (a, _) -> leaf_root a
  | other -> other

let rec leaf_var_name = function
  | Sym.Input p -> p
  | Sym.Db_result k -> Printf.sprintf "sql_out%d" k
  | Sym.Blackbox (api, occ) -> Printf.sprintf "blackbox_%s_%d" (sanitize api) occ
  | Sym.Field (a, f) -> leaf_var_name a ^ "_" ^ sanitize f
  | Sym.Item (a, i) -> Printf.sprintf "%s_%d" (leaf_var_name a) i
  | _ -> invalid_arg "leaf_var_name: not a leaf"

(* collect every leaf symbol referenced anywhere in the tree *)
let tree_leaves tree =
  let acc = ref [] in
  let add leaf = if not (List.exists (Sym.equal leaf) !acc) then acc := leaf :: !acc in
  let of_sym s = List.iter add (Sym.base_symbols s) in
  let rec go = function
    | Trace.Leaf -> ()
    | Trace.Sql (r, t) ->
        List.iter (fun (_, sym) -> of_sym sym) r.Trace.holes;
        go t
    | Trace.Blackbox (_, _, t) -> go t
    | Trace.Branch (cond, tt, ft) ->
        of_sym cond;
        Option.iter go tt;
        Option.iter go ft
  in
  go tree;
  List.rev !acc

(* ------------------------------------------------------------------ *)
(* Symbolic expression -> SQL expression                                *)
(* ------------------------------------------------------------------ *)

let rec sym_to_sql resolve (s : Sym.t) : Sql.expr =
  match s with
  | Sym.Const_num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Sql.Lit (Uv_sql.Value.Int (int_of_float f))
      else Sql.Lit (Uv_sql.Value.Float f)
  | Sym.Const_str str -> Sql.Lit (Uv_sql.Value.Text str)
  | Sym.Const_bool b -> Sql.Lit (Uv_sql.Value.Bool b)
  | Sym.Const_null -> Sql.Lit Uv_sql.Value.Null
  | Sym.Binop ("str.++", a, b) ->
      Sql.Fun_call ("CONCAT", [ sym_to_sql resolve a; sym_to_sql resolve b ])
  | Sym.Binop (op, a, b) ->
      let sa = sym_to_sql resolve a and sb = sym_to_sql resolve b in
      let bop =
        match op with
        | "+" -> Sql.Add
        | "-" -> Sql.Sub
        | "*" -> Sql.Mul
        | "/" -> Sql.Div
        | "%" -> Sql.Mod
        | "==" -> Sql.Eq
        | "!=" -> Sql.Neq
        | "<" -> Sql.Lt
        | "<=" -> Sql.Le
        | ">" -> Sql.Gt
        | ">=" -> Sql.Ge
        | "&&" -> Sql.And
        | "||" -> Sql.Or
        | _ -> failwith ("sym_to_sql: unknown operator " ^ op)
      in
      Sql.Binop (bop, sa, sb)
  | Sym.Unop ("!", a) -> Sql.Unop (Sql.Not, sym_to_sql resolve a)
  | Sym.Unop ("-", a) -> Sql.Unop (Sql.Neg, sym_to_sql resolve a)
  | Sym.Unop (op, _) -> failwith ("sym_to_sql: unknown unary " ^ op)
  | leaf -> (
      match resolve leaf with
      | Some e -> e
      | None -> failwith ("sym_to_sql: unresolved symbol " ^ Sym.to_string leaf))

(* ------------------------------------------------------------------ *)
(* Hole substitution inside a parsed statement                          *)
(* ------------------------------------------------------------------ *)

let rec subst_expr lookup (e : Sql.expr) : Sql.expr =
  match e with
  | Sql.Var name -> ( match lookup name with Some e' -> e' | None -> e)
  | Sql.Lit _ | Sql.Col _ -> e
  | Sql.Binop (op, a, b) -> Sql.Binop (op, subst_expr lookup a, subst_expr lookup b)
  | Sql.Unop (op, a) -> Sql.Unop (op, subst_expr lookup a)
  | Sql.Fun_call (f, args) -> Sql.Fun_call (f, List.map (subst_expr lookup) args)
  | Sql.Subselect s -> Sql.Subselect (subst_select lookup s)
  | Sql.Exists s -> Sql.Exists (subst_select lookup s)
  | Sql.In_list (a, items) ->
      Sql.In_list (subst_expr lookup a, List.map (subst_expr lookup) items)
  | Sql.Between (a, b, c) ->
      Sql.Between (subst_expr lookup a, subst_expr lookup b, subst_expr lookup c)
  | Sql.Is_null (a, p) -> Sql.Is_null (subst_expr lookup a, p)

and subst_select lookup (s : Sql.select) : Sql.select =
  {
    s with
    Sql.sel_items =
      List.map
        (function
          | Sql.Star -> Sql.Star
          | Sql.Item (e, a) -> Sql.Item (subst_expr lookup e, a))
        s.Sql.sel_items;
    sel_joins =
      List.map
        (fun j -> { j with Sql.join_on = subst_expr lookup j.Sql.join_on })
        s.Sql.sel_joins;
    sel_where = Option.map (subst_expr lookup) s.Sql.sel_where;
    sel_group_by = List.map (subst_expr lookup) s.Sql.sel_group_by;
    sel_having = Option.map (subst_expr lookup) s.Sql.sel_having;
    sel_order_by =
      List.map (fun (e, d) -> (subst_expr lookup e, d)) s.Sql.sel_order_by;
  }

let rec subst_stmt lookup (s : Sql.stmt) : Sql.stmt =
  match s with
  | Sql.Select sel -> Sql.Select (subst_select lookup sel)
  | Sql.Insert { table; columns; values } ->
      Sql.Insert
        { table; columns; values = List.map (List.map (subst_expr lookup)) values }
  | Sql.Insert_select { table; columns; query } ->
      Sql.Insert_select { table; columns; query = subst_select lookup query }
  | Sql.Update { table; assigns; where } ->
      Sql.Update
        {
          table;
          assigns = List.map (fun (c, e) -> (c, subst_expr lookup e)) assigns;
          where = Option.map (subst_expr lookup) where;
        }
  | Sql.Delete { table; where } ->
      Sql.Delete { table; where = Option.map (subst_expr lookup) where }
  | Sql.Call (name, args) -> Sql.Call (name, List.map (subst_expr lookup) args)
  | Sql.Transaction stmts -> Sql.Transaction (List.map (subst_stmt lookup) stmts)
  | other -> other

(* ------------------------------------------------------------------ *)
(* Tree -> procedure body                                               *)
(* ------------------------------------------------------------------ *)

let transpile_tree ~name ~(exploration : Concolic.exploration) =
  let tree = exploration.Concolic.tree in
  let leaves = tree_leaves tree in
  let observed_ty leaf =
    (* numeric leaves widen to DOUBLE: the DSE only ever observes sample
       values, and INT would truncate a float argument at CALL time
       (doubles are exact for the integer ranges the engine uses) *)
    match
      List.find_opt (fun (l, _) -> Sym.equal l leaf) exploration.Concolic.observed_types
    with
    | Some (_, (Uv_sql.Value.Tint | Uv_sql.Value.Tfloat)) | None -> Uv_sql.Value.Tfloat
    | Some (_, ty) -> ty
  in
  (* app params in declared order (§C.1: every parameter becomes an IN
     argument even if some explored path ignores it) *)
  let app_params = exploration.Concolic.params in
  let blackbox_leaves =
    List.filter (fun l -> match leaf_root l with Sym.Blackbox _ -> true | _ -> false) leaves
  in
  let db_leaves =
    List.filter (fun l -> match leaf_root l with Sym.Db_result _ -> true | _ -> false) leaves
  in
  (* resolver: leaf -> SQL expr *)
  let resolve leaf =
    match leaf_root leaf with
    | Sym.Input p -> Some (Sql.Var p)
    | Sym.Blackbox _ | Sym.Db_result _ -> Some (Sql.Var (leaf_var_name leaf))
    | _ -> None
  in
  let to_sql sym = sym_to_sql resolve sym in
  (* db leaves grouped by call index *)
  let db_leaves_of k =
    List.filter
      (fun l -> match leaf_root l with Sym.Db_result k' -> k = k' | _ -> false)
      db_leaves
  in
  (* bind a SELECT's projection to the accessed leaf variables *)
  let emit_sql (r : Trace.sql_record) : Sql.pstmt list =
    let lookup hole =
      match List.assoc_opt hole r.Trace.holes with
      | Some sym -> Some (to_sql sym)
      | None -> None
    in
    let stmt = subst_stmt lookup r.Trace.stmt in
    match stmt with
    | Sql.Select sel ->
        let accessed = db_leaves_of r.Trace.call_index in
        if accessed = [] then [ Sql.P_stmt stmt ]
        else begin
          (* leaves of shape Field over Item or directly over the call:
             match f against the projection item names; leaf
             a length access becomes a COUNT query. *)
          let item_name = function
            | Sql.Star -> "*"
            | Sql.Item (_, Some a) -> a
            | Sql.Item (e, None) -> Uv_sql.Printer.expr e
          in
          let names = List.map item_name sel.Sql.sel_items in
          let field_of leaf =
            match leaf with
            | Sym.Field (_, f) -> Some f
            | Sym.Item (_, _) -> None
            | _ -> None
          in
          let length_leaves, field_leaves =
            List.partition (fun l -> field_of l = Some "length") accessed
          in
          let stmts = ref [] in
          (* SELECT ... INTO for row-field accesses *)
          if field_leaves <> [] then begin
            let vars =
              List.map
                (fun nm ->
                  match
                    List.find_opt (fun l -> field_of l = Some nm) field_leaves
                  with
                  | Some leaf -> leaf_var_name leaf
                  | None -> (
                      (* single accessed field, single item: pair them up *)
                      match (field_leaves, names) with
                      | [ leaf ], [ _ ] -> leaf_var_name leaf
                      | _ -> "uv_ignore"))
                names
            in
            stmts := Sql.P_select_into (sel, vars) :: !stmts
          end;
          (* rows.length becomes a COUNT over the same FROM/WHERE; a
             grouped query's row count is its number of groups, which
             needs the ROWCOUNT dialect scalar over the intact query *)
          List.iter
            (fun leaf ->
              let count_sel =
                if sel.Sql.sel_group_by = [] && sel.Sql.sel_having = None then
                  {
                    sel with
                    Sql.sel_items =
                      [
                        Sql.Item
                          (Sql.Fun_call ("COUNT", [ Sql.Col (None, "*") ]), None);
                      ];
                    sel_order_by = [];
                    sel_limit = None;
                  }
                else
                  Sql.select
                    [
                      Sql.Item
                        ( Sql.Fun_call
                            ("ROWCOUNT", [ Sql.Subselect { sel with Sql.sel_order_by = [] } ]),
                          None );
                    ]
              in
              stmts := Sql.P_select_into (count_sel, [ leaf_var_name leaf ]) :: !stmts)
            length_leaves;
          List.rev !stmts
        end
    | other -> [ Sql.P_stmt other ]
  in
  let rec emit = function
    | Trace.Leaf -> []
    | Trace.Sql (r, t) -> emit_sql r @ emit t
    | Trace.Blackbox (_, _, t) -> emit t
    | Trace.Branch (cond, tt, ft) ->
        let side = function
          | None -> [ Sql.P_signal "45000" ]
          | Some t -> emit t
        in
        [ Sql.P_if ([ (to_sql cond, side tt) ], side ft) ]
  in
  let body = emit tree in
  (* declarations for db-result locals *)
  let decls =
    List.filter_map
      (fun leaf ->
        match leaf_root leaf with
        | Sym.Db_result _ when Sym.is_leaf leaf ->
            Some (Sql.P_declare (leaf_var_name leaf, observed_ty leaf, None))
        | _ -> None)
      db_leaves
  in
  let decls =
    if
      List.exists
        (function Sql.P_select_into (_, vars) -> List.mem "uv_ignore" vars | _ -> false)
        body
      || List.exists
           (function
             | Sql.P_if _ -> false
             | _ -> false)
           body
    then Sql.P_declare ("uv_ignore", Uv_sql.Value.Ttext, None) :: decls
    else decls
  in
  (* the uv_ignore declaration must exist if any nested P_select_into in
     branches uses it; walk the whole body *)
  let rec uses_ignore ps =
    List.exists
      (function
        | Sql.P_select_into (_, vars) -> List.mem "uv_ignore" vars
        | Sql.P_if (branches, eb) ->
            List.exists (fun (_, b) -> uses_ignore b) branches || uses_ignore eb
        | Sql.P_while (_, b) -> uses_ignore b
        | _ -> false)
      ps
  in
  let decls =
    if uses_ignore body
       && not
            (List.exists
               (function Sql.P_declare ("uv_ignore", _, _) -> true | _ -> false)
               decls)
    then Sql.P_declare ("uv_ignore", Uv_sql.Value.Ttext, None) :: decls
    else decls
  in
  let blackbox_params =
    List.filter_map
      (fun leaf ->
        if Sym.is_leaf leaf then
          match leaf_root leaf with
          | Sym.Blackbox (api, occ) -> Some (leaf_var_name leaf, api, occ)
          | _ -> None
        else None)
      blackbox_leaves
    |> List.sort_uniq compare
  in
  let params =
    List.map (fun p -> (p, observed_ty (Sym.Input p))) app_params
    @ List.map
        (fun (pname, _, _) ->
          let leaf =
            List.find
              (fun l -> Sym.is_leaf l && leaf_var_name l = pname)
              blackbox_leaves
          in
          (pname, observed_ty leaf))
        blackbox_params
  in
  let proc_name = "uv_" ^ name in
  let procedure =
    Sql.Create_procedure
      { name = proc_name; params; label = Some "uv_lbl"; body = decls @ body }
  in
  {
    txn_name = name;
    proc_name;
    procedure;
    app_params;
    blackbox_params;
    paths = Trace.count_paths tree;
    unexplored = Trace.count_unexplored tree;
    runs = exploration.Concolic.runs;
  }

let coverage t =
  let total = t.paths + t.unexplored in
  if total = 0 then 1.0 else float_of_int t.paths /. float_of_int total

let signal_stubs body =
  Uv_sql.Visit.fold_pstmts
    (fun n p -> match p with Sql.P_signal "45000" -> n + 1 | _ -> n)
    0 body

let transpile ?max_runs ?seeds ~program ~name () =
  let exploration = Concolic.explore ?max_runs ?seeds ~program ~name () in
  transpile_tree ~name ~exploration

(* A function is a database-updating transaction candidate if its body
   mentions SQL_exec, or references — in any position, including dynamic
   dispatch tables like [{buy: buy}] — a function that (transitively)
   does. Computed as a fixpoint over the top-level call graph. *)
let rec stmt_mentions (names : string list) (s : Uv_applang.Ast.stmt) =
  let open Uv_applang.Ast in
  match s with
  | Expr_stmt e | Assign (_, e) -> expr_mentions names e
  | Let (_, Some e) -> expr_mentions names e
  | Let (_, None) -> false
  | If (c, a, b) ->
      expr_mentions names c
      || List.exists (stmt_mentions names) a
      || List.exists (stmt_mentions names) b
  | While (c, b) -> expr_mentions names c || List.exists (stmt_mentions names) b
  | For (i, c, u, b) ->
      Option.fold ~none:false ~some:(stmt_mentions names) i
      || Option.fold ~none:false ~some:(expr_mentions names) c
      || Option.fold ~none:false ~some:(stmt_mentions names) u
      || List.exists (stmt_mentions names) b
  | Return (Some e) -> expr_mentions names e
  | Return None -> false
  | Break | Continue -> false
  | Fun_decl (_, _, b) -> List.exists (stmt_mentions names) b

and expr_mentions names (e : Uv_applang.Ast.expr) =
  let open Uv_applang.Ast in
  match e with
  | Ident name -> List.mem name names
  | Num _ | Str _ | Bool _ | Null | Undefined -> false
  | Template parts ->
      List.exists
        (function Ptext _ -> false | Phole e -> expr_mentions names e)
        parts
  | Binop (_, a, b) -> expr_mentions names a || expr_mentions names b
  | Unop (_, a) -> expr_mentions names a
  | Cond (a, b, c) ->
      expr_mentions names a || expr_mentions names b || expr_mentions names c
  | Call (f, args) -> expr_mentions names f || List.exists (expr_mentions names) args
  | Member (o, _) -> expr_mentions names o
  | Index (o, i) -> expr_mentions names o || expr_mentions names i
  | Object_lit fields -> List.exists (fun (_, e) -> expr_mentions names e) fields
  | Array_lit items -> List.exists (expr_mentions names) items
  | Fun_expr (_, body) -> List.exists (stmt_mentions names) body

let sql_functions program =
  let functions = Uv_applang.Ast.functions program in
  let rec fixpoint sql_set =
    let fresh =
      List.filter_map
        (fun (name, _, body) ->
          if List.mem name sql_set then None
          else if List.exists (stmt_mentions ("SQL_exec" :: sql_set)) body then
            Some name
          else None)
        functions
    in
    if fresh = [] then sql_set else fixpoint (fresh @ sql_set)
  in
  fixpoint []

let transpile_all ?max_runs ~program () =
  let sql = sql_functions program in
  Uv_applang.Ast.functions program
  |> List.filter (fun (name, _, _) -> List.mem name sql)
  |> List.map (fun (name, _, _) -> transpile ?max_runs ~program ~name ())

let augmented_source program name =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name)
      (Uv_applang.Ast.functions program)
  with
  | None -> invalid_arg ("augmented_source: unknown function " ^ name)
  | Some (_, params, _) ->
      let plist = String.concat ", " params in
      let holes = String.concat ", " (List.map (fun p -> "${" ^ p ^ "}") params) in
      Printf.sprintf
        "function %s_augmented(%s) {\n\
        \  Ultraverse_log(`function %s(%s)`);\n\
        \  return %s(%s);\n\
         }\n"
        name plist name holes name plist
