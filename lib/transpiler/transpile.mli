(** Z3-to-SQL transpilation (§3.2 step 3): the execution path tree becomes
    a semantically equivalent SQL PROCEDURE.

    Mapping, following the paper's Figures 4 and 9–11:
    - transaction inputs → [IN] parameters, typed by the widest concrete
      type the DSE observed (dynamic type coercion, §C.1);
    - blackbox API results → extra [IN] parameters ([blackbox_symbol_k],
      §C.3); the runtime evaluates the native API on the fly and passes
      the value in;
    - database-call results → [DECLARE]d locals filled by
      [SELECT ... INTO] (one local per accessed field);
    - branches → [IF ... THEN ... ELSE ... END IF], with unexplored sides
      compiled to [SIGNAL SQLSTATE '45000'] stubs (§3.3);
    - symbolic string concatenation → [CONCAT]. *)

open Uv_symexec

type t = {
  txn_name : string;
  proc_name : string;
  procedure : Uv_sql.Ast.stmt;  (** the [CREATE PROCEDURE] statement *)
  app_params : string list;  (** original transaction parameters, in order *)
  blackbox_params : (string * string * int) list;
      (** (procedure parameter, API name, occurrence) — the runtime
          supplies these by calling the native API *)
  paths : int;
  unexplored : int;  (** SIGNAL stubs emitted *)
  runs : int;  (** DSE testcases executed *)
}

val transpile_tree :
  name:string -> exploration:Concolic.exploration -> t
(** Turn a finished exploration into a procedure named
    ["uv_" ^ name]. *)

val coverage : t -> float
(** Explored fraction of the transaction's branch space:
    [paths / (paths + unexplored)]. 1.0 when every path was explored —
    i.e. no retroactive replay can hit a SIGNAL stub. *)

val signal_stubs : Uv_sql.Ast.pstmt list -> int
(** Count the [SIGNAL SQLSTATE '45000'] unexplored-branch stubs in a
    procedure body (the static mirror of [unexplored], usable on any
    CREATE PROCEDURE — transpiled or handwritten). *)

val transpile :
  ?max_runs:int ->
  ?seeds:Uv_symexec.Assignment.t list ->
  program:Uv_applang.Ast.program ->
  name:string ->
  unit ->
  t
(** [explore] then [transpile_tree]. *)

val sql_functions : Uv_applang.Ast.program -> string list
(** Top-level functions that (transitively) execute [SQL_exec] — the
    application-level transaction candidates. Order is the fixpoint
    discovery order; callers wanting determinism should sort. *)

val transpile_all :
  ?max_runs:int -> program:Uv_applang.Ast.program -> unit -> t list
(** Transpile every top-level function that (transitively) executes
    [SQL_exec]. *)

val augmented_source : Uv_applang.Ast.program -> string -> string
(** The Figure-3 style augmented application code for one transaction: a
    wrapper that logs the invocation before delegating. Purely
    presentational — the runtime performs the logging natively. *)

val sym_to_sql : (Sym.t -> Uv_sql.Ast.expr option) -> Sym.t -> Uv_sql.Ast.expr
(** Render a symbolic expression as SQL, resolving leaf symbols through
    the callback (raises [Failure] on an unresolvable leaf). *)
