type t = {
  rtt_ms : float;
  mutable simulated : float;
  mutable started : float;
}

(* clock_gettime(CLOCK_MONOTONIC) via a C stub: OCaml 5.1's Unix module has
   no monotonic clock, and gettimeofday can jump backwards under NTP, which
   would corrupt span durations. *)
external now_ms : unit -> (float[@unboxed])
  = "uv_clock_monotonic_ms_byte" "uv_clock_monotonic_ms"
[@@noalloc]

let create ?(rtt_ms = 1.0) () = { rtt_ms; simulated = 0.0; started = now_ms () }

let rtt_ms t = t.rtt_ms

let charge_rtt t ?(count = 1) () = t.simulated <- t.simulated +. (float_of_int count *. t.rtt_ms)

let charge_ms t ms = t.simulated <- t.simulated +. ms

let simulated_ms t = t.simulated

let real_elapsed_ms t = now_ms () -. t.started

let total_ms t = real_elapsed_ms t +. t.simulated

let reset t =
  t.simulated <- 0.0;
  t.started <- now_ms ()
