let polynomial = 0xedb88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc s =
  let tbl = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  String.iter
    (fun ch -> c := tbl.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8))
    s;
  !c lxor 0xffffffff

let digest s = update 0 s

let to_hex c = Printf.sprintf "%08x" (c land 0xffffffff)

let of_hex s =
  if String.length s <> 8 then None
  else
    let ok = String.for_all (function '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true | _ -> false) s in
    if not ok then None else int_of_string_opt ("0x" ^ s)
