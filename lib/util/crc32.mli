(** CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

    Used by the durable log format (ULOGv2) to detect torn or corrupted
    records. The digest is returned as a non-negative OCaml [int] in
    [0, 2^32); [to_hex] renders the canonical 8-digit lowercase form. *)

val digest : string -> int
(** CRC-32 of the whole string, with the conventional pre/post
    inversion ([crc32(0, ...)] in zlib terms). *)

val update : int -> string -> int
(** [update crc s] extends a running digest: [digest (a ^ b)] equals
    [update (digest a) b]. *)

val to_hex : int -> string
(** 8 lowercase hex digits, zero-padded. *)

val of_hex : string -> int option
(** Inverse of {!to_hex}; [None] unless the input is exactly 8 hex
    digits. *)
