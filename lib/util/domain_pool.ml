(* Each job carries its own atomic cursors so that a lagging worker
   still holding last job's record cannot steal indexes from the next
   one: its stale [next] is already past [count], so it exits its work
   loop immediately and goes back to waiting for a fresh generation. *)
type job = {
  count : int;
  fn : int -> unit;
  next : int Atomic.t;
  pending : int Atomic.t;
  mutable failure : exn option; (* protected by the pool mutex *)
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  lanes : int;
}

let run_items t job =
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.count then continue_ := false
    else begin
      (try job.fn i
       with e ->
         Mutex.lock t.mutex;
         if job.failure = None then job.failure <- Some e;
         Mutex.unlock t.mutex);
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        (* last item of the job: wake the caller waiting at the barrier *)
        Mutex.lock t.mutex;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end
    end
  done

let worker t =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && (t.job = None || t.gen = !my_gen) do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let job = Option.get t.job in
      my_gen := t.gen;
      Mutex.unlock t.mutex;
      run_items t job
    end
  done

let create ~workers =
  let lanes = max 1 workers in
  (* the OCaml runtime caps live domains (128 on 64-bit); stay well under *)
  let spawned = min (lanes - 1) 63 in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      domains = [];
      lanes;
    }
  in
  t.domains <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker t));
  t

let lanes t = t.lanes

let run t ~count fn =
  if count > 0 then begin
    let job =
      {
        count;
        fn;
        next = Atomic.make 0;
        pending = Atomic.make count;
        failure = None;
      }
    in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    run_items t job;
    Mutex.lock t.mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    t.job <- None;
    let f = job.failure in
    Mutex.unlock t.mutex;
    Option.iter raise f
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
