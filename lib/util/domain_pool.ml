(* Each job carries its own atomic cursors so that a lagging worker
   still holding last job's record cannot steal indexes from the next
   one: its stale [next] is already past [count], so it exits its work
   loop immediately and goes back to waiting for a fresh generation. *)
type job = {
  count : int;
  fn : int -> unit;
  next : int Atomic.t;
  pending : int Atomic.t;
  mutable failure : exn option; (* protected by the pool mutex *)
}

exception Worker_exit of exn

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable live : int; (* spawned domains still serving; pool mutex *)
  lanes : int;
}

(* [can_die] marks a spawned worker lane: a [Worker_exit] from the work
   function kills that lane (the domain drains nothing further and
   returns), modelling a domain crash, while still decrementing the
   job's pending count so the barrier always completes. The caller lane
   never dies — it records the exception like any other failure and
   keeps draining, so a job finishes even with every spawned domain
   dead. Returns whether the lane died. *)
let run_items ?(can_die = false) t job =
  let continue_ = ref true in
  let died = ref false in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.count then continue_ := false
    else begin
      (try job.fn i
       with e ->
         (match e with
         | Worker_exit _ when can_die ->
             died := true;
             continue_ := false
         | _ -> ());
         Mutex.lock t.mutex;
         if job.failure = None then job.failure <- Some e;
         Mutex.unlock t.mutex);
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        (* last item of the job: wake the caller waiting at the barrier *)
        Mutex.lock t.mutex;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end
    end
  done;
  !died

let worker t =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && (t.job = None || t.gen = !my_gen) do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let job = Option.get t.job in
      my_gen := t.gen;
      Mutex.unlock t.mutex;
      if run_items ~can_die:true t job then begin
        Mutex.lock t.mutex;
        t.live <- t.live - 1;
        Mutex.unlock t.mutex;
        running := false
      end
    end
  done

let create ~workers =
  let lanes = max 1 workers in
  (* the OCaml runtime caps live domains (128 on 64-bit); stay well under *)
  let spawned = min (lanes - 1) 63 in
  let t =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      job = None;
      gen = 0;
      stop = false;
      domains = [];
      live = spawned;
      lanes;
    }
  in
  t.domains <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker t));
  t

let lanes t = t.lanes

let live_workers t =
  Mutex.lock t.mutex;
  let n = t.live in
  Mutex.unlock t.mutex;
  n

let run t ~count fn =
  if count > 0 then begin
    let job =
      {
        count;
        fn;
        next = Atomic.make 0;
        pending = Atomic.make count;
        failure = None;
      }
    in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    ignore (run_items t job : bool);
    Mutex.lock t.mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    t.job <- None;
    let f = job.failure in
    Mutex.unlock t.mutex;
    Option.iter raise f
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
