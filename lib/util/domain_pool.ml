(* Each job carries its own atomic cursors so that a lagging worker
   still holding last job's record cannot steal indexes from the next
   one: its stale [next] is already past [count], so it exits its work
   loop immediately and goes back to waiting for a fresh generation. *)
type job = {
  count : int;
  fn : int -> unit;
  next : int Atomic.t;
  pending : int Atomic.t;
  mutable failure : exn option; (* protected by the pool mutex *)
}

exception Worker_exit of exn

type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable job : job option;
  mutable gen : int;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
  mutable live : int; (* spawned domains still serving; pool mutex *)
  mutable retired : bool; (* shutdown already called; pool mutex *)
  lanes : int;
}

(* [can_die] marks a spawned worker lane: a [Worker_exit] from the work
   function kills that lane (the domain drains nothing further and
   returns), modelling a domain crash, while still decrementing the
   job's pending count so the barrier always completes. The caller lane
   never dies — it records the exception like any other failure and
   keeps draining, so a job finishes even with every spawned domain
   dead. Returns whether the lane died. *)
let run_items ?(can_die = false) t job =
  let continue_ = ref true in
  let died = ref false in
  while !continue_ do
    let i = Atomic.fetch_and_add job.next 1 in
    if i >= job.count then continue_ := false
    else begin
      (try job.fn i
       with e ->
         (match e with
         | Worker_exit _ when can_die ->
             died := true;
             continue_ := false
         | _ -> ());
         Mutex.lock t.mutex;
         if job.failure = None then job.failure <- Some e;
         Mutex.unlock t.mutex);
      if Atomic.fetch_and_add job.pending (-1) = 1 then begin
        (* last item of the job: wake the caller waiting at the barrier *)
        Mutex.lock t.mutex;
        Condition.broadcast t.cond;
        Mutex.unlock t.mutex
      end
    end
  done;
  !died

let worker t =
  let my_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.mutex;
    while (not t.stop) && (t.job = None || t.gen = !my_gen) do
      Condition.wait t.cond t.mutex
    done;
    if t.stop then begin
      running := false;
      Mutex.unlock t.mutex
    end
    else begin
      let job = Option.get t.job in
      my_gen := t.gen;
      Mutex.unlock t.mutex;
      if run_items ~can_die:true t job then begin
        Mutex.lock t.mutex;
        t.live <- t.live - 1;
        Mutex.unlock t.mutex;
        running := false
      end
    end
  done

(* Parked-pool freelist. [Domain.spawn] + [Domain.join] of a 7-lane
   pool costs ~10ms on a small host — dwarfing the waves it serves — so
   [shutdown] parks a healthy pool (idle workers stay blocked on the
   condvar) and the next [create] of the same size adopts it instead of
   spawning. Pools that lost a lane to [Worker_exit] are really joined:
   a dead lane cannot be revived. The freelist is drained (and every
   parked pool joined) at process exit. *)
let park_mutex = Mutex.create ()
let park_list : t list ref = ref []
let park_cap = 4

let destroy t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let () =
  at_exit (fun () ->
      Mutex.lock park_mutex;
      let ps = !park_list in
      park_list := [];
      Mutex.unlock park_mutex;
      List.iter destroy ps)

let drain () =
  Mutex.lock park_mutex;
  let ps = !park_list in
  park_list := [];
  Mutex.unlock park_mutex;
  List.iter destroy ps

let create ~workers =
  let lanes = max 1 workers in
  (* the OCaml runtime caps live domains (128 on 64-bit); stay well under *)
  let spawned = min (lanes - 1) 63 in
  let adopted =
    (* Adopt a parked pool of the requested size; join the rest. Even an
       idle domain blocked on a condvar participates in every
       stop-the-world minor collection (~20% tax on allocation-heavy
       serial code with 7 of them), so mismatched pools must not
       linger. *)
    Mutex.lock park_mutex;
    let mine, others = List.partition (fun p -> p.lanes = lanes) !park_list in
    let r, leftover =
      match mine with [] -> (None, []) | p :: rest -> (Some p, rest)
    in
    park_list := [];
    Mutex.unlock park_mutex;
    List.iter destroy others;
    List.iter destroy leftover;
    r
  in
  match adopted with
  | Some p ->
      p.retired <- false;
      p
  | None ->
      let t =
        {
          mutex = Mutex.create ();
          cond = Condition.create ();
          job = None;
          gen = 0;
          stop = false;
          domains = [];
          live = spawned;
          retired = false;
          lanes;
        }
      in
      t.domains <- List.init spawned (fun _ -> Domain.spawn (fun () -> worker t));
      t

let lanes t = t.lanes

let live_workers t =
  Mutex.lock t.mutex;
  let n = t.live in
  Mutex.unlock t.mutex;
  n

let run t ~count fn =
  if count > 0 then begin
    let job =
      {
        count;
        fn;
        next = Atomic.make 0;
        pending = Atomic.make count;
        failure = None;
      }
    in
    Mutex.lock t.mutex;
    t.job <- Some job;
    t.gen <- t.gen + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    ignore (run_items t job : bool);
    Mutex.lock t.mutex;
    while Atomic.get job.pending > 0 do
      Condition.wait t.cond t.mutex
    done;
    t.job <- None;
    let f = job.failure in
    Mutex.unlock t.mutex;
    Option.iter raise f
  end

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.retired || t.stop in
  if not already then t.retired <- true;
  let healthy = t.live = List.length t.domains in
  Mutex.unlock t.mutex;
  if already || t.domains = [] then ()
  else if not healthy then destroy t
  else begin
    Mutex.lock park_mutex;
    if List.length !park_list < park_cap then begin
      park_list := t :: !park_list;
      Mutex.unlock park_mutex
    end
    else begin
      Mutex.unlock park_mutex;
      destroy t
    end
  end

(* ------------------------------------------------------------------ *)
(* Bounded multi-producer task queue                                    *)
(* ------------------------------------------------------------------ *)

module Queue = struct
  type t = {
    mutex : Mutex.t;
    work : Condition.t; (* workers: queue non-empty or stopping *)
    drained : Condition.t; (* waiters: a task finished *)
    tasks : (unit -> unit) Stdlib.Queue.t;
    capacity : int;
    mutable running : int; (* tasks currently executing *)
    mutable completed : int;
    mutable failures : int;
    mutable stop : bool;
    mutable domains : unit Domain.t list;
    workers : int;
  }

  let worker t =
    let running = ref true in
    while !running do
      Mutex.lock t.mutex;
      while (not t.stop) && Stdlib.Queue.is_empty t.tasks do
        Condition.wait t.work t.mutex
      done;
      if t.stop && Stdlib.Queue.is_empty t.tasks then begin
        running := false;
        Mutex.unlock t.mutex
      end
      else begin
        let task = Stdlib.Queue.pop t.tasks in
        t.running <- t.running + 1;
        Mutex.unlock t.mutex;
        let failed = match task () with () -> false | exception _ -> true in
        Mutex.lock t.mutex;
        t.running <- t.running - 1;
        t.completed <- t.completed + 1;
        if failed then t.failures <- t.failures + 1;
        Condition.broadcast t.drained;
        Mutex.unlock t.mutex
      end
    done

  let create ~workers ~capacity =
    (* all lanes are spawned domains here: producers keep their own
       domain, unlike the gang pool where the caller participates *)
    let workers = min (max 1 workers) 63 in
    let t =
      {
        mutex = Mutex.create ();
        work = Condition.create ();
        drained = Condition.create ();
        tasks = Stdlib.Queue.create ();
        capacity = max 1 capacity;
        running = 0;
        completed = 0;
        failures = 0;
        stop = false;
        domains = [];
        workers;
      }
    in
    t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let workers t = t.workers
  let capacity t = t.capacity

  let submit t task =
    Mutex.lock t.mutex;
    let r =
      if t.stop then `Shutdown
      else if Stdlib.Queue.length t.tasks >= t.capacity then `Saturated
      else begin
        Stdlib.Queue.push task t.tasks;
        Condition.signal t.work;
        `Accepted
      end
    in
    Mutex.unlock t.mutex;
    r

  let pending t =
    Mutex.lock t.mutex;
    let n = Stdlib.Queue.length t.tasks + t.running in
    Mutex.unlock t.mutex;
    n

  let completed t =
    Mutex.lock t.mutex;
    let n = t.completed in
    Mutex.unlock t.mutex;
    n

  let failures t =
    Mutex.lock t.mutex;
    let n = t.failures in
    Mutex.unlock t.mutex;
    n

  let wait_idle t =
    Mutex.lock t.mutex;
    while (not (Stdlib.Queue.is_empty t.tasks)) || t.running > 0 do
      Condition.wait t.drained t.mutex
    done;
    Mutex.unlock t.mutex

  let shutdown t =
    Mutex.lock t.mutex;
    t.stop <- true;
    Condition.broadcast t.work;
    Mutex.unlock t.mutex;
    List.iter Domain.join t.domains;
    t.domains <- []
end
