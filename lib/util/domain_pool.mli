(** A fixed pool of OCaml 5 domains for wave-parallel replay.

    The pool is created once per parallel operation and reused across
    waves, so the per-wave cost is a broadcast + barrier rather than
    [Domain.spawn]. [run] distributes item indexes over the pool with an
    atomic counter (work stealing at item granularity); the calling
    domain participates as a lane, so [create ~workers:1] spawns no
    domains at all and degenerates to a plain loop.

    Exceptions raised by the work function are captured; the first one
    is re-raised in the caller after the barrier. *)

exception Worker_exit of exn
(** Raised by a work function to simulate (or report) the death of the
    executing lane. On a spawned worker domain the lane stops serving
    and the domain returns; the item that raised counts as failed and
    the job's barrier still completes — the caller lane never dies, so
    a job finishes even with every spawned domain gone. [run] re-raises
    the first failure, so the caller of [run] observes the
    [Worker_exit] and can retry the unfinished items. *)

type t

val create : workers:int -> t
(** [create ~workers] builds a pool with [workers] execution lanes
    (the caller plus [workers - 1] spawned domains, capped at the
    runtime's domain limit). [workers] is clamped to at least 1. *)

val lanes : t -> int
(** Actual number of execution lanes (after clamping). *)

val live_workers : t -> int
(** Spawned worker domains still serving (excludes the caller lane).
    Decreases when a lane dies via {!Worker_exit}. *)

val run : t -> count:int -> (int -> unit) -> unit
(** [run t ~count f] evaluates [f i] for every [i] in [0 .. count - 1],
    distributing the indexes over the pool's lanes, and returns when all
    have completed. Not reentrant: only the domain that created the pool
    may call [run], one job at a time. *)

val shutdown : t -> unit
(** Release the pool. The pool must not be used afterwards. Idempotent.
    A healthy pool (no lane died) is parked on a small process-wide
    freelist and adopted by the next [create] of the same size instead
    of respawning — [Domain.spawn]/[Domain.join] of a many-lane pool
    costs ~10ms, dwarfing the waves it serves. [create] joins parked
    pools of any other size (even a condvar-blocked idle domain taxes
    every stop-the-world minor collection). Pools with dead lanes, and
    parked pools at process exit, are really joined. *)

val drain : unit -> unit
(** Join every parked pool now. Call before a long serial phase so idle
    parked domains stop taxing its minor collections. *)

(** A bounded multi-producer task queue over spawned domains.

    Where {!run} is a single-producer gang barrier (one job at a time,
    caller participates), [Queue] is the admission-controlled service
    shape: any number of domains may {!Queue.submit} concurrently;
    tasks drain FIFO over a fixed worker set; submission is rejected —
    never blocked — when the backlog reaches [capacity], so callers can
    answer "try again later" instead of stalling. Task exceptions are
    swallowed and counted ({!Queue.failures}): fire-and-forget tasks
    must report their own results. *)
module Queue : sig
  type t

  val create : workers:int -> capacity:int -> t
  (** [create ~workers ~capacity] spawns [workers] domains (clamped to
      [1..63]) draining a FIFO of at most [capacity] queued tasks
      (clamped to at least 1; tasks already executing don't count
      against the bound). *)

  val workers : t -> int
  val capacity : t -> int

  val submit : t -> (unit -> unit) -> [ `Accepted | `Saturated | `Shutdown ]
  (** Thread-safe from any domain. [`Saturated] when the queue is full
      — the task was NOT enqueued and will never run; [`Shutdown] after
      {!shutdown}. Never blocks. *)

  val pending : t -> int
  (** Queued plus currently-executing tasks. *)

  val completed : t -> int
  (** Tasks finished (including failed ones) since creation. *)

  val failures : t -> int
  (** Tasks that raised; their exceptions were swallowed. *)

  val wait_idle : t -> unit
  (** Block until the queue is empty and no task is executing. Other
      producers may enqueue more work afterwards — this is a quiescence
      point, not a terminal state. *)

  val shutdown : t -> unit
  (** Stop accepting, drain already-queued tasks, join the workers.
      Idempotent. *)
end
