(** A fixed pool of OCaml 5 domains for wave-parallel replay.

    The pool is created once per parallel operation and reused across
    waves, so the per-wave cost is a broadcast + barrier rather than
    [Domain.spawn]. [run] distributes item indexes over the pool with an
    atomic counter (work stealing at item granularity); the calling
    domain participates as a lane, so [create ~workers:1] spawns no
    domains at all and degenerates to a plain loop.

    Exceptions raised by the work function are captured; the first one
    is re-raised in the caller after the barrier. *)

exception Worker_exit of exn
(** Raised by a work function to simulate (or report) the death of the
    executing lane. On a spawned worker domain the lane stops serving
    and the domain returns; the item that raised counts as failed and
    the job's barrier still completes — the caller lane never dies, so
    a job finishes even with every spawned domain gone. [run] re-raises
    the first failure, so the caller of [run] observes the
    [Worker_exit] and can retry the unfinished items. *)

type t

val create : workers:int -> t
(** [create ~workers] builds a pool with [workers] execution lanes
    (the caller plus [workers - 1] spawned domains, capped at the
    runtime's domain limit). [workers] is clamped to at least 1. *)

val lanes : t -> int
(** Actual number of execution lanes (after clamping). *)

val live_workers : t -> int
(** Spawned worker domains still serving (excludes the caller lane).
    Decreases when a lane dies via {!Worker_exit}. *)

val run : t -> count:int -> (int -> unit) -> unit
(** [run t ~count f] evaluates [f i] for every [i] in [0 .. count - 1],
    distributing the indexes over the pool's lanes, and returns when all
    have completed. Not reentrant: only the domain that created the pool
    may call [run], one job at a time. *)

val shutdown : t -> unit
(** Join all spawned domains. The pool must not be used afterwards.
    Idempotent. *)
