(* Length-prefixed frames over file descriptors: 4-byte big-endian
   payload length, then the payload bytes. The prefix keeps the stream
   self-synchronizing — a garbled payload costs one frame, not the
   connection — and lets the reader refuse oversized input before
   allocating for it. *)

let default_max_len = 4 * 1024 * 1024

type error = [ `Closed | `Oversized of int ]

let error_to_string = function
  | `Closed -> "connection closed"
  | `Oversized n -> Printf.sprintf "frame of %d bytes exceeds limit" n

exception Closed

(* Partial transfers are the norm, not the exception: a signal landing
   mid-syscall yields EINTR, a non-blocking socket yields EAGAIN with
   the rest of the frame still in flight, and TCP delivers whatever the
   window allows. Each case is handled explicitly — EINTR retries
   immediately, EAGAIN parks in [select] until the descriptor is ready
   again — so a frame arriving one byte at a time or across interrupted
   syscalls is reassembled rather than dropped. *)
let wait_readable fd = ignore (Unix.select [ fd ] [] [] (-1.0))
let wait_writable fd = ignore (Unix.select [] [ fd ] [] (-1.0))

let really_write fd buf off len =
  let sent = ref 0 in
  while !sent < len do
    match Unix.write fd buf (off + !sent) (len - !sent) with
    | k ->
        if k <= 0 then raise Closed;
        sent := !sent + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        try wait_writable fd
        with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

let really_read fd buf off len =
  let got = ref 0 in
  while !got < len do
    match Unix.read fd buf (off + !got) (len - !got) with
    | k ->
        if k = 0 then raise Closed;
        got := !got + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> (
        try wait_readable fd
        with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

let write_frame fd payload =
  let n = String.length payload in
  (* header and payload in one write: a frame is never interleaved even
     if two domains share the descriptor *)
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  really_write fd buf 0 (4 + n)

let read_frame ?(max_len = default_max_len) fd =
  match
    let hdr = Bytes.create 4 in
    really_read fd hdr 0 4;
    let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if n < 0 || n > max_len then Error (`Oversized n)
    else begin
      let buf = Bytes.create n in
      really_read fd buf 0 n;
      Ok (Bytes.to_string buf)
    end
  with
  | r -> r
  | exception Closed -> Error `Closed
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      Error `Closed

(* Incremental decoder for non-blocking readers (the serve select loop):
   feed whatever [Unix.read] returned, pop complete frames. *)
module Decoder = struct
  type t = {
    mutable buf : Bytes.t;
    mutable len : int; (* valid bytes in [buf] *)
    max_len : int;
  }

  let create ?(max_len = default_max_len) () =
    { buf = Bytes.create 4096; len = 0; max_len }

  let feed t src ~off ~len =
    if len > 0 then begin
      if t.len + len > Bytes.length t.buf then begin
        let cap = max (t.len + len) (2 * Bytes.length t.buf) in
        let buf = Bytes.create cap in
        Bytes.blit t.buf 0 buf 0 t.len;
        t.buf <- buf
      end;
      Bytes.blit src off t.buf t.len len;
      t.len <- t.len + len
    end

  let next t =
    if t.len < 4 then Ok None
    else
      let n = Int32.to_int (Bytes.get_int32_be t.buf 0) in
      if n < 0 || n > t.max_len then Error (`Oversized n)
      else if t.len < 4 + n then Ok None
      else begin
        let frame = Bytes.sub_string t.buf 4 n in
        let rest = t.len - (4 + n) in
        Bytes.blit t.buf (4 + n) t.buf 0 rest;
        t.len <- rest;
        Ok (Some frame)
      end

  let buffered t = t.len
end
