(** Length-prefixed frame I/O over Unix file descriptors.

    The wire format for [ultraverse serve]: each frame is a 4-byte
    big-endian payload length followed by that many payload bytes
    (the payload is a compact [Uv_obs.Report] envelope, but this layer
    is content-agnostic). The explicit prefix keeps the stream
    self-synchronizing — a payload that fails JSON parsing costs one
    frame, not the connection — and lets readers reject oversized
    frames before allocating for them. *)

val default_max_len : int
(** 4 MiB. *)

type error = [ `Closed | `Oversized of int ]
(** [`Closed]: EOF or peer reset mid-frame. [`Oversized n]: the prefix
    announced [n] bytes, beyond the reader's limit (or negative); the
    stream can no longer be trusted and should be closed. *)

val error_to_string : error -> string

exception Closed
(** Raised by {!write_frame} when the peer has gone away. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking write of one complete frame (single [write] sequence, so
    concurrent writers on a shared descriptor never interleave a
    frame). Short writes are resumed; [EINTR] retries the syscall and
    [EAGAIN]/[EWOULDBLOCK] (a non-blocking descriptor mid-frame) parks
    in [select] until the descriptor is writable again. Raises
    {!Closed} on a broken pipe — callers inside a server must have
    [SIGPIPE] ignored, which {!Uv_retroactive.Serve.start} arranges. *)

val read_frame :
  ?max_len:int -> Unix.file_descr -> (string, [> error ]) result
(** Blocking read of one complete frame. A frame delivered one byte at
    a time, or across [EINTR]-interrupted or [EAGAIN]-deferred
    syscalls, is reassembled — partial transfers never surface as
    errors. [max_len] defaults to {!default_max_len}. *)

(** Incremental decoder for non-blocking readers: feed whatever
    [Unix.read] produced, then pop zero or more complete frames. *)
module Decoder : sig
  type t

  val create : ?max_len:int -> unit -> t
  val feed : t -> Bytes.t -> off:int -> len:int -> unit

  val next : t -> (string option, [> `Oversized of int ]) result
  (** [Ok None] — need more bytes; [Ok (Some frame)] — one complete
      payload (call again, more may be buffered); [Error (`Oversized n)]
      — the connection should be dropped. *)

  val buffered : t -> int
  (** Bytes currently buffered (diagnostics). *)
end
