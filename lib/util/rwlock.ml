type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable readers : int;
  mutable writer : bool;
}

let create () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    readers = 0;
    writer = false;
  }

(* Reader preference: a reader is admitted whenever no writer is active,
   even if writers are queued. This makes nested read acquisition by one
   domain safe (the outer hold guarantees no active writer), which the
   storage layer relies on for subqueries evaluated during scans. Writer
   starvation is not a concern for wave-sized bursts. *)
let read_lock t =
  Mutex.lock t.mutex;
  while t.writer do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  while t.writer || t.readers > 0 do
    Condition.wait t.cond t.mutex
  done;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let read t f =
  read_lock t;
  match f () with
  | v ->
      read_unlock t;
      v
  | exception e ->
      read_unlock t;
      raise e

let write t f =
  write_lock t;
  match f () with
  | v ->
      write_unlock t;
      v
  | exception e ->
      write_unlock t;
      raise e
