type t = {
  mutex : Mutex.t;
  cond : Condition.t;
  writer_priority : bool;
  mutable readers : int;
  mutable writer : bool;
  mutable waiting_writers : int;
}

let create ?(writer_priority = false) () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    writer_priority;
    readers = 0;
    writer = false;
    waiting_writers = 0;
  }

(* Reader preference (the default): a reader is admitted whenever no
   writer is active, even if writers are queued. This makes nested read
   acquisition by one domain safe (the outer hold guarantees no active
   writer), which the storage layer relies on for subqueries evaluated
   during scans. Writer starvation is not a concern for wave-sized
   bursts.

   Writer priority: a queued writer also blocks *new* reader
   admissions, so a continuous reader stream cannot starve a writer —
   the writer waits for at most the read sections that were already
   holding the lock when it queued. The price is that nested read
   acquisition can deadlock (outer read held, writer queues, inner read
   blocks), so this mode is only for lock users that never re-enter the
   read side — the what-if service lock, not the storage tables. *)
let read_lock t =
  Mutex.lock t.mutex;
  while t.writer || (t.writer_priority && t.waiting_writers > 0) do
    Condition.wait t.cond t.mutex
  done;
  t.readers <- t.readers + 1;
  Mutex.unlock t.mutex

let read_unlock t =
  Mutex.lock t.mutex;
  t.readers <- t.readers - 1;
  if t.readers = 0 then Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let write_lock t =
  Mutex.lock t.mutex;
  t.waiting_writers <- t.waiting_writers + 1;
  while t.writer || t.readers > 0 do
    Condition.wait t.cond t.mutex
  done;
  t.waiting_writers <- t.waiting_writers - 1;
  t.writer <- true;
  Mutex.unlock t.mutex

let write_unlock t =
  Mutex.lock t.mutex;
  t.writer <- false;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex

let read t f =
  read_lock t;
  match f () with
  | v ->
      read_unlock t;
      v
  | exception e ->
      read_unlock t;
      raise e

let write t f =
  write_lock t;
  match f () with
  | v ->
      write_unlock t;
      v
  | exception e ->
      write_unlock t;
      raise e

let waiting_writers t =
  Mutex.lock t.mutex;
  let n = t.waiting_writers in
  Mutex.unlock t.mutex;
  n

let active_readers t =
  Mutex.lock t.mutex;
  let n = t.readers in
  Mutex.unlock t.mutex;
  n
