(** A reader-preferring readers-writer lock.

    Any number of readers share the lock; writers are exclusive. Readers
    are admitted whenever no writer is {e active} (queued writers do not
    block them), so one domain may acquire the read side recursively —
    the storage layer's scans evaluate subqueries that re-enter the same
    table. The trade-off is writer starvation under a sustained reader
    stream, acceptable for wave-sized replay bursts. *)

type t

val create : unit -> t
val read : t -> (unit -> 'a) -> 'a
(** Run the callback holding the shared read side. *)

val write : t -> (unit -> 'a) -> 'a
(** Run the callback holding the exclusive write side. *)
