(** A readers-writer lock with a choice of admission policy.

    Any number of readers share the lock; writers are exclusive.

    The default policy is {e reader preference}: readers are admitted
    whenever no writer is {e active} (queued writers do not block
    them), so one domain may acquire the read side recursively — the
    storage layer's scans evaluate subqueries that re-enter the same
    table. The trade-off is writer starvation under a sustained reader
    stream, acceptable for wave-sized replay bursts.

    [create ~writer_priority:true] flips to {e writer priority}: a
    queued writer blocks {e new} reader admissions, bounding its wait
    by the read sections already in flight when it arrived — a
    continuous reader stream can no longer starve it. Nested read
    acquisition deadlocks under this policy (outer read held, writer
    queues, inner read blocks behind it), so it is only for users that
    never re-enter the read side — the what-if service lock uses it so
    a saturating what-if stream cannot starve ingest. *)

type t

val create : ?writer_priority:bool -> unit -> t
(** [writer_priority] defaults to [false] (reader preference). *)

val read : t -> (unit -> 'a) -> 'a
(** Run the callback holding the shared read side. *)

val write : t -> (unit -> 'a) -> 'a
(** Run the callback holding the exclusive write side. *)

val waiting_writers : t -> int
(** Writers currently blocked waiting for the lock (health probes). *)

val active_readers : t -> int
(** Readers currently holding the shared side (health probes). *)
