let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc data)

let atomic_write ?(fsync = true) ~path data =
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      let n = String.length data in
      let written = ref 0 in
      while !written < n do
        written :=
          !written + Unix.write_substring fd data !written (n - !written)
      done;
      if fsync then Unix.fsync fd);
  Unix.rename tmp path

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
