(** Crash-consistent file writes.

    [atomic_write] implements the classic temp-file + fsync + rename
    protocol: the data is written to [path ^ ".tmp"], flushed to stable
    storage, and renamed over [path]. A crash at any point leaves either
    the previous file intact or the complete new one — never a torn
    write at the destination. *)

val write_file : string -> string -> unit
(** Plain whole-file write (no durability guarantee). Exposed so fault
    injection can model a torn write to the temp file. *)

val atomic_write : ?fsync:bool -> path:string -> string -> unit
(** [atomic_write ~path data] writes [data] to [path ^ ".tmp"], syncs
    it ([fsync] defaults to [true]; tests pass [false] to stay fast on
    slow filesystems), and atomically renames it over [path]. *)

val read_file : string -> string
(** Whole-file read, binary-safe. *)
