/* Monotonic clock primitive for Uv_util.Clock.

   OCaml 5.1's Unix library exposes no clock_gettime, so the monotonic
   source the .mli promises is a direct stub over
   clock_gettime(CLOCK_MONOTONIC). Returned as milliseconds in a double:
   the mantissa comfortably holds nanosecond-scale deltas over any
   realistic process lifetime. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

double uv_clock_monotonic_ms(value unit)
{
  struct timespec ts;
  (void) unit;
#ifdef CLOCK_MONOTONIC
  clock_gettime(CLOCK_MONOTONIC, &ts);
#else
  clock_gettime(CLOCK_REALTIME, &ts);
#endif
  return (double) ts.tv_sec * 1e3 + (double) ts.tv_nsec / 1e6;
}

CAMLprim value uv_clock_monotonic_ms_byte(value unit)
{
  return caml_copy_double(uv_clock_monotonic_ms(unit));
}
