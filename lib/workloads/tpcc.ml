(* TPC-C: order-entry OLTP. NewOrder loops over the order lines (the
   paper's example of batch-ordering for-loops, §5.3), so transpilation
   collapses 2+2·ol_cnt round trips into one CALL. Because every
   transaction funnels through the shared warehouse/district rows, nearly
   the whole history is mutually dependent (§5.2's observation that
   TPC-C/SEATS profit from parallelism, not pruning). RI columns per
   §D.4. *)

open Wtypes

let schema_sql =
  {|
CREATE TABLE warehouse (w_id INT PRIMARY KEY, w_name VARCHAR(10), w_ytd DOUBLE);
CREATE TABLE district (d_id INT, d_w_id INT REFERENCES warehouse(w_id), d_ytd DOUBLE, d_next_o_id INT);
CREATE TABLE customer (c_id INT PRIMARY KEY, c_w_id INT REFERENCES warehouse(w_id), c_d_id INT, c_balance DOUBLE, c_ytd_payment DOUBLE, c_delivery_cnt INT);
CREATE TABLE item (i_id INT PRIMARY KEY, i_name VARCHAR(24), i_price DOUBLE);
CREATE TABLE stock (s_i_id INT REFERENCES item(i_id), s_w_id INT REFERENCES warehouse(w_id), s_quantity INT, s_ytd INT);
CREATE TABLE orders (o_id INT PRIMARY KEY AUTO_INCREMENT, o_w_id INT, o_d_id INT, o_c_id INT, o_carrier_id INT, o_ol_cnt INT);
CREATE TABLE order_line (ol_o_id INT, ol_w_id INT, ol_i_id INT, ol_qty INT, ol_amount DOUBLE);
CREATE TABLE history (h_c_id INT, h_c_w_id INT, h_amount DOUBLE);
|}

let app_source =
  {|
function NewOrder(w_id, d_id, c_id, i1, i2, i3, qty) {
  var d = SQL_exec(`SELECT d_next_o_id FROM district WHERE d_w_id = ${w_id} AND d_id = ${d_id}`);
  if (d.length == 0) {
    return 'bad district';
  }
  SQL_exec(`UPDATE district SET d_next_o_id = d_next_o_id + 1 WHERE d_w_id = ${w_id} AND d_id = ${d_id}`);
  SQL_exec(`INSERT INTO orders (o_w_id, o_d_id, o_c_id, o_carrier_id, o_ol_cnt) VALUES (${w_id}, ${d_id}, ${c_id}, 0, 3)`);
  var items = [i1, i2, i3];
  for (var k = 0; k < 3; k = k + 1) {
    var i_id = items[k];
    var price_rows = SQL_exec(`SELECT i_price FROM item WHERE i_id = ${i_id}`);
    var price = price_rows[0]['i_price'];
    SQL_exec(`UPDATE stock SET s_quantity = s_quantity - ${qty}, s_ytd = s_ytd + ${qty} WHERE s_i_id = ${i_id} AND s_w_id = ${w_id}`);
    SQL_exec(`INSERT INTO order_line (ol_o_id, ol_w_id, ol_i_id, ol_qty, ol_amount) VALUES (0, ${w_id}, ${i_id}, ${qty}, ${price} * ${qty})`);
  }
}

function Payment(w_id, d_id, c_id, amount) {
  SQL_exec(`UPDATE warehouse SET w_ytd = w_ytd + ${amount} WHERE w_id = ${w_id}`);
  SQL_exec(`UPDATE district SET d_ytd = d_ytd + ${amount} WHERE d_w_id = ${w_id} AND d_id = ${d_id}`);
  SQL_exec(`UPDATE customer SET c_balance = c_balance - ${amount}, c_ytd_payment = c_ytd_payment + ${amount} WHERE c_id = ${c_id}`);
  SQL_exec(`INSERT INTO history VALUES (${c_id}, ${w_id}, ${amount})`);
}

function Delivery(w_id, carrier_id) {
  var pending = SQL_exec(`SELECT o_id, o_c_id FROM orders WHERE o_w_id = ${w_id} AND o_carrier_id = 0 ORDER BY o_id ASC LIMIT 1`);
  if (pending.length == 0) {
    return 'nothing to deliver';
  }
  var o_id = pending[0]['o_id'];
  var c_id = pending[0]['o_c_id'];
  SQL_exec(`UPDATE orders SET o_carrier_id = ${carrier_id} WHERE o_w_id = ${w_id} AND o_id = ${o_id}`);
  SQL_exec(`UPDATE customer SET c_delivery_cnt = c_delivery_cnt + 1 WHERE c_id = ${c_id}`);
}

function StockLevel(w_id, threshold) {
  return SQL_exec(`SELECT COUNT(*) FROM stock WHERE s_w_id = ${w_id} AND s_quantity < ${threshold}`);
}

function OrderStatus(c_id) {
  return SQL_exec(`SELECT o_id, o_carrier_id FROM orders WHERE o_c_id = ${c_id} ORDER BY o_id DESC LIMIT 1`);
}
|}

let ri_config =
  {
    Uv_retroactive.Rowset.ri_columns =
      [
        ("warehouse", [ "w_id" ]);
        ("district", [ "d_w_id" ]);
        ("customer", [ "c_id" ]);
        ("item", [ "i_id" ]);
        ("stock", [ "s_w_id" ]);
        ("orders", [ "o_w_id" ]);
        ("order_line", [ "ol_w_id" ]);
        ("history", [ "h_c_w_id" ]);
      ];
    ri_aliases = [];
  }

(* TPC-C's scale factor is the warehouse count: scaling multiplies the
   independent warehouse/district row sets as well as the row counts *)
let base_warehouses = 2
let districts = 4
let base_customers = 60
let base_items = 50

let populate eng ~scale prng =
  let warehouses = base_warehouses * scale in
  let customers = base_customers * scale and items = base_items * scale in
  bulk_insert eng "warehouse"
    (List.init warehouses (fun i ->
         [ vint (i + 1); vstr (Printf.sprintf "wh%d" (i + 1)); vfloat 0.0 ]));
  let ds = ref [] in
  for w = 1 to warehouses do
    for d = 1 to districts do
      ds := [ vint d; vint w; vfloat 0.0; vint 1 ] :: !ds
    done
  done;
  bulk_insert eng "district" (List.rev !ds);
  bulk_insert eng "customer"
    (List.init customers (fun i ->
         [
           vint (i + 1);
           vint (1 + (i mod warehouses));
           vint (1 + (i mod districts));
           vfloat 0.0;
           vfloat 0.0;
           vint 0;
         ]));
  bulk_insert eng "item"
    (List.init items (fun i ->
         [
           vint (i + 1);
           vstr (Printf.sprintf "item%d" (i + 1));
           vfloat (1.0 +. Uv_util.Prng.float prng 99.0);
         ]));
  let st = ref [] in
  for w = 1 to warehouses do
    for i = 1 to items do
      st := [ vint i; vint w; vint (50 + Uv_util.Prng.int prng 50); vint 0 ] :: !st
    done
  done;
  bulk_insert eng "stock" (List.rev !st)

let generate_update prng ~scale ~n ~dep_rate =
  let warehouses = base_warehouses * scale in
  let customers = base_customers * scale and items = base_items * scale in
  List.init n (fun _ ->
      let w = entity prng ~dep_rate ~hot:1 ~pool:warehouses in
      let c = entity prng ~dep_rate ~hot:1 ~pool:customers in
      (* the spec's update mix: NewOrder and Payment dominate, Delivery is
         a rare batch job (its data-dependent customer row is a wildcard
         write for the analysis, so its share bounds replay parallelism) *)
      match Uv_util.Prng.int prng 100 with
      | x when x < 47 ->
          let item () = 1 + Uv_util.Prng.int prng items in
          call "NewOrder"
            [
              vint w;
              vint (1 + Uv_util.Prng.int prng districts);
              vint c;
              vint (item ());
              vint (item ());
              vint (item ());
              vint (1 + Uv_util.Prng.int prng 5);
            ]
      | x when x < 94 ->
          call "Payment"
            [
              vint w;
              vint (1 + Uv_util.Prng.int prng districts);
              vint c;
              vfloat (1.0 +. Uv_util.Prng.float prng 500.0);
            ]
      | _ -> call "Delivery" [ vint w; vint (1 + Uv_util.Prng.int prng 10) ])

let numeric_history prng ~n ~dep_rate =
  let customers = min base_customers (max 4 (n / 3)) in
  let ddl =
    [
      "CREATE TABLE customer (c_id INT PRIMARY KEY, c_balance DOUBLE, c_ytd DOUBLE)";
      "CREATE TABLE history (h_c_id INT, h_amount DOUBLE)";
    ]
  in
  let seed =
    List.init customers (fun i ->
        Printf.sprintf "INSERT INTO customer VALUES (%d, 0, 0)" (i + 1))
  in
  let ops =
    List.init (max 0 (n - List.length ddl - List.length seed)) (fun _ ->
        let c = entity prng ~dep_rate ~hot:1 ~pool:customers in
        let amount = 1 + Uv_util.Prng.int prng 500 in
        if Uv_util.Prng.chance prng 0.5 then
          Printf.sprintf
            "UPDATE customer SET c_balance = %d, c_ytd = %d WHERE c_id = %d" amount
            amount c
        else Printf.sprintf "INSERT INTO history VALUES (%d, %d)" c amount)
  in
  let pre = List.length ddl + List.length seed in
  let mid = max 1 (List.length ops / 2) in
  let before = List.filteri (fun i _ -> i < mid) ops in
  let after = List.filteri (fun i _ -> i >= mid) ops in
  (* a guaranteed hot-entity statement at the middle: the deterministic
     retroactive target *)
  let hot = "UPDATE customer SET c_balance = 77, c_ytd = 77 WHERE c_id = 1" in
  (ddl @ seed @ before @ (hot :: after), pre + mid + 1)

(* The paper's histories mix read-only transactions with the updating
   ones; reads cost the full-replay baselines real work while the
   dependency analysis skips them. *)
let generate prng ~scale ~n ~dep_rate =
  let updates = generate_update prng ~scale ~n ~dep_rate in
  List.concat_map
    (fun call_item ->
      if Uv_util.Prng.chance prng 0.3 then
        let read =
          if Uv_util.Prng.bool prng then
            call "StockLevel"
              [ vint (1 + Uv_util.Prng.int prng (base_warehouses * scale));
                vint (10 + Uv_util.Prng.int prng 80) ]
          else call "OrderStatus" [ vint (1 + Uv_util.Prng.int prng base_customers) ]
        in
        [ read; call_item ]
      else [ call_item ])
    updates
  |> fun all -> List.filteri (fun i _ -> i < n) all

let workload =
  {
    name = "TPC-C";
    schema_sql;
    app_source;
    ri_config;
    populate;
    generate;
    target_call = call "Payment" [ vint 1; vint 1; vint 1; vfloat 42.0 ];
    mahif_capable = true;
    numeric_history = Some numeric_history;
  }
