open Uv_sql

type txn_call = Wtypes.txn_call = { txn : string; args : Value.t list }

type t = Wtypes.t = {
  name : string;
  schema_sql : string;
  app_source : string;
  ri_config : Uv_retroactive.Rowset.config;
  populate : Uv_db.Engine.t -> scale:int -> Uv_util.Prng.t -> unit;
  generate :
    Uv_util.Prng.t -> scale:int -> n:int -> dep_rate:float -> txn_call list;
  target_call : txn_call;
  mahif_capable : bool;
  numeric_history :
    (Uv_util.Prng.t -> n:int -> dep_rate:float -> string list * int) option;
}

let all () =
  [ Tpcc.workload; Tatp.workload; Epinions.workload; Seats.workload; Astore.workload ]

let by_name name =
  let lname = String.lowercase_ascii name in
  match
    List.find_opt (fun w -> String.lowercase_ascii w.name = lname) (all ())
  with
  | Some w -> w
  | None -> raise Not_found

let setup ?(seed = 1234) ?(scale = 1) ?(mode = Uv_transpiler.Runtime.Raw) w =
  let eng = Uv_db.Engine.create ~seed () in
  ignore (Uv_db.Engine.exec_script eng w.schema_sql);
  let prng = Uv_util.Prng.create (seed * 7919) in
  w.populate eng ~scale prng;
  let rt = Uv_transpiler.Runtime.create eng ~source:w.app_source in
  (match mode with
  | Uv_transpiler.Runtime.Transpiled ->
      ignore (Uv_transpiler.Runtime.transpile_install rt)
  | Uv_transpiler.Runtime.Raw -> ());
  Uv_db.Engine.reset_log eng;
  (eng, rt)

(* Chunked generation for 100k+ histories: one Prng threads through
   successive [generate] calls, and each chunk is handed off (executed,
   appended to a store, …) before the next is built, so the full call
   list is never materialized. *)
let generate_scaled w prng ~scale ~n ~dep_rate ~chunk f =
  if chunk <= 0 then
    invalid_arg "Workload.generate_scaled: chunk must be positive";
  let remaining = ref n in
  let produced = ref 0 in
  while !remaining > 0 do
    let k = min chunk !remaining in
    let calls = w.generate prng ~scale ~n:k ~dep_rate in
    f calls;
    produced := !produced + List.length calls;
    remaining := !remaining - k
  done;
  !produced

let run_history rt ~mode calls =
  List.fold_left
    (fun failures { txn; args } ->
      match Uv_transpiler.Runtime.invoke rt ~mode txn args with
      | Ok _ -> failures
      | Error _ -> failures + 1)
    0 calls
