(** Common shape of the paper's five benchmarks (§5, Appendix D).

    A workload bundles: the schema DDL; the application-level transaction
    code in MiniJS; the RI-column/alias configuration of Appendix D; a
    population routine (initial database, sized by [scale]); and a
    generator producing a random-but-reproducible sequence of transaction
    calls with a dependency-rate knob.

    The dependency-rate knob (§5.4) biases calls toward one "hot" entity:
    at rate r, a fraction r of the generated calls touch the hot entity
    that the benchmark's retroactive target also touches, so roughly r of
    the history becomes dependent on the what-if modification. *)

open Uv_sql

type txn_call = { txn : string; args : Value.t list }

type t = {
  name : string;
  schema_sql : string;
  app_source : string;
  ri_config : Uv_retroactive.Rowset.config;
  populate : Uv_db.Engine.t -> scale:int -> Uv_util.Prng.t -> unit;
      (** bulk-load the initial database ([scale] multiplies row counts);
          callers normally [Engine.reset_log] afterwards so history
          analysis starts clean *)
  generate :
    Uv_util.Prng.t -> scale:int -> n:int -> dep_rate:float -> txn_call list;
      (** [n] transaction calls *)
  target_call : txn_call;
      (** a canonical retroactive-target transaction touching the hot
          entity (used as the earliest history entry to remove) *)
  mahif_capable : bool;
      (** false when every update involves string attributes (SEATS) *)
  numeric_history :
    (Uv_util.Prng.t -> n:int -> dep_rate:float -> string list * int) option;
      (** numeric-only projection of the workload (CREATE TABLEs followed
          by DML) used for the Mahif head-to-head of Table 4, together
          with the 1-based index of a canonical hot-entity statement near
          the middle — the deterministic retroactive target. Mahif's
          fragment excludes strings, so the shared history must be
          numeric. [None] when the workload cannot be projected (SEATS). *)
}

val all : unit -> t list
(** TPC-C, TATP, Epinions, SEATS, AStore. *)

val by_name : string -> t
(** Case-insensitive lookup; raises [Not_found]. *)

val setup :
  ?seed:int ->
  ?scale:int ->
  ?mode:Uv_transpiler.Runtime.mode ->
  t ->
  Uv_db.Engine.t * Uv_transpiler.Runtime.t
(** Create an engine, apply the schema, populate at [scale], install the
    application (transpiling when [mode] is [Transpiled]), and reset the
    log so subsequent transactions form the analysable history. *)

val generate_scaled :
  t ->
  Uv_util.Prng.t ->
  scale:int ->
  n:int ->
  dep_rate:float ->
  chunk:int ->
  (txn_call list -> unit) ->
  int
(** Generate [n] calls in chunks of at most [chunk], handing each chunk
    to the consumer before the next is built — the streaming mode for
    100k+-transaction histories, where materializing the whole call list
    would defeat the segmented store's memory bound. One [Prng] threads
    through every chunk, so the sequence is reproducible for a given
    seed. Returns the number of calls produced (generators emitting
    read/update pairs may round within a chunk). *)

val run_history :
  Uv_transpiler.Runtime.t ->
  mode:Uv_transpiler.Runtime.mode ->
  txn_call list ->
  int
(** Execute the calls; returns the number of failed transactions
    (application-level aborts are normal for some generated inputs). *)
