#!/usr/bin/env python3
"""Equal-worker before/after wall-time ratio between two uv.bench/1 reports.

Usage: bench_ratio.py BEFORE.json AFTER.json EXPERIMENT_ID

Prints the before/after wall times and their ratio for the named
experiment so CI logs carry the perf trend next to the artifact. Exits
non-zero only when an input is unreadable or lacks the experiment —
wall-clock regressions across heterogeneous CI hosts are a trend to
watch, not a merge gate (hash identity, the correctness gate, is
enforced inside the bench itself).
"""

import json
import sys


def wall_ms(path: str, experiment: str) -> float:
    with open(path) as f:
        doc = json.load(f)
    for entry in doc["payload"]["experiments"]:
        if entry["id"] == experiment:
            return entry["wall_ms"]
    raise SystemExit(f"{path}: no experiment {experiment!r}")


def main() -> None:
    if len(sys.argv) != 4:
        raise SystemExit(__doc__.strip())
    before_path, after_path, experiment = sys.argv[1:]
    before = wall_ms(before_path, experiment)
    after = wall_ms(after_path, experiment)
    ratio = before / after if after > 0 else float("inf")
    print(
        f"{experiment} equal-worker wall: {before:.1f} ms -> {after:.1f} ms "
        f"({ratio:.2f}x)"
    )


if __name__ == "__main__":
    main()
