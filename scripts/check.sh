#!/bin/sh
# One-stop pre-merge check: build, full test suite, a lint pass over the
# demo history, a traced what-if round-trip, and the measured-parallel-
# replay smoke bench (which hard-fails if the final universe hash ever
# diverges across worker counts). Run from the repo root: scripts/check.sh
#
# Fails fast: the first failing step prints "CHECK FAILED: <step>" and
# exits 1; success ends with a single "CHECK OK" summary line.
set -u

cd "$(dirname "$0")/.."

step() {
  name="$1"; shift
  echo "== $name =="
  if ! "$@"; then
    echo "CHECK FAILED: $name" >&2
    exit 1
  fi
}

step "dune build" dune build

step "dune runtest" dune runtest

# the gallery history seeds warnings/infos on purpose; only error-level
# diagnostics (exit code 1) fail the check
step "ultraverse lint (demo history)" \
  dune exec bin/ultraverse.exe -- lint examples/histories/lint_demo.sql

trace_roundtrip() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --trace "$out/trace.json" --metrics \
    > "$out/whatif.out" 2>&1 &&
  dune exec bin/ultraverse.exe -- trace "$out/trace.json" > "$out/trace.out"
}
step "whatif --trace round-trip" trace_roundtrip

# the static template matrix must over-approximate every dynamic
# dependency it claims to precompute: any error-level diagnostic
# (UVA015 matrix-soundness above all) on a bundled-workload history
# fails the gate (lint exits 1 on errors)
template_lint() {
  for w in tpc-c tatp epinions seats astore; do
    echo "-- lint --workload $w"
    dune exec bin/ultraverse.exe -- lint --workload "$w" --json \
      > /dev/null || return 1
  done
}
step "template lint gate: five workloads" template_lint

# the typed-column store vs the boxed model it replaced: the qcheck
# property drives random insert/update/delete/cell-write interleavings
# through both and requires identical Value.t reads, agreeing typed
# readers and identical incremental table hashes
columnar_smoke() {
  dune exec test/test_db.exe -- test storage
}
step "columnar smoke: typed columns == boxed model" columnar_smoke

step "bench smoke: parallel replay determinism" \
  dune exec bench/main.exe -- --smoke

# caching must never change the answer: the same what-if runs once with
# every cache disabled and then repeatedly through a session (plan
# cache + incremental analyzer + checkpoint ladder); the final universe
# hashes must be bitwise-identical
cache_smoke() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --no-plans --json > "$out/cold.json" &&
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --checkpoint-every 4 --repeat 3 --json \
    > "$out/warm.json" &&
  cold="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/cold.json")" &&
  warm="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/warm.json")" &&
  [ -n "$cold" ] && [ "$cold" = "$warm" ]
}
step "whatif cache smoke: warm == cold universe hash" cache_smoke

# the serve daemon end to end: start it on a Unix socket, fire
# concurrent client what-ifs at it, check every served universe hash
# equals the one-shot CLI's for the same question, scrape metrics, and
# shut it down cleanly via the protocol
serve_smoke() {
  out="$(mktemp -d)"
  sock="$out/uv.sock"
  bin=_build/default/bin/ultraverse.exe
  trap 'rm -rf "$out"' EXIT
  "$bin" serve examples/histories/lint_demo.sql --socket "$sock" \
    --workers 2 > "$out/serve.log" 2>&1 &
  srv=$!
  tries=0
  while [ ! -S "$sock" ] && [ $tries -lt 50 ]; do
    sleep 0.1; tries=$((tries + 1))
  done
  [ -S "$sock" ] || { cat "$out/serve.log" >&2; return 1; }
  pids=""
  for i in 1 2 3 4; do
    "$bin" client whatif --socket "$sock" --tau 2 --op remove --json \
      > "$out/w$i.json" &
    pids="$pids $!"
  done
  for p in $pids; do wait "$p" || return 1; done
  "$bin" whatif examples/histories/lint_demo.sql --tau 2 --op remove --json \
    > "$out/oneshot.json" || return 1
  want="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/oneshot.json")"
  [ -n "$want" ] || return 1
  for i in 1 2 3 4; do
    got="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/w$i.json")"
    if [ "$got" != "$want" ]; then
      echo "served hash $got != one-shot $want" >&2; return 1
    fi
  done
  "$bin" client metrics --socket "$sock" --json > "$out/metrics.json" &&
  grep -q '"schema":"uv.metrics/1"' "$out/metrics.json" &&
  "$bin" client shutdown --socket "$sock" > /dev/null &&
  wait "$srv"
}
step "serve smoke: concurrent clients, hash identity, clean shutdown" \
  serve_smoke

# the durable daemon end to end: serve with a --store, ingest a batch
# under an idempotency key, SIGKILL the daemon, restart it on the same
# store, and prove (a) the acked batch survived (the re-send under the
# same key is deduplicated, not re-executed), (b) the recovered daemon
# serves the same what-if hash as a one-shot run over the combined
# history, and (c) the health endpoint reports the restart as clean
serve_crash_smoke() {
  out="$(mktemp -d)"
  sock1="$out/uv1.sock"
  sock2="$out/uv2.sock"
  store="$out/store"
  bin=_build/default/bin/ultraverse.exe
  batch="UPDATE accounts SET balance = balance + 5 WHERE owner = 'bob';"
  trap 'rm -rf "$out"' EXIT

  # first life: seed the store from the demo history, ingest one batch
  "$bin" serve examples/histories/lint_demo.sql --socket "$sock1" \
    --store "$store" --workers 2 > "$out/serve1.log" 2>&1 &
  srv=$!
  tries=0
  while [ ! -S "$sock1" ] && [ $tries -lt 50 ]; do
    sleep 0.1; tries=$((tries + 1))
  done
  [ -S "$sock1" ] || { cat "$out/serve1.log" >&2; return 1; }
  "$bin" client ingest --socket "$sock1" --sql "$batch" \
    --idem-key smoke-1 --json > "$out/ingest1.json" || return 1
  grep -q '"durable":true' "$out/ingest1.json" || {
    echo "ingest ack not marked durable" >&2; return 1; }

  # the crash: the ack is in hand, so the batch must survive this
  kill -9 "$srv" 2> /dev/null
  wait "$srv" 2> /dev/null

  # second life: same store, no history script — recovery only
  "$bin" serve --socket "$sock2" --store "$store" --workers 2 \
    > "$out/serve2.log" 2>&1 &
  srv=$!
  tries=0
  while [ ! -S "$sock2" ] && [ $tries -lt 50 ]; do
    sleep 0.1; tries=$((tries + 1))
  done
  [ -S "$sock2" ] || { cat "$out/serve2.log" >&2; return 1; }
  grep -q 'idempotency keys' "$out/serve2.log" || {
    echo "restart did not report recovery" >&2; return 1; }

  # the client's post-crash re-send: deduplicated, not re-executed
  "$bin" client ingest --socket "$sock2" --sql "$batch" \
    --idem-key smoke-1 --retries 3 --json > "$out/ingest2.json" || return 1
  grep -q '"duplicate":true' "$out/ingest2.json" || {
    echo "re-sent batch was not deduplicated" >&2; return 1; }

  # hash identity: recovered daemon == one-shot over the same history
  cat examples/histories/lint_demo.sql > "$out/combined.sql"
  printf '%s\n' "$batch" >> "$out/combined.sql"
  "$bin" client whatif --socket "$sock2" --tau 2 --op remove --json \
    > "$out/served.json" || return 1
  "$bin" whatif "$out/combined.sql" --tau 2 --op remove --json \
    > "$out/oneshot.json" || return 1
  want="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/oneshot.json")"
  got="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/served.json")"
  [ -n "$want" ] || return 1
  if [ "$got" != "$want" ]; then
    echo "recovered hash $got != one-shot $want" >&2; return 1
  fi

  "$bin" client health --socket "$sock2" --json > "$out/health.json" &&
  grep -q '"schema":"uv.health/1"' "$out/health.json" &&
  grep -q '"degraded":false' "$out/health.json" &&
  "$bin" client shutdown --socket "$sock2" > /dev/null &&
  wait "$srv"
}
step "serve crash smoke: SIGKILL, restart, idempotent re-send" \
  serve_crash_smoke

# crash-consistency smoke: persist a log, damage its tail at a fixed
# byte offset, and prove fsck flags it (exit 1) while recover salvages
# the valid prefix; plus a seeded chaos schedule through the test
# binary (the full 200-schedule sweep runs in `dune runtest` above)
fault_smoke() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- log save \
    examples/histories/lint_demo.sql -o "$out/full.ulog" &&
  dune exec bin/ultraverse.exe -- fsck "$out/full.ulog" &&
  head -c 100 "$out/full.ulog" > "$out/torn.ulog" &&
  if dune exec bin/ultraverse.exe -- fsck "$out/torn.ulog"; then
    echo "fsck missed a torn log" >&2; return 1
  fi &&
  dune exec bin/ultraverse.exe -- recover "$out/torn.ulog" \
    -o "$out/clean.ulog" &&
  dune exec bin/ultraverse.exe -- fsck "$out/clean.ulog"
}
step "fsck/recover smoke: torn log round-trip" fault_smoke

# the segmented store end to end: save a history as chunked segments
# under a manifest, fsck the clean store, damage one chunk file and
# prove fsck pinpoints that segment while recover salvages the longest
# clean prefix into a history that fscks clean again
store_smoke() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- log save \
    examples/histories/lint_demo.sql -o "$out/store" --segment-cap 4 &&
  [ -f "$out/store/MANIFEST" ] &&
  [ -f "$out/store/seg-000002.ulog" ] &&
  dune exec bin/ultraverse.exe -- fsck "$out/store" &&
  seg="$out/store/seg-000002.ulog" &&
  head -c 20 "$seg" > "$seg.cut" && mv "$seg.cut" "$seg" &&
  if dune exec bin/ultraverse.exe -- fsck "$out/store"; then
    echo "fsck missed a damaged segment" >&2; return 1
  fi &&
  if dune exec bin/ultraverse.exe -- fsck "$out/store" --segment 1; then
    :
  else
    echo "fsck --segment 1 flagged an intact chunk" >&2; return 1
  fi &&
  dune exec bin/ultraverse.exe -- recover "$out/store" \
    -o "$out/clean.ulog" &&
  dune exec bin/ultraverse.exe -- fsck "$out/clean.ulog"
}
step "store smoke: segmented save, damaged chunk, salvage" store_smoke

# the history-scale gate in miniature: the segmented store streams a
# grown history while per-question replay-set cost stays flat (the full
# 100k-transaction run is the CI BENCH_8 job)
step "bench smoke: history scale (quick)" \
  dune exec bench/main.exe -- --quick --only history-scale

echo "CHECK OK"
