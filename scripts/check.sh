#!/bin/sh
# One-stop pre-merge check: build, full test suite, a lint pass over the
# demo history, a traced what-if round-trip, and the measured-parallel-
# replay smoke bench (which hard-fails if the final universe hash ever
# diverges across worker counts). Run from the repo root: scripts/check.sh
#
# Fails fast: the first failing step prints "CHECK FAILED: <step>" and
# exits 1; success ends with a single "CHECK OK" summary line.
set -u

cd "$(dirname "$0")/.."

step() {
  name="$1"; shift
  echo "== $name =="
  if ! "$@"; then
    echo "CHECK FAILED: $name" >&2
    exit 1
  fi
}

step "dune build" dune build

step "dune runtest" dune runtest

# the gallery history seeds warnings/infos on purpose; only error-level
# diagnostics (exit code 1) fail the check
step "ultraverse lint (demo history)" \
  dune exec bin/ultraverse.exe -- lint examples/histories/lint_demo.sql

trace_roundtrip() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --trace "$out/trace.json" --metrics \
    > "$out/whatif.out" 2>&1 &&
  dune exec bin/ultraverse.exe -- trace "$out/trace.json" > "$out/trace.out"
}
step "whatif --trace round-trip" trace_roundtrip

step "bench smoke: parallel replay determinism" \
  dune exec bench/main.exe -- --smoke

echo "CHECK OK"
