#!/bin/sh
# One-stop pre-merge check: build, full test suite, a lint pass over the
# demo history, and the measured-parallel-replay smoke bench (which
# hard-fails if the final universe hash ever diverges across worker
# counts). Run from the repo root: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== ultraverse lint (demo history) =="
# the gallery history seeds warnings/infos on purpose; only error-level
# diagnostics (exit code 1) fail the check
dune exec bin/ultraverse.exe -- lint examples/histories/lint_demo.sql

echo "== bench smoke: parallel replay determinism =="
dune exec bench/main.exe -- --smoke

echo "== all checks passed =="
