#!/bin/sh
# One-stop pre-merge check: build, full test suite, a lint pass over the
# demo history, a traced what-if round-trip, and the measured-parallel-
# replay smoke bench (which hard-fails if the final universe hash ever
# diverges across worker counts). Run from the repo root: scripts/check.sh
#
# Fails fast: the first failing step prints "CHECK FAILED: <step>" and
# exits 1; success ends with a single "CHECK OK" summary line.
set -u

cd "$(dirname "$0")/.."

step() {
  name="$1"; shift
  echo "== $name =="
  if ! "$@"; then
    echo "CHECK FAILED: $name" >&2
    exit 1
  fi
}

step "dune build" dune build

step "dune runtest" dune runtest

# the gallery history seeds warnings/infos on purpose; only error-level
# diagnostics (exit code 1) fail the check
step "ultraverse lint (demo history)" \
  dune exec bin/ultraverse.exe -- lint examples/histories/lint_demo.sql

trace_roundtrip() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --trace "$out/trace.json" --metrics \
    > "$out/whatif.out" 2>&1 &&
  dune exec bin/ultraverse.exe -- trace "$out/trace.json" > "$out/trace.out"
}
step "whatif --trace round-trip" trace_roundtrip

# the static template matrix must over-approximate every dynamic
# dependency it claims to precompute: any error-level diagnostic
# (UVA015 matrix-soundness above all) on a bundled-workload history
# fails the gate (lint exits 1 on errors)
template_lint() {
  for w in tpc-c tatp epinions seats astore; do
    echo "-- lint --workload $w"
    dune exec bin/ultraverse.exe -- lint --workload "$w" --json \
      > /dev/null || return 1
  done
}
step "template lint gate: five workloads" template_lint

step "bench smoke: parallel replay determinism" \
  dune exec bench/main.exe -- --smoke

# caching must never change the answer: the same what-if runs once with
# every cache disabled and then repeatedly through a session (plan
# cache + incremental analyzer + checkpoint ladder); the final universe
# hashes must be bitwise-identical
cache_smoke() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --no-plans --json > "$out/cold.json" &&
  dune exec bin/ultraverse.exe -- whatif examples/histories/lint_demo.sql \
    --tau 2 --op remove --checkpoint-every 4 --repeat 3 --json \
    > "$out/warm.json" &&
  cold="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/cold.json")" &&
  warm="$(grep -o '"final_db_hash":"[0-9a-f]*"' "$out/warm.json")" &&
  [ -n "$cold" ] && [ "$cold" = "$warm" ]
}
step "whatif cache smoke: warm == cold universe hash" cache_smoke

# crash-consistency smoke: persist a log, damage its tail at a fixed
# byte offset, and prove fsck flags it (exit 1) while recover salvages
# the valid prefix; plus a seeded chaos schedule through the test
# binary (the full 200-schedule sweep runs in `dune runtest` above)
fault_smoke() {
  out="$(mktemp -d)"
  trap 'rm -rf "$out"' EXIT
  dune exec bin/ultraverse.exe -- log save \
    examples/histories/lint_demo.sql -o "$out/full.ulog" &&
  dune exec bin/ultraverse.exe -- fsck "$out/full.ulog" &&
  head -c 100 "$out/full.ulog" > "$out/torn.ulog" &&
  if dune exec bin/ultraverse.exe -- fsck "$out/torn.ulog"; then
    echo "fsck missed a torn log" >&2; return 1
  fi &&
  dune exec bin/ultraverse.exe -- recover "$out/torn.ulog" \
    -o "$out/clean.ulog" &&
  dune exec bin/ultraverse.exe -- fsck "$out/clean.ulog"
}
step "fsck/recover smoke: torn log round-trip" fault_smoke

echo "CHECK OK"
