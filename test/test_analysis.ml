(* Tests for ultraverse.analysis: every UVA code demonstrated by a
   seeded-bad fixture and quiet on a clean twin, the rwset soundness
   cross-check over all five bundled workload histories, and the report
   renderers. *)

open Uv_db
open Uv_retroactive
open Uv_analysis
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let exec_history stmts =
  let eng = Engine.create () in
  List.iter
    (fun s -> ignore (Engine.exec eng (Uv_sql.Parser.parse_stmt s)))
    stmts;
  eng

let lint ?base ?passes stmts =
  Lint.lint_log ?base ?passes (Engine.log (exec_history stmts))

let codes ds = List.map (fun d -> d.Diagnostic.code) ds

let count_code c ds =
  List.length (List.filter (fun d -> d.Diagnostic.code = c) ds)

let contains haystack needle =
  let ln = String.length needle and lh = String.length haystack in
  let rec go i =
    i + ln <= lh && (String.sub haystack i ln = needle || go (i + 1))
  in
  go 0

let no_errors name ds =
  check Alcotest.(list string) name [] (codes (Diagnostic.errors ds))

(* ------------------------------------------------------------------ *)
(* UVA001 — unrecorded non-determinism                                  *)
(* ------------------------------------------------------------------ *)

let nondet_history =
  [
    "CREATE TABLE accounts (id INT PRIMARY KEY AUTO_INCREMENT, owner \
     VARCHAR(32), opened VARCHAR(32))";
    "INSERT INTO accounts (owner, opened) VALUES ('alice', NOW())";
    "INSERT INTO accounts (owner, opened) VALUES ('bob', NOW())";
    "SELECT id, owner, opened FROM accounts";
  ]

let test_nondet_clean () =
  no_errors "recorded draws cover the sites"
    (lint ~passes:[ Lint.Nondet ] nondet_history)

let test_nondet_stripped () =
  let eng = exec_history nondet_history in
  let bad = Log.map (fun e -> { e with Log.nondet = [] }) (Engine.log eng) in
  let ds = Lint.lint_log ~passes:[ Lint.Nondet ] bad in
  check Alcotest.int "both inserts flagged" 2 (count_code "UVA001" ds);
  check Alcotest.bool "flagged as errors" true
    (List.for_all Diagnostic.is_error ds);
  check
    Alcotest.(list (option int))
    "at the insert indexes"
    [ Some 2; Some 3 ]
    (List.map (fun d -> d.Diagnostic.index) ds)

let test_nondet_partial_strip () =
  (* dropping one of two recorded draws must still be divergence *)
  let eng = exec_history nondet_history in
  let bad =
    Log.map
      (fun e ->
        if e.Log.index = 2 then
          { e with Log.nondet = [ List.hd e.Log.nondet ] }
        else e)
      (Engine.log eng)
  in
  let ds = Lint.lint_log ~passes:[ Lint.Nondet ] bad in
  check Alcotest.int "one entry flagged" 1 (count_code "UVA001" ds)

(* ------------------------------------------------------------------ *)
(* UVA002 — soundness cross-check                                       *)
(* ------------------------------------------------------------------ *)

let test_soundness_clean () =
  no_errors "precise sets cover coarse sets"
    (lint ~passes:[ Lint.Soundness ] nondet_history)

let test_soundness_ghost_write () =
  let eng = exec_history nondet_history in
  let bad =
    Log.map
      (fun e ->
        if e.Log.index <> 3 then e
        else
          {
            e with
            Log.stmt =
              Uv_sql.Parser.parse_stmt "INSERT INTO ghost VALUES (1)";
            sql = "INSERT INTO ghost VALUES (1)";
            nondet = [];
          })
      (Engine.log eng)
  in
  let ds = Lint.lint_log ~passes:[ Lint.Soundness ] bad in
  check Alcotest.int "one soundness error" 1 (count_code "UVA002" ds);
  let d = List.hd ds in
  check Alcotest.(option string) "names the object" (Some "ghost")
    d.Diagnostic.obj;
  check Alcotest.bool "is an error" true (Diagnostic.is_error d)

(* ------------------------------------------------------------------ *)
(* UVA003/UVA004 — cluster eligibility                                  *)
(* ------------------------------------------------------------------ *)

let test_cluster_ddl_mid_history () =
  let ds =
    lint ~passes:[ Lint.Cluster ]
      [
        "CREATE TABLE t (a INT)";
        "INSERT INTO t VALUES (1)";
        "CREATE TABLE late (x INT)";
        "SELECT a FROM t";
        "SELECT x FROM late";
      ]
  in
  check Alcotest.int "one mid-history DDL warning" 1 (count_code "UVA003" ds);
  no_errors "warning, not error" ds

let test_cluster_ddl_up_front () =
  check Alcotest.int "no UVA003 when all DDL precedes DML" 0
    (count_code "UVA003"
       (lint ~passes:[ Lint.Cluster ]
          [
            "CREATE TABLE t (a INT)";
            "CREATE TABLE u (x INT)";
            "INSERT INTO t VALUES (1)";
            "INSERT INTO u VALUES (2)";
            "SELECT a FROM t";
            "SELECT x FROM u";
          ]))

let test_cluster_trigger_fanout () =
  let ds =
    lint ~passes:[ Lint.Cluster ]
      [
        "CREATE TABLE t (a INT, b INT)";
        "CREATE TABLE audit (a INT)";
        "CREATE TRIGGER tg AFTER UPDATE ON t FOR EACH ROW BEGIN INSERT \
         INTO audit VALUES (NEW.a); END";
        "INSERT INTO t VALUES (1, 2)";
        "UPDATE t SET b = 3 WHERE a = 1";
        "SELECT a FROM audit";
        "SELECT a, b FROM t";
      ]
  in
  check Alcotest.int "trigger fan-out flagged once" 1 (count_code "UVA004" ds)

let test_cluster_single_table_quiet () =
  check Alcotest.int "no UVA004 on single-table history" 0
    (count_code "UVA004"
       (lint ~passes:[ Lint.Cluster ]
          [
            "CREATE TABLE t (a INT)";
            "INSERT INTO t VALUES (1)";
            "UPDATE t SET a = 2 WHERE a = 1";
            "SELECT a FROM t";
          ]))

(* ------------------------------------------------------------------ *)
(* UVA005 — dead writes                                                 *)
(* ------------------------------------------------------------------ *)

let test_dead_write () =
  let ds =
    lint ~passes:[ Lint.Dead_write ]
      [ "CREATE TABLE t (a INT, b INT)"; "INSERT INTO t VALUES (1, 2)";
        "SELECT a FROM t" ]
  in
  check Alcotest.int "one dead column" 1 (count_code "UVA005" ds);
  check
    Alcotest.(option string)
    "names t.b" (Some "t.b")
    (List.hd ds).Diagnostic.obj

let test_dead_write_quiet_when_read () =
  check Alcotest.int "no UVA005 when every column is read" 0
    (count_code "UVA005"
       (lint ~passes:[ Lint.Dead_write ]
          [ "CREATE TABLE t (a INT, b INT)"; "INSERT INTO t VALUES (1, 2)";
            "SELECT a, b FROM t" ]))

(* ------------------------------------------------------------------ *)
(* UVA006 — unexplored-branch coverage                                  *)
(* ------------------------------------------------------------------ *)

let stub_proc =
  "CREATE PROCEDURE bump(x INT) BEGIN IF x > 0 THEN UPDATE t SET a = a + x; \
   ELSE SIGNAL SQLSTATE '45000'; END IF; END"

let test_coverage_stub () =
  let ds =
    lint ~passes:[ Lint.Coverage ]
      [ "CREATE TABLE t (a INT)"; stub_proc; "INSERT INTO t VALUES (1)";
        "CALL bump(2)"; "SELECT a FROM t" ]
  in
  check Alcotest.int "stub flagged" 1 (count_code "UVA006" ds);
  check
    Alcotest.(option string)
    "names the procedure" (Some "bump")
    (List.hd ds).Diagnostic.obj

let test_coverage_full () =
  check Alcotest.int "no UVA006 without stubs" 0
    (count_code "UVA006"
       (lint ~passes:[ Lint.Coverage ]
          [
            "CREATE TABLE t (a INT)";
            "CREATE PROCEDURE bump(x INT) BEGIN UPDATE t SET a = a + x; END";
            "INSERT INTO t VALUES (1)";
            "CALL bump(2)";
            "SELECT a FROM t";
          ]))

let test_coverage_base_catalog () =
  (* procedures installed before logging began are still checked *)
  let eng = exec_history [ "CREATE TABLE t (a INT)"; stub_proc ] in
  let base = Engine.snapshot eng in
  Engine.reset_log eng;
  ignore (Engine.exec_sql eng "INSERT INTO t VALUES (1)");
  let ds = Lint.lint_log ~base ~passes:[ Lint.Coverage ] (Engine.log eng) in
  check Alcotest.int "checkpoint procedure flagged" 1 (count_code "UVA006" ds)

(* ------------------------------------------------------------------ *)
(* UVA007–UVA010 — target validation                                    *)
(* ------------------------------------------------------------------ *)

let target_history =
  [
    "CREATE TABLE parent (id INT PRIMARY KEY)";
    "CREATE TABLE child (id INT, pid INT REFERENCES parent(id))";
    "INSERT INTO parent VALUES (1)";
    "INSERT INTO child VALUES (10, 1)";
    "DROP TABLE parent";
  ]

let target_log () = Engine.log (exec_history target_history)

let lint_target tau op =
  Lint.lint_target (target_log ()) { Analyzer.tau; op }

let add sql = Analyzer.Add (Uv_sql.Parser.parse_stmt sql)

let test_target_clean () =
  no_errors "valid Add target"
    (lint_target 4 (add "INSERT INTO child VALUES (11, 1)"));
  no_errors "Remove needs no statement checks" (lint_target 2 Analyzer.Remove)

let test_target_unknown_table () =
  let ds = lint_target 2 (add "INSERT INTO child SELECT id, id FROM orders") in
  (* as of tau=2 neither child (created by entry 2) nor orders exists *)
  check Alcotest.int "unknown objects flagged" 2 (count_code "UVA007" ds)

let test_target_unknown_column_and_arity () =
  let ds =
    lint_target 4 (add "INSERT INTO child (id, parent_id) VALUES (11, 9)")
  in
  check Alcotest.int "unknown column" 1 (count_code "UVA008" ds);
  let arity =
    lint_target 4 (add "INSERT INTO child VALUES (11, 1, 9)")
  in
  check Alcotest.int "arity mismatch" 1 (count_code "UVA008" arity)

let test_target_update_unknown_column () =
  let ds = lint_target 5 (add "UPDATE child SET weight = 3 WHERE id = 10") in
  check Alcotest.int "unknown assigned column" 1 (count_code "UVA008" ds)

let test_target_tau_range () =
  let ds = lint_target 99 Analyzer.Remove in
  check Alcotest.int "tau out of range" 1 (count_code "UVA009" ds);
  (* Add may append one past the end; Remove may not *)
  let n = Log.length (target_log ()) in
  no_errors "Add at n+1 is legal"
    (Lint.lint_target (target_log ())
       { Analyzer.tau = n + 1; op = add "SELECT id FROM child" });
  check Alcotest.int "Remove at n+1 is not" 1
    (count_code "UVA009"
       (Lint.lint_target (target_log ())
          { Analyzer.tau = n + 1; op = Analyzer.Remove }))

let test_target_fk_unresolvable () =
  let ds = lint_target 6 (add "INSERT INTO child VALUES (12, 1)") in
  check Alcotest.int "FK to dropped parent" 1 (count_code "UVA010" ds);
  no_errors "same statement before the drop"
    (lint_target 5 (add "INSERT INTO child VALUES (12, 1)"))

(* ------------------------------------------------------------------ *)
(* Renderers                                                            *)
(* ------------------------------------------------------------------ *)

let test_json_report () =
  let eng = exec_history nondet_history in
  let bad = Log.map (fun e -> { e with Log.nondet = [] }) (Engine.log eng) in
  let ds = Lint.lint_log ~passes:[ Lint.Nondet ] bad in
  let json = Diagnostic.json_report ds in
  let has = contains json in
  check Alcotest.bool "summary errors" true (has "\"errors\": 2");
  check Alcotest.bool "code field" true (has "\"code\": \"UVA001\"");
  check Alcotest.bool "index field" true (has "\"index\": 2");
  check Alcotest.bool "escapes quotes" true
    (has "\"severity\": \"error\"")

let test_pretty_report () =
  let ds =
    [
      Diagnostic.make ~index:3 ~obj:"t" ~code:"UVA002"
        ~severity:Diagnostic.Error ~pass:"soundness" "msg";
      Diagnostic.make ~code:"UVA009" ~severity:Diagnostic.Error ~pass:"target"
        "range";
    ]
  in
  let s = Format.asprintf "%a" Diagnostic.pp_report ds in
  check Alcotest.bool "mentions summary" true (contains s "2 error(s)")

(* ------------------------------------------------------------------ *)
(* The five bundled workloads lint clean                                *)
(* ------------------------------------------------------------------ *)

let test_workload_clean (w : W.t) () =
  let eng, _rt = W.setup ~mode:R.Transpiled w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n:60 ~dep_rate:0.3 in
  ignore (W.run_history _rt ~mode:R.Transpiled calls);
  let ds = Lint.lint_log ~base (Engine.log eng) in
  no_errors (w.W.name ^ " has no error diagnostics") ds;
  check Alcotest.int
    (w.W.name ^ " rwset soundness cross-check is silent")
    0
    (count_code "UVA002" ds)

let () =
  let wl_cases =
    List.map
      (fun w ->
        Alcotest.test_case ("clean: " ^ w.W.name) `Slow (test_workload_clean w))
      (W.all ())
  in
  Alcotest.run "uv_analysis"
    [
      ( "nondet",
        [
          Alcotest.test_case "clean" `Quick test_nondet_clean;
          Alcotest.test_case "stripped log" `Quick test_nondet_stripped;
          Alcotest.test_case "partial strip" `Quick test_nondet_partial_strip;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "clean" `Quick test_soundness_clean;
          Alcotest.test_case "ghost write" `Quick test_soundness_ghost_write;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "ddl mid-history" `Quick
            test_cluster_ddl_mid_history;
          Alcotest.test_case "ddl up front" `Quick test_cluster_ddl_up_front;
          Alcotest.test_case "trigger fan-out" `Quick
            test_cluster_trigger_fanout;
          Alcotest.test_case "single table quiet" `Quick
            test_cluster_single_table_quiet;
        ] );
      ( "dead-write",
        [
          Alcotest.test_case "dead column" `Quick test_dead_write;
          Alcotest.test_case "quiet when read" `Quick
            test_dead_write_quiet_when_read;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "stub" `Quick test_coverage_stub;
          Alcotest.test_case "full" `Quick test_coverage_full;
          Alcotest.test_case "base catalog" `Quick test_coverage_base_catalog;
        ] );
      ( "target",
        [
          Alcotest.test_case "clean" `Quick test_target_clean;
          Alcotest.test_case "unknown table" `Quick test_target_unknown_table;
          Alcotest.test_case "unknown column / arity" `Quick
            test_target_unknown_column_and_arity;
          Alcotest.test_case "update unknown column" `Quick
            test_target_update_unknown_column;
          Alcotest.test_case "tau range" `Quick test_target_tau_range;
          Alcotest.test_case "fk unresolvable" `Quick
            test_target_fk_unresolvable;
        ] );
      ( "report",
        [
          Alcotest.test_case "json" `Quick test_json_report;
          Alcotest.test_case "pretty" `Quick test_pretty_report;
        ] );
      ("workloads", wl_cases);
    ]
