(* Chaos harness for the serve durability layer (DESIGN.md §13).

   Every schedule simulates one daemon lifetime killed at a precise
   crash window — before the batch reaches the store ([serve.ingest.append]),
   between the intent journal and the store sync ([serve.ingest.sync]),
   or after the sync but before the acknowledgment frame ([serve.ack]) —
   over each of the paper's five workload histories. After the "kill"
   the store directory is re-attached exactly as a restarted daemon
   would, and the invariants of the durable-ingest contract are checked:

   - every acknowledged batch is present after restart, bit-identical;
   - an unacknowledged batch is either absent or (when the crash fell
     after the sync) fully durable and deduplicated on re-send — never
     partially visible;
   - the client's re-sent and remaining batches apply cleanly, and the
     completed universe is bit-identical — database hash and what-if
     answer — to a one-shot run that never crashed. *)

open Uv_db
open Uv_retroactive
module F = Uv_fault.Fault
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let run e sql = ignore (Engine.exec_sql e sql)

let svc_config = Whatif.Config.make ~workers:1 ()

let with_store_dir f =
  let dir = Filename.temp_file "uv_chaos_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* one digest line per durable record: what "bit-identical" means for
   committed history *)
let record_digest (r : Log_io.record) =
  Printf.sprintf "%s|%s|%s" r.Log_io.r_sql
    (String.concat "," (List.map Uv_sql.Value.to_string r.Log_io.r_nondet))
    (Option.value r.Log_io.r_app_txn ~default:"-")

let log_records e = Log_io.records_of_log (Engine.log e)

let replay_records e records =
  List.iter
    (fun (r : Log_io.record) ->
      ignore
        (Engine.exec_sql ?app_txn:r.Log_io.r_app_txn ~nondet:r.Log_io.r_nondet
           e r.Log_io.r_sql))
    records

(* The ingest side of every schedule: deterministic, draw-free DML on a
   dedicated table, so the completed universe is the same no matter
   where the crash fell or how the engine PRNG advanced during replay —
   the workload history (with its recorded RAND draws) is the seeded
   baseline underneath. *)
let audit_setup e =
  run e "CREATE TABLE chaos_audit (id INT PRIMARY KEY, v INT)";
  run e "INSERT INTO chaos_audit VALUES (1, 10)";
  run e "INSERT INTO chaos_audit VALUES (2, 20)"

let batches_per_schedule = 8
let stmts_per_batch = 3

let batch_sql i =
  [
    Printf.sprintf "INSERT INTO chaos_audit VALUES (%d, %d)" (100 + (2 * i))
      (7 * i);
    Printf.sprintf "UPDATE chaos_audit SET v = v + %d WHERE id = %d" i
      (1 + (i mod 2));
    Printf.sprintf "INSERT INTO chaos_audit VALUES (%d, %d)"
      (101 + (2 * i))
      (3 * i);
  ]

let batch_stmts i = Uv_sql.Parser.parse_script (String.concat ";" (batch_sql i))
let batch_key i = Printf.sprintf "chaos-batch-%d" i

(* first global index of batch [i] (1-based), given the seeded baseline
   length — the fault-site key both crash sites are aimed with *)
let batch_start ~base_len i = base_len + (stmts_per_batch * (i - 1)) + 1

type crash = No_crash | At_append | At_sync | At_ack

let crash_of_seed seed =
  match seed mod 4 with
  | 0 -> No_crash
  | 1 -> At_append
  | 2 -> At_sync
  | _ -> At_ack

let fault_of ~base_len seed =
  let batch = 1 + (seed / 4 mod batches_per_schedule) in
  let start = batch_start ~base_len batch in
  let inj site key = [ { F.site; key; hit = 1; kind = F.Stmt_fail; arg = 0. } ] in
  match crash_of_seed seed with
  | No_crash -> (batch, F.disabled)
  | At_append -> (batch, F.script (inj F.Site.serve_ingest_append start))
  | At_sync ->
      (* the sync site is probed with the store length after the batch's
         records were appended *)
      (batch,
       F.script (inj F.Site.serve_ingest_sync (start + stmts_per_batch - 1)))
  | At_ack -> (batch, F.script (inj F.Site.serve_ack start))

(* What one workload's schedules share: the recorded baseline history
   (replayed bit-identically into every lifetime) and the one-shot
   oracle — the universe of a daemon that ingested all the batches and
   never crashed. *)
type oracle = {
  o_base : Log_io.record list;
  o_base_len : int;
  o_total_len : int;
  o_db_hash : int64;
  o_whatif_hash : string;
}

(* a fresh engine that can replay this workload's history: schema,
   deterministic population and the transpiled application installed,
   log reset — exactly the state a daemon restores before attaching its
   store (the baseline CALL records need the procedures) *)
let fresh_engine (w : W.t) =
  let e, _rt = W.setup ~mode:R.Transpiled w in
  e

let build_oracle (w : W.t) =
  let eng, rt = W.setup ~mode:R.Transpiled w in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n:10 ~dep_rate:0.3 in
  ignore (W.run_history rt ~mode:R.Transpiled calls);
  audit_setup eng;
  let o_base = log_records eng in
  let o_base_len = List.length o_base in
  (* the one-shot path: same baseline, every batch ingested through the
     service, no store, no crash *)
  let e = fresh_engine w in
  replay_records e o_base;
  let svc = Whatif.Service.create ~config:svc_config e in
  for i = 1 to batches_per_schedule do
    let applied, failed = Whatif.Service.ingest svc (batch_stmts i) in
    check Alcotest.int
      (Printf.sprintf "%s: oracle batch %d applies fully" w.W.name i)
      stmts_per_batch applied;
    check Alcotest.int
      (Printf.sprintf "%s: oracle batch %d clean" w.W.name i)
      0 failed
  done;
  let o_whatif_hash =
    match Whatif.Service.run svc { Analyzer.tau = 1; op = Analyzer.Remove } with
    | Ok r -> Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash
    | Error err ->
        Alcotest.failf "%s: oracle what-if: %s" w.W.name
          (Whatif.Error.to_string err)
  in
  {
    o_base;
    o_base_len;
    o_total_len = o_base_len + (batches_per_schedule * stmts_per_batch);
    o_db_hash = Engine.db_hash e;
    o_whatif_hash;
  }

let run_schedule (w : W.t) oracle seed =
  with_store_dir @@ fun dir ->
  let crash_batch, fault = fault_of ~base_len:oracle.o_base_len seed in
  let crash = crash_of_seed seed in
  let ctx fmt =
    Printf.ksprintf
      (fun s -> Printf.sprintf "%s seed %d: %s" w.W.name seed s)
      fmt
  in
  (* some schedules run the group-commit window (syncer domain), the
     rest the inline flush *)
  let dcfg windowed =
    {
      Durable.fsync = false;
      fault;
      sync_every = (if windowed then 4 else 1);
      sync_ms = (if windowed then 2. else 0.);
    }
  in
  (* ---- first life ---------------------------------------------- *)
  let e1 = fresh_engine w in
  let dur1, recov0 = Durable.attach ~config:(dcfg (seed mod 5 = 0)) ~dir e1 in
  check Alcotest.int (ctx "fresh store is empty") 0 recov0.Durable.rec_records;
  replay_records e1 oracle.o_base;
  Durable.seed dur1;
  let svc1 = Whatif.Service.create ~config:svc_config e1 in
  Durable.start ~ingest:(Whatif.Service.ingest svc1) dur1;
  let acked = ref [] and crashed = ref false in
  (try
     for i = 1 to batches_per_schedule do
       let ack = Durable.ingest ~key:(batch_key i) dur1 (batch_stmts i) in
       check Alcotest.bool (ctx "first send of batch %d not a duplicate" i)
         false ack.Durable.duplicate;
       acked := (i, ack) :: !acked
     done
   with F.Injected inj ->
     crashed := true;
     check Alcotest.bool (ctx "crash at the scripted site") true
       (List.mem inj.F.site
          [ F.Site.serve_ingest_append; F.Site.serve_ingest_sync;
            F.Site.serve_ack ]));
  check Alcotest.bool (ctx "schedule crashed iff a site was armed")
    (crash <> No_crash) !crashed;
  let acked = List.rev !acked in
  let last_acked_len =
    match List.rev acked with
    | (_, ack) :: _ -> ack.Durable.history_len
    | [] -> oracle.o_base_len
  in
  (* a poisoned handle refuses further work *)
  if !crashed then
    (match Durable.ingest ~key:"after-crash" dur1 (batch_stmts 1) with
    | _ -> Alcotest.fail (ctx "poisoned handle accepted an ingest")
    | exception _ -> ());
  (* the kill: closing a poisoned handle must not flush — the disk
     keeps the exact crash-window state *)
  Durable.close dur1;
  (* ---- second life: restart from the crash image ---------------- *)
  let e2 = fresh_engine w in
  let dur2, recov = Durable.attach ~config:(dcfg false) ~dir e2 in
  Fun.protect ~finally:(fun () -> Durable.close dur2)
  @@ fun () ->
  check Alcotest.int (ctx "replay clean") 0 recov.Durable.rec_replay_skipped;
  (* invariant: every acknowledged batch survives, bit-identical *)
  check Alcotest.bool (ctx "acked history survives the kill") true
    (recov.Durable.rec_records >= last_acked_len);
  let first_life = List.map record_digest (log_records e1) in
  let recovered = List.map record_digest (log_records e2) in
  check Alcotest.int (ctx "recovered length matches the report")
    recov.Durable.rec_records
    (List.length recovered);
  check Alcotest.(list string) (ctx "recovered history is a prefix")
    (List.filteri (fun i _ -> i < List.length recovered) first_life)
    recovered;
  (* invariant: the unacknowledged batch is all-or-nothing *)
  let expected_len =
    match crash with
    | No_crash -> oracle.o_total_len
    | At_append | At_sync -> last_acked_len
    | At_ack -> last_acked_len + stmts_per_batch
  in
  check Alcotest.int (ctx "recovery cut to a batch boundary") expected_len
    recov.Durable.rec_records;
  check Alcotest.int (ctx "idempotency keys recovered")
    (match crash with
    | No_crash -> batches_per_schedule
    | At_append | At_sync -> crash_batch - 1
    | At_ack -> crash_batch)
    recov.Durable.rec_keys;
  (* the client completes the schedule: re-send the batch whose ack was
     lost (same key), then the never-attempted remainder *)
  let svc2 = Whatif.Service.create ~config:svc_config e2 in
  Durable.start ~ingest:(Whatif.Service.ingest svc2) dur2;
  let resume_from = if !crashed then crash_batch else batches_per_schedule + 1 in
  for i = resume_from to batches_per_schedule do
    let ack = Durable.ingest ~key:(batch_key i) dur2 (batch_stmts i) in
    if i = crash_batch then
      check Alcotest.bool
        (ctx "re-sent batch deduplicated iff it was durable")
        (crash = At_ack) ack.Durable.duplicate;
    check Alcotest.int (ctx "resumed batch %d applies fully" i)
      stmts_per_batch
      (if ack.Durable.duplicate then stmts_per_batch else ack.Durable.applied)
  done;
  (* invariant: the completed universe is the one-shot universe *)
  check Alcotest.int (ctx "completed history length") oracle.o_total_len
    (Whatif.Service.history_len svc2);
  check Alcotest.int64 (ctx "database hash == one-shot run") oracle.o_db_hash
    (Engine.db_hash e2);
  check Alcotest.int (ctx "store durable to the full history")
    oracle.o_total_len
    (Durable.stats dur2).Durable.durable_len;
  (* the served what-if answer is the one-shot answer (a full run per
     schedule is costly — every fifth schedule samples it; the serve
     protocol tests cover the socket path) *)
  if seed mod 5 = 1 then
    match Whatif.Service.run svc2 { Analyzer.tau = 1; op = Analyzer.Remove } with
    | Ok r ->
        check Alcotest.string (ctx "what-if hash == one-shot run")
          oracle.o_whatif_hash
          (Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash)
    | Error err ->
        Alcotest.failf "%s seed %d: post-recovery what-if: %s" w.W.name seed
          (Whatif.Error.to_string err)

(* the chaos gate: >= 100 kill-restart schedules per workload, covering
   every crash site x batch position under both flush modes *)
let seeds_per_workload = 100

let test_chaos_workload (w : W.t) () =
  let oracle = build_oracle w in
  for seed = 1 to seeds_per_workload do
    run_schedule w oracle seed
  done

let () =
  Alcotest.run "uv_chaos_serve"
    (List.map
       (fun (w : W.t) ->
         ( "kill-restart: " ^ w.W.name,
           [
             Alcotest.test_case
               (Printf.sprintf "%d seeded schedules" seeds_per_workload)
               `Slow (test_chaos_workload w);
           ] ))
       (W.all ()))
