(* Tests for ultraverse.db: storage, catalog, the execution engine across
   the Table A statement surface, logging, non-determinism recording and
   replay, and selective undo. *)

open Uv_sql
open Uv_db

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let fresh () = Engine.create ()

let run e sql = ignore (Engine.exec_sql e sql)

let q1 e sql =
  (* first cell of first row *)
  let r = Engine.query_sql e sql in
  match r.Engine.rows with
  | row :: _ -> row.(0)
  | [] -> Alcotest.failf "no rows from %s" sql

let qint e sql = Value.to_int (q1 e sql)
let qstr e sql = Value.to_string (q1 e sql)

let with_users () =
  let e = fresh () in
  run e "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(16), age INT)";
  run e "INSERT INTO users VALUES (1, 'alice', 30), (2, 'bob', 25), (3, 'carol', 35)";
  e

(* ------------------------------------------------------------------ *)
(* Storage                                                              *)
(* ------------------------------------------------------------------ *)

let test_storage_roundtrip () =
  let t = Storage.create (Schema.table "t" [ Schema.column "a" Value.Tint ]) in
  let id = Storage.insert t [| Value.Int 1 |] in
  check Alcotest.int "count" 1 (Storage.row_count t);
  let before = Storage.update t id [| Value.Int 2 |] in
  check Alcotest.int "before image" 1 (Value.to_int before.(0));
  let removed = Storage.delete t id in
  check Alcotest.int "removed image" 2 (Value.to_int removed.(0));
  check Alcotest.int "empty" 0 (Storage.row_count t);
  check Alcotest.int64 "hash back to zero" 0L (Storage.hash t)

let test_storage_hash_tracks_mutations () =
  let t = Storage.create (Schema.table "t" [ Schema.column "a" Value.Tint ]) in
  let h0 = Storage.hash t in
  let id = Storage.insert t [| Value.Int 5 |] in
  let h1 = Storage.hash t in
  ignore (Storage.update t id [| Value.Int 6 |]);
  let h2 = Storage.hash t in
  ignore (Storage.update t id [| Value.Int 5 |]);
  check Alcotest.int64 "update back restores hash" h1 (Storage.hash t);
  Alcotest.(check bool) "hashes distinct" true (h0 <> h1 && h1 <> h2)

let test_storage_auto_values () =
  let t = Storage.create (Schema.table "t" [ Schema.column "a" Value.Tint ]) in
  check Alcotest.int "take 1" 1 (Storage.take_auto_value t);
  check Alcotest.int "take 2" 2 (Storage.take_auto_value t);
  Storage.bump_auto_value t 10;
  check Alcotest.int "bumped" 11 (Storage.take_auto_value t)

let test_storage_copy_isolated () =
  let t = Storage.create (Schema.table "t" [ Schema.column "a" Value.Tint ]) in
  ignore (Storage.insert t [| Value.Int 1 |]);
  let c = Storage.copy t in
  ignore (Storage.insert t [| Value.Int 2 |]);
  check Alcotest.int "copy unchanged" 1 (Storage.row_count c);
  check Alcotest.int "original grew" 2 (Storage.row_count t)

(* Property: the typed-column store is observationally identical to the
   legacy boxed representation it replaced. The model IS that
   representation — a rowid -> Value.t array Hashtbl plus a
   serialize-based Table_hash — driven through the same random
   insert/update/delete/cell-write interleaving. Every before-image and
   final read must materialize the same [Value.t], the typed readers
   must agree with the boxed cells, and the incremental table hash must
   equal the model's serialize-and-sum hash. *)
let prop_columnar_matches_boxed_model =
  let sch =
    Schema.table "t"
      [
        Schema.column "a" Value.Tint;
        Schema.column "b" Value.Tfloat;
        Schema.column "c" Value.Ttext;
        Schema.column "d" Value.Tbool;
      ]
  in
  let open QCheck in
  let value_gen =
    (* every dynamic kind lands in every column: the columns must handle
       cells that disagree with their declared type, like the boxed
       store did *)
    Gen.oneof
      [
        Gen.return Value.Null;
        Gen.map (fun i -> Value.Int i) (Gen.int_range (-50) 50);
        Gen.map
          (fun f -> Value.Float (float_of_int f /. 4.))
          (Gen.int_range (-40) 40);
        Gen.map
          (fun s -> Value.Text s)
          (Gen.string_size ~gen:Gen.printable (Gen.int_range 0 6));
        Gen.map (fun b -> Value.Bool b) Gen.bool;
      ]
  in
  let row_gen =
    Gen.map Array.of_list (Gen.list_size (Gen.return 4) value_gen)
  in
  let op_gen =
    Gen.oneof
      [
        Gen.map (fun r -> `Insert r) row_gen;
        Gen.map2 (fun k r -> `Update (k, r)) Gen.small_nat row_gen;
        Gen.map (fun k -> `Delete k) Gen.small_nat;
        Gen.map3
          (fun k c v -> `Write (k, c, v))
          Gen.small_nat (Gen.int_range 0 3) value_gen;
      ]
  in
  let ops_arb =
    make
      ~print:(fun l -> Printf.sprintf "%d ops" (List.length l))
      (Gen.list_size (Gen.int_range 1 120) op_gen)
  in
  qtest
    (QCheck.Test.make ~name:"columnar store matches legacy boxed model"
       ~count:200 ops_arb (fun ops ->
         let t = Storage.create sch in
         let model : (Storage.rowid, Value.t array) Hashtbl.t =
           Hashtbl.create 16
         in
         let mh = Uv_util.Table_hash.create () in
         let ok = ref true in
         let same_row a b =
           Array.length a = Array.length b
           && Array.for_all2 Value.equal a b
         in
         let nth k =
           (* the k-th live rowid in ascending order, if any *)
           match
             List.sort compare
               (Hashtbl.fold (fun id _ acc -> id :: acc) model [])
           with
           | [] -> None
           | ids -> Some (List.nth ids (k mod List.length ids))
         in
         List.iter
           (fun op ->
             match op with
             | `Insert r ->
                 let id = Storage.insert t r in
                 Hashtbl.replace model id (Array.copy r);
                 Uv_util.Table_hash.add_row mh (Storage.serialize_row t r)
             | `Update (k, r) -> (
                 match nth k with
                 | None -> ()
                 | Some id ->
                     let before = Storage.update t id (Array.copy r) in
                     let mbefore = Hashtbl.find model id in
                     if not (same_row before mbefore) then ok := false;
                     Uv_util.Table_hash.remove_row mh
                       (Storage.serialize_row t mbefore);
                     Uv_util.Table_hash.add_row mh (Storage.serialize_row t r);
                     Hashtbl.replace model id (Array.copy r))
             | `Delete k -> (
                 match nth k with
                 | None -> ()
                 | Some id ->
                     let removed = Storage.delete t id in
                     let mremoved = Hashtbl.find model id in
                     if not (same_row removed mremoved) then ok := false;
                     Uv_util.Table_hash.remove_row mh
                       (Storage.serialize_row t mremoved);
                     Hashtbl.remove model id)
             | `Write (k, c, v) -> (
                 match nth k with
                 | None -> ()
                 | Some id ->
                     Storage.Col.write t id c v;
                     let row = Hashtbl.find model id in
                     Uv_util.Table_hash.remove_row mh
                       (Storage.serialize_row t row);
                     row.(c) <- v;
                     Uv_util.Table_hash.add_row mh (Storage.serialize_row t row)))
           ops;
         (* final state: boxed reads, typed reads and hash all agree *)
         ok := !ok && Storage.row_count t = Hashtbl.length model;
         ok :=
           !ok
           && Int64.equal (Storage.hash t) (Uv_util.Table_hash.value mh);
         Hashtbl.iter
           (fun id row ->
             (match Storage.get t id with
             | Some got -> if not (same_row got row) then ok := false
             | None -> ok := false);
             Array.iteri
               (fun c cell ->
                 let ti = Storage.Col.read_int t id c in
                 let tf = Storage.Col.read_float t id c in
                 let tt = Storage.Col.read_text t id c in
                 let tb = Storage.Col.read_bool t id c in
                 let expect =
                   match cell with
                   | Value.Int i ->
                       ti = Some i && tf = None && tt = None && tb = None
                   | Value.Float f ->
                       tf = Some f && ti = None && tt = None && tb = None
                   | Value.Text s ->
                       tt = Some s && ti = None && tf = None && tb = None
                   | Value.Bool b ->
                       tb = Some b && ti = None && tf = None && tt = None
                   | Value.Null ->
                       ti = None && tf = None && tt = None && tb = None
                 in
                 if not expect then ok := false)
               row)
           model;
         (* to_rows iterates ascending and covers exactly the live set *)
         let listed = Storage.to_rows t in
         ok := !ok && List.length listed = Hashtbl.length model;
         ok :=
           !ok
           && List.for_all
                (fun (id, r) ->
                  match Hashtbl.find_opt model id with
                  | Some m -> same_row r m
                  | None -> false)
                listed;
         ok := !ok && List.sort compare (List.map fst listed) = List.map fst listed;
         !ok))

(* ------------------------------------------------------------------ *)
(* Basic DML + SELECT                                                   *)
(* ------------------------------------------------------------------ *)

let test_insert_select () =
  let e = with_users () in
  check Alcotest.int "count" 3 (qint e "SELECT COUNT(*) FROM users");
  check Alcotest.string "where" "bob" (qstr e "SELECT name FROM users WHERE id = 2")

let test_update_delete () =
  let e = with_users () in
  run e "UPDATE users SET age = age + 1 WHERE name = 'alice'";
  check Alcotest.int "updated" 31 (qint e "SELECT age FROM users WHERE id = 1");
  run e "DELETE FROM users WHERE age < 30";
  check Alcotest.int "deleted" 2 (qint e "SELECT COUNT(*) FROM users")

let test_select_order_limit () =
  let e = with_users () in
  let r = Engine.query_sql e "SELECT name FROM users ORDER BY age DESC LIMIT 2" in
  let names = List.map (fun row -> Value.to_string row.(0)) r.Engine.rows in
  check Alcotest.(list string) "ordered" [ "carol"; "alice" ] names;
  (* OFFSET skips before LIMIT counts, in both syntaxes *)
  let names sql =
    List.map
      (fun row -> Value.to_string row.(0))
      (Engine.query_sql e sql).Engine.rows
  in
  check Alcotest.(list string) "offset" [ "alice"; "bob" ]
    (names "SELECT name FROM users ORDER BY age DESC LIMIT 2 OFFSET 1");
  check Alcotest.(list string) "mysql comma form" [ "alice"; "bob" ]
    (names "SELECT name FROM users ORDER BY age DESC LIMIT 1, 2");
  check Alcotest.(list string) "offset past end" []
    (names "SELECT name FROM users ORDER BY age DESC LIMIT 2 OFFSET 9")

let test_select_star_and_projection () =
  let e = with_users () in
  let r = Engine.query_sql e "SELECT * FROM users WHERE id = 1" in
  check Alcotest.(list string) "columns" [ "id"; "name"; "age" ] r.Engine.columns

let test_aggregates () =
  let e = with_users () in
  check Alcotest.int "sum" 90 (qint e "SELECT SUM(age) FROM users");
  check Alcotest.int "min" 25 (qint e "SELECT MIN(age) FROM users");
  check Alcotest.int "max" 35 (qint e "SELECT MAX(age) FROM users");
  check Alcotest.int "avg" 30 (qint e "SELECT AVG(age) FROM users");
  check Alcotest.int "count empty" 0 (qint e "SELECT COUNT(*) FROM users WHERE id > 99")

let test_group_by () =
  let e = fresh () in
  run e "CREATE TABLE sales (region VARCHAR(8), amount INT)";
  run e
    "INSERT INTO sales VALUES ('east', 10), ('west', 20), ('east', 30), ('west', 5)";
  let r =
    Engine.query_sql e
      "SELECT region, SUM(amount) FROM sales GROUP BY region ORDER BY region ASC"
  in
  let rows =
    List.map
      (fun row -> (Value.to_string row.(0), Value.to_int row.(1)))
      r.Engine.rows
  in
  check
    Alcotest.(list (pair string int))
    "grouped sums"
    [ ("east", 40); ("west", 25) ]
    rows

let test_join () =
  let e = with_users () in
  run e "CREATE TABLE pets (owner INT, pet VARCHAR(8))";
  run e "INSERT INTO pets VALUES (1, 'cat'), (1, 'dog'), (3, 'fish')";
  let r =
    Engine.query_sql e
      "SELECT u.name, p.pet FROM users u JOIN pets p ON p.owner = u.id ORDER BY p.pet ASC"
  in
  check Alcotest.int "join rows" 3 (List.length r.Engine.rows);
  check Alcotest.string "first pair"
    "alice/cat"
    (match r.Engine.rows with
    | row :: _ -> Value.to_string row.(0) ^ "/" ^ Value.to_string row.(1)
    | [] -> "")

let test_subquery () =
  let e = with_users () in
  check Alcotest.string "scalar subquery" "carol"
    (qstr e "SELECT name FROM users WHERE age = (SELECT MAX(age) FROM users)");
  check Alcotest.int "exists" 3
    (qint e
       "SELECT COUNT(*) FROM users WHERE EXISTS (SELECT 1 FROM users WHERE id = 1)")

let test_null_semantics () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT, b INT)";
  run e "INSERT INTO t VALUES (1, NULL), (2, 5)";
  check Alcotest.int "null excluded from where" 1
    (qint e "SELECT COUNT(*) FROM t WHERE b > 0");
  check Alcotest.int "is null" 1 (qint e "SELECT COUNT(*) FROM t WHERE b IS NULL");
  check Alcotest.int "sum skips null" 5 (qint e "SELECT SUM(b) FROM t")

let test_builtin_functions () =
  let e = fresh () in
  run e "CREATE TABLE t (s VARCHAR(16))";
  run e "INSERT INTO t VALUES ('hello')";
  check Alcotest.string "concat" "hello!"
    (qstr e "SELECT CONCAT(s, '!') FROM t");
  check Alcotest.string "upper" "HELLO" (qstr e "SELECT UPPER(s) FROM t");
  check Alcotest.int "length" 5 (qint e "SELECT LENGTH(s) FROM t");
  check Alcotest.string "substr" "ell" (qstr e "SELECT SUBSTR(s, 2, 3) FROM t");
  check Alcotest.int "if" 1 (qint e "SELECT IF(LENGTH(s) > 3, 1, 0) FROM t");
  check Alcotest.int "coalesce" 7 (qint e "SELECT COALESCE(NULL, 7) FROM t");
  check Alcotest.int "like" 1
    (qint e "SELECT COUNT(*) FROM t WHERE s LIKE 'h%o'")

(* ------------------------------------------------------------------ *)
(* DDL                                                                  *)
(* ------------------------------------------------------------------ *)

let test_alter_table () =
  let e = with_users () in
  run e "ALTER TABLE users ADD COLUMN city VARCHAR(16)";
  check Alcotest.int "new column null" 1
    (qint e "SELECT COUNT(*) FROM users WHERE city IS NULL AND id = 1");
  run e "ALTER TABLE users DROP COLUMN age";
  (match Engine.query_sql e "SELECT * FROM users WHERE id = 1" with
  | { Engine.columns = [ "id"; "name"; "city" ]; _ } -> ()
  | _ -> Alcotest.fail "column dropped");
  run e "ALTER TABLE users RENAME TO people";
  check Alcotest.int "renamed" 3 (qint e "SELECT COUNT(*) FROM people")

let test_drop_truncate () =
  let e = with_users () in
  run e "TRUNCATE TABLE users";
  check Alcotest.int "truncated" 0 (qint e "SELECT COUNT(*) FROM users");
  run e "DROP TABLE users";
  (match Engine.exec_sql e "SELECT COUNT(*) FROM users" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "dropped table should be gone");
  run e "DROP TABLE IF EXISTS users"

let test_views () =
  let e = with_users () in
  run e "CREATE VIEW adults AS SELECT id, name FROM users WHERE age >= 30";
  check Alcotest.int "view rows" 2 (qint e "SELECT COUNT(*) FROM adults");
  (* updatable view: UPDATE through it hits the parent with the view
     predicate conjoined *)
  run e "UPDATE adults SET name = 'ALICE' WHERE id = 1";
  check Alcotest.string "updated through view" "ALICE"
    (qstr e "SELECT name FROM users WHERE id = 1");
  run e "DELETE FROM adults WHERE id = 3";
  check Alcotest.int "deleted through view" 2 (qint e "SELECT COUNT(*) FROM users")

let test_auto_increment () =
  let e = fresh () in
  run e "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v VARCHAR(4))";
  run e "INSERT INTO t (v) VALUES ('a')";
  run e "INSERT INTO t (v) VALUES ('b')";
  check Alcotest.int "second id" 2 (qint e "SELECT id FROM t WHERE v = 'b'");
  run e "INSERT INTO t VALUES (10, 'c')";
  run e "INSERT INTO t (v) VALUES ('d')";
  check Alcotest.int "bumped past explicit" 11 (qint e "SELECT id FROM t WHERE v = 'd'");
  check Alcotest.int "last_insert_id" 11 (qint e "SELECT LAST_INSERT_ID() FROM t LIMIT 1")

(* ------------------------------------------------------------------ *)
(* Procedures, triggers, transactions                                   *)
(* ------------------------------------------------------------------ *)

let test_procedure_control_flow () =
  let e = fresh () in
  run e "CREATE TABLE log (k INT, v INT)";
  run e
    "CREATE PROCEDURE fill(IN n INT) BEGIN DECLARE i INT DEFAULT 0; WHILE i < \
     n DO INSERT INTO log VALUES (i, i * i); SET i = i + 1; END WHILE; END";
  run e "CALL fill(5)";
  check Alcotest.int "loop inserted" 5 (qint e "SELECT COUNT(*) FROM log");
  check Alcotest.int "squares" 16 (qint e "SELECT v FROM log WHERE k = 4")

let test_procedure_leave_signal () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT)";
  run e
    "CREATE PROCEDURE p(IN x INT) lbl: BEGIN IF x = 0 THEN LEAVE lbl; END IF; \
     INSERT INTO t VALUES (x); END";
  run e "CALL p(0)";
  check Alcotest.int "leave skipped insert" 0 (qint e "SELECT COUNT(*) FROM t");
  run e "CALL p(7)";
  check Alcotest.int "insert happened" 1 (qint e "SELECT COUNT(*) FROM t");
  run e
    "CREATE PROCEDURE boom() BEGIN INSERT INTO t VALUES (99); SIGNAL SQLSTATE \
     '45000'; END";
  (match Engine.exec_sql e "CALL boom()" with
  | exception Engine.Signal_raised "45000" -> ()
  | _ -> Alcotest.fail "signal should raise");
  check Alcotest.int "signalled statement rolled back" 0
    (qint e "SELECT COUNT(*) FROM t WHERE a = 99")

let test_select_into_vars () =
  let e = with_users () in
  run e "CREATE TABLE out (v INT)";
  run e
    "CREATE PROCEDURE snap() BEGIN DECLARE m INT; SELECT MAX(age) INTO m FROM \
     users; INSERT INTO out VALUES (m); END";
  run e "CALL snap()";
  check Alcotest.int "select into" 35 (qint e "SELECT v FROM out")

let test_triggers () =
  let e = fresh () in
  run e "CREATE TABLE orders (id INT, qty INT)";
  run e "CREATE TABLE audit (total INT)";
  run e "INSERT INTO audit VALUES (0)";
  run e
    "CREATE TRIGGER tally AFTER INSERT ON orders FOR EACH ROW BEGIN UPDATE \
     audit SET total = total + NEW.qty; END";
  run e "INSERT INTO orders VALUES (1, 5)";
  run e "INSERT INTO orders VALUES (2, 7)";
  check Alcotest.int "trigger accumulated" 12 (qint e "SELECT total FROM audit");
  run e "DROP TRIGGER tally";
  run e "INSERT INTO orders VALUES (3, 100)";
  check Alcotest.int "dropped trigger inert" 12 (qint e "SELECT total FROM audit")

let test_transaction_atomic () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT)";
  run e "CREATE PROCEDURE bad() BEGIN INSERT INTO t VALUES (1); SIGNAL SQLSTATE '99001'; END";
  (match
     Engine.exec_sql e "BEGIN TRANSACTION; INSERT INTO t VALUES (7); CALL bad(); COMMIT"
   with
  | exception Engine.Signal_raised _ -> ()
  | _ -> Alcotest.fail "transaction should abort");
  check Alcotest.int "atomic abort" 0 (qint e "SELECT COUNT(*) FROM t");
  run e "BEGIN TRANSACTION; INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); COMMIT";
  check Alcotest.int "committed" 2 (qint e "SELECT COUNT(*) FROM t")

(* ------------------------------------------------------------------ *)
(* Log + non-determinism                                                *)
(* ------------------------------------------------------------------ *)

let test_log_records () =
  let e = with_users () in
  check Alcotest.int "log length" 2 (Log.length (Engine.log e));
  let entry = Log.entry (Engine.log e) 2 in
  check Alcotest.int "rows written" 3 entry.Log.rows_written;
  Alcotest.(check bool) "written hash recorded" true
    (List.mem_assoc "users" entry.Log.written_hashes)

let test_nondet_replay_rand () =
  let e = fresh () in
  run e "CREATE TABLE t (v DOUBLE)";
  run e "INSERT INTO t VALUES (RAND())";
  let entry = Log.entry (Engine.log e) 2 in
  check Alcotest.int "one draw" 1 (List.length entry.Log.nondet);
  let original = qstr e "SELECT v FROM t" in
  (* replay into a fresh engine with forced nondet: same value *)
  let e2 = fresh () in
  run e2 "CREATE TABLE t (v DOUBLE)";
  ignore
    (Engine.exec ~nondet:entry.Log.nondet e2 (Uv_sql.Parser.parse_stmt "INSERT INTO t VALUES (RAND())"));
  check Alcotest.string "replayed identical" original (qstr e2 "SELECT v FROM t");
  (* without forcing, a fresh draw differs with overwhelming probability *)
  let e3 = Engine.create ~seed:777 () in
  run e3 "CREATE TABLE t (v DOUBLE)";
  run e3 "INSERT INTO t VALUES (RAND())";
  Alcotest.(check bool) "fresh draw differs" true (original <> qstr e3 "SELECT v FROM t")

let test_nondet_replay_auto_increment () =
  let e = fresh () in
  run e "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)";
  run e "INSERT INTO t (v) VALUES (1)";
  run e "INSERT INTO t (v) VALUES (2)";
  let entry2 = Log.entry (Engine.log e) 3 in
  (* replay only the second insert elsewhere: keeps its past key 2 *)
  let e2 = fresh () in
  run e2 "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)";
  ignore
    (Engine.exec ~nondet:entry2.Log.nondet e2
       (Uv_sql.Parser.parse_stmt "INSERT INTO t (v) VALUES (2)"));
  check Alcotest.int "past key reused" 2 (qint e2 "SELECT id FROM t WHERE v = 2")

let test_undo_records () =
  let e = with_users () in
  run e "UPDATE users SET age = 99 WHERE id = 1";
  let entry = Log.entry (Engine.log e) 3 in
  (* applying the undo restores the original age *)
  Log.apply_undo (Engine.catalog e) entry.Log.undo;
  check Alcotest.int "undone" 30 (qint e "SELECT age FROM users WHERE id = 1")

let test_undo_cell_precision () =
  (* a later blind write to a different column of the same row survives
     undoing an earlier update *)
  let e = with_users () in
  run e "UPDATE users SET age = 50 WHERE id = 1";
  run e "UPDATE users SET name = 'zed' WHERE id = 1";
  let age_update = Log.entry (Engine.log e) 3 in
  Log.apply_undo (Engine.catalog e) age_update.Log.undo;
  check Alcotest.int "age restored" 30 (qint e "SELECT age FROM users WHERE id = 1");
  check Alcotest.string "independent later write preserved" "zed"
    (qstr e "SELECT name FROM users WHERE id = 1")

let test_undo_ddl () =
  let e = with_users () in
  run e "DROP TABLE users";
  let entry = Log.entry (Engine.log e) 3 in
  Log.apply_undo (Engine.catalog e) entry.Log.undo;
  check Alcotest.int "table resurrected with rows" 3
    (qint e "SELECT COUNT(*) FROM users")

let test_snapshot_restore () =
  let e = with_users () in
  let snap = Engine.snapshot e in
  run e "DELETE FROM users";
  run e "DROP TABLE users";
  Engine.restore e snap;
  check Alcotest.int "restored" 3 (qint e "SELECT COUNT(*) FROM users")

let test_log_sizes () =
  let e = with_users () in
  let entry = Log.entry (Engine.log e) 2 in
  Alcotest.(check bool) "binlog bigger than uv log" true
    (Log.binlog_bytes entry > Log.uv_log_bytes entry);
  Alcotest.(check bool) "uv log small" true (Log.uv_log_bytes entry < 200)

let test_rtt_accounting () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT)";
  run e "INSERT INTO t VALUES (1)";
  run e "INSERT INTO t VALUES (2)";
  check (Alcotest.float 1e-9) "one rtt per statement" 3.0
    (Uv_util.Clock.simulated_ms (Engine.clock e))

let test_failed_statement_not_logged () =
  let e = with_users () in
  let before = Log.length (Engine.log e) in
  (match Engine.exec_sql e "INSERT INTO nosuch VALUES (1)" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "expected error");
  check Alcotest.int "log unchanged" before (Log.length (Engine.log e))

let test_in_subquery_membership () =
  let e = with_users () in
  run e "CREATE TABLE vips (uid INT)";
  run e "INSERT INTO vips VALUES (1), (3)";
  check Alcotest.int "IN literal list" 2
    (qint e "SELECT COUNT(*) FROM users WHERE id IN (1, 3)");
  check Alcotest.int "NOT IN" 1
    (qint e "SELECT COUNT(*) FROM users WHERE id NOT IN (1, 3)");
  (* IN over a subselect matches EVERY row of the result, not a scalar *)
  check Alcotest.int "IN subselect" 2
    (qint e "SELECT COUNT(*) FROM users WHERE id IN (SELECT uid FROM vips)");
  check Alcotest.int "NOT IN subselect" 1
    (qint e "SELECT COUNT(*) FROM users WHERE id NOT IN (SELECT uid FROM vips)");
  check Alcotest.int "IN empty subselect" 0
    (qint e "SELECT COUNT(*) FROM users WHERE id IN (SELECT uid FROM vips WHERE uid > 99)")

let test_correlated_subqueries () =
  let e = with_users () in
  run e "CREATE TABLE logins (uid INT, day INT)";
  run e "INSERT INTO logins VALUES (1, 5), (1, 6), (3, 7)";
  (* correlated EXISTS: the inner WHERE references the outer row *)
  check Alcotest.int "correlated EXISTS" 2
    (qint e
       "SELECT COUNT(*) FROM users WHERE EXISTS (SELECT 1 FROM logins WHERE \
        logins.uid = users.id)");
  check Alcotest.int "correlated NOT EXISTS" 1
    (qint e
       "SELECT COUNT(*) FROM users WHERE NOT EXISTS (SELECT 1 FROM logins \
        WHERE logins.uid = users.id)");
  (* correlated scalar subquery in the select list *)
  let r =
    Engine.query_sql e
      "SELECT (SELECT COUNT(*) FROM logins WHERE logins.uid = users.id) FROM \
       users WHERE id = 1"
  in
  check Alcotest.int "correlated scalar" 2 (Value.to_int (List.hd r.Engine.rows).(0))

let test_pk_and_not_null_constraints () =
  let e = fresh () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT NOT NULL)";
  run e "INSERT INTO t VALUES (1, 10)";
  let rejected sql =
    match Engine.exec_sql e sql with
    | exception Engine.Sql_error _ -> ()
    | _ -> Alcotest.failf "accepted %s" sql
  in
  rejected "INSERT INTO t VALUES (1, 20)";
  (* SQL-equality duplicates too: 1 vs 1.0 vs '1' *)
  rejected "INSERT INTO t VALUES (1.0, 20)";
  rejected "INSERT INTO t VALUES ('1', 20)";
  rejected "INSERT INTO t VALUES (2, NULL)";
  run e "INSERT INTO t VALUES (2, 20)";
  rejected "UPDATE t SET id = 1 WHERE id = 2";
  rejected "UPDATE t SET v = NULL WHERE id = 2";
  (* updating a row to its own key is not a duplicate *)
  run e "UPDATE t SET id = 2, v = 21 WHERE id = 2";
  check Alcotest.int "final rows" 2 (qint e "SELECT COUNT(*) FROM t");
  (* a failed insert inside a transaction aborts atomically *)
  (match
     Engine.exec_sql e
       "BEGIN; INSERT INTO t VALUES (3, 30); INSERT INTO t VALUES (1, 99); COMMIT"
   with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "transaction should abort");
  check Alcotest.int "atomic rollback" 2 (qint e "SELECT COUNT(*) FROM t");
  (* AUTO_INCREMENT keys never self-collide *)
  run e "CREATE TABLE a (id INT PRIMARY KEY AUTO_INCREMENT, x INT)";
  run e "INSERT INTO a (x) VALUES (1)";
  run e "INSERT INTO a (x) VALUES (2)";
  check Alcotest.int "auto rows" 2 (qint e "SELECT COUNT(*) FROM a");
  (* single-column UNIQUE: duplicates rejected, NULLs exempt *)
  run e "CREATE TABLE u (id INT PRIMARY KEY, email VARCHAR(32) UNIQUE)";
  run e "INSERT INTO u VALUES (1, 'a@x.com')";
  rejected "INSERT INTO u VALUES (2, 'a@x.com')";
  run e "INSERT INTO u VALUES (2, NULL)";
  run e "INSERT INTO u VALUES (3, NULL)";
  rejected "UPDATE u SET email = 'a@x.com' WHERE id = 2";
  run e "UPDATE u SET email = 'b@x.com' WHERE id = 1";
  check Alcotest.int "unique rows" 3 (qint e "SELECT COUNT(*) FROM u")

let test_insert_from_select () =
  let e = with_users () in
  run e "CREATE TABLE archive (id INT, name VARCHAR(16), age INT)";
  run e "INSERT INTO archive SELECT id, name, age FROM users WHERE age >= 30";
  check Alcotest.int "filtered rows copied" 2 (qint e "SELECT COUNT(*) FROM archive");
  (* expressions in the projection *)
  run e "CREATE TABLE ages (id INT, next_age INT)";
  run e "INSERT INTO ages SELECT id, age + 1 FROM users";
  check Alcotest.int "projection computed" 31
    (qint e "SELECT next_age FROM ages WHERE id = 1");
  (* the source snapshot is taken before writes: a self-insert must not
     observe its own new rows *)
  run e "INSERT INTO archive SELECT id, name, age FROM archive";
  check Alcotest.int "self-insert doubles once" 4
    (qint e "SELECT COUNT(*) FROM archive");
  (* aggregate source *)
  run e "CREATE TABLE stats (n INT, avg_age INT)";
  run e "INSERT INTO stats SELECT COUNT(*), AVG(age) FROM users";
  check Alcotest.int "aggregate row" 3 (qint e "SELECT n FROM stats");
  (* undo restores the pre-insert state *)
  let h = Engine.db_hash e in
  run e "INSERT INTO archive SELECT id, name, age FROM users";
  let log = Engine.log e in
  Log.apply_undo (Engine.catalog e) (Log.entry log (Log.length log)).Log.undo;
  check Alcotest.bool "undo removes the copied rows" true
    (Int64.equal h (Engine.db_hash e))

let test_having_and_distinct_aggregates () =
  let e = fresh () in
  run e "CREATE TABLE sales (region INT, amount INT)";
  run e "INSERT INTO sales VALUES (1, 10), (1, 20), (2, 5), (2, 5), (3, 1), (3, NULL)";
  (* HAVING filters groups after aggregation *)
  check Alcotest.int "having filters groups" 1
    (List.length
       (Engine.query_sql e
          "SELECT region, SUM(amount) FROM sales GROUP BY region HAVING SUM(amount) > 10")
         .Engine.rows);
  (* HAVING over a different aggregate than the projection *)
  check Alcotest.int "having on other aggregate" 3
    (List.length
       (Engine.query_sql e
          "SELECT region FROM sales GROUP BY region HAVING COUNT(*) >= 2")
         .Engine.rows);
  (* DISTINCT aggregates: duplicates collapse, NULLs are ignored *)
  check Alcotest.int "count distinct" 4
    (qint e "SELECT COUNT(DISTINCT amount) FROM sales");
  check Alcotest.int "sum distinct dedupes" 5
    (qint e "SELECT SUM(DISTINCT amount) FROM sales WHERE region = 2");
  check Alcotest.int "count distinct per group" 1
    (qint e
       "SELECT COUNT(DISTINCT amount) FROM sales WHERE region = 2 GROUP BY region");
  (* SQL-equality classes: 5 and 5.0 are one distinct value *)
  run e "INSERT INTO sales VALUES (2, 5.0)";
  check Alcotest.int "distinct across numeric types"
    (qint e "SELECT COUNT(DISTINCT amount) FROM sales WHERE region = 2")
    1

let test_rowcount_scalar () =
  let e = fresh () in
  run e "CREATE TABLE t (g INT, v INT)";
  run e "INSERT INTO t VALUES (1, 10), (1, 20), (2, 5), (3, 1)";
  check Alcotest.int "counts result rows" 3
    (qint e "SELECT ROWCOUNT((SELECT g FROM t GROUP BY g))");
  check Alcotest.int "respects having" 1
    (qint e "SELECT ROWCOUNT((SELECT g FROM t GROUP BY g HAVING COUNT(*) >= 2))");
  check Alcotest.int "empty result" 0
    (qint e "SELECT ROWCOUNT((SELECT g FROM t WHERE v > 999))")

let test_between_and_case () =
  let e = with_users () in
  check Alcotest.int "between" 2
    (qint e "SELECT COUNT(*) FROM users WHERE age BETWEEN 25 AND 30");
  check Alcotest.string "case lowering" "old"
    (let r =
       Engine.query_sql e
         "SELECT CASE WHEN age > 32 THEN 'old' ELSE 'young' END FROM users \
          WHERE id = 3"
     in
     Value.to_string (List.hd r.Engine.rows).(0))

let test_multi_row_update_order_independent () =
  (* hash equality regardless of which rows matched first *)
  let e = with_users () in
  run e "UPDATE users SET age = age * 2";
  check Alcotest.int "all updated" 3 (qint e "SELECT COUNT(*) FROM users WHERE age >= 50")

let test_view_reflects_base_changes () =
  let e = with_users () in
  run e "CREATE VIEW names AS SELECT name FROM users";
  check Alcotest.int "view row count" 3 (qint e "SELECT COUNT(*) FROM names");
  run e "INSERT INTO users VALUES (4, 'dave', 20)";
  check Alcotest.int "view sees new row" 4 (qint e "SELECT COUNT(*) FROM names")

let test_nested_procedure_calls () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT)";
  run e "CREATE PROCEDURE inner_p(IN x INT) BEGIN INSERT INTO t VALUES (x); END";
  run e
    "CREATE PROCEDURE outer_p(IN n INT) BEGIN DECLARE i INT DEFAULT 0; WHILE \
     i < n DO CALL inner_p(i); SET i = i + 1; END WHILE; END";
  run e "CALL outer_p(4)";
  check Alcotest.int "nested calls" 4 (qint e "SELECT COUNT(*) FROM t")

let test_trigger_on_delete_and_update () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT)";
  run e "CREATE TABLE audit (kind VARCHAR(8), old_a INT)";
  run e
    "CREATE TRIGGER td BEFORE DELETE ON t FOR EACH ROW BEGIN INSERT INTO \
     audit VALUES ('del', OLD.a); END";
  run e
    "CREATE TRIGGER tu AFTER UPDATE ON t FOR EACH ROW BEGIN INSERT INTO \
     audit VALUES ('upd', OLD.a); END";
  run e "INSERT INTO t VALUES (1)";
  run e "UPDATE t SET a = 2 WHERE a = 1";
  run e "DELETE FROM t WHERE a = 2";
  check Alcotest.int "update trigger saw old value" 1
    (qint e "SELECT old_a FROM audit WHERE kind = 'upd'");
  check Alcotest.int "delete trigger saw old value" 2
    (qint e "SELECT old_a FROM audit WHERE kind = 'del'")

let test_enforce_fk () =
  let e = Engine.create ~enforce_fk:true () in
  run e "CREATE TABLE parent (id INT PRIMARY KEY)";
  run e "CREATE TABLE child (pid INT REFERENCES parent(id))";
  run e "INSERT INTO parent VALUES (1)";
  run e "INSERT INTO child VALUES (1)";
  (match Engine.exec_sql e "INSERT INTO child VALUES (9)" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "fk violation should raise");
  check Alcotest.int "valid child kept" 1 (qint e "SELECT COUNT(*) FROM child")

let test_order_by_multiple_keys () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT, b INT)";
  run e "INSERT INTO t VALUES (1, 2), (1, 1), (0, 9)";
  let r = Engine.query_sql e "SELECT a, b FROM t ORDER BY a ASC, b DESC" in
  let pairs =
    List.map (fun row -> (Value.to_int row.(0), Value.to_int row.(1))) r.Engine.rows
  in
  check
    Alcotest.(list (pair int int))
    "multi-key order"
    [ (0, 9); (1, 2); (1, 1) ]
    pairs

let test_distinct () =
  let e = fresh () in
  run e "CREATE TABLE t (a INT, b INT)";
  run e "INSERT INTO t VALUES (1, 1), (1, 2), (2, 1), (1, 1)";
  check Alcotest.int "distinct single column" 2
    (List.length (Engine.query_sql e "SELECT DISTINCT a FROM t").Engine.rows);
  check Alcotest.int "distinct pair" 3
    (List.length (Engine.query_sql e "SELECT DISTINCT a, b FROM t").Engine.rows);
  check Alcotest.int "plain keeps duplicates" 4
    (List.length (Engine.query_sql e "SELECT a FROM t").Engine.rows)

(* ------------------------------------------------------------------ *)
(* Durable log (Log_io)                                                 *)
(* ------------------------------------------------------------------ *)

let test_log_io_roundtrip () =
  (* a history exercising nondet draws, app-txn tags and quoting *)
  let e = fresh () in
  run e "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v DOUBLE, s VARCHAR(32))";
  ignore (Engine.exec_sql ~app_txn:"txn:1" e "INSERT INTO t (v, s) VALUES (RAND(), 'it''s')");
  ignore (Engine.exec_sql ~app_txn:"txn:1" e "UPDATE t SET v = v * 2 WHERE id = 1");
  ignore (Engine.exec_sql e "INSERT INTO t (v, s) VALUES (NOW(), 'plain')");
  let text = Log_io.print (Log_io.records_of_log (Engine.log e)) in
  let back = Log_io.parse text in
  check Alcotest.int "record count" (Log.length (Engine.log e)) (List.length back);
  (* replay into a fresh engine: identical database and log length *)
  let e2 = fresh () in
  ignore (Log_io.replay e2 back : int list);
  check Alcotest.int "replayed log length" (Log.length (Engine.log e))
    (Log.length (Engine.log e2));
  check Alcotest.bool "identical db hash" true
    (Int64.equal (Engine.db_hash e) (Engine.db_hash e2));
  (* tags survive (record 1 is the untagged CREATE TABLE) *)
  let r = List.nth back 1 in
  check Alcotest.(option string) "tag" (Some "txn:1") r.Log_io.r_app_txn

let test_log_io_file_roundtrip () =
  let e = with_users () in
  run e "UPDATE users SET age = age + 1 WHERE id = 2";
  let path = Filename.temp_file "ulog" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Log_store.save_log_file (Engine.log e) ~path;
      let back = Log_store.load_log_file ~path in
      let e2 = fresh () in
      ignore (Log_io.replay e2 back : int list);
      check Alcotest.bool "identical db hash" true
        (Int64.equal (Engine.db_hash e) (Engine.db_hash e2)))

let test_log_io_corrupt () =
  let bad input =
    match Log_io.parse input with
    | exception Log_io.Corrupt _ -> ()
    | _ -> Alcotest.failf "accepted corrupt input %S" input
  in
  bad "";
  bad "NOTALOG\nQ SELECT 1\nE\n";
  bad "ULOGv1\nQ SELECT 1\n";
  (* truncated record *)
  bad "ULOGv1\nN I5\nE\n";
  (* value outside a record *)
  bad "ULOGv1\nQ SELECT 1\nN Zbogus\nE\n";
  (* unknown tag *)
  check Alcotest.int "empty log parses" 0 (List.length (Log_io.parse "ULOGv1\n"))

let prop_log_io_escape_roundtrip =
  qtest
    (QCheck.Test.make ~name:"log escaping round-trips any string" ~count:300
       QCheck.string (fun s ->
         let escaped = Log_io.escape s in
         (* escaped form must be newline-free (one record field per line) *)
         (not (String.contains escaped '\n'))
         && String.equal s (Log_io.unescape escaped)))

let prop_log_io_print_parse =
  qtest
    (QCheck.Test.make ~name:"log print/parse round-trips random records"
       ~count:100
       QCheck.(
         small_list
           (triple (printable_string_of_size Gen.(0 -- 40))
              (small_list (int_range (-1000) 1000))
              (option (printable_string_of_size Gen.(0 -- 10)))))
       (fun rows ->
         let records =
           List.map
             (fun (sql, draws, tag) ->
               {
                 Log_io.r_sql = sql;
                 r_nondet = List.map (fun i -> Value.Int i) draws;
                 r_app_txn = tag;
               })
             rows
         in
         Log_io.parse (Log_io.print records) = records))

(* ------------------------------------------------------------------ *)
(* Logical dump (Dump)                                                  *)
(* ------------------------------------------------------------------ *)

let build_rich_db () =
  let e = fresh () in
  run e "CREATE TABLE users (id INT PRIMARY KEY AUTO_INCREMENT, name VARCHAR(16), age INT)";
  run e "INSERT INTO users (name, age) VALUES ('alice', 30), ('bob', 25)";
  run e "CREATE TABLE audit (n INT)";
  run e "INSERT INTO audit VALUES (0)";
  run e "CREATE INDEX by_age ON users (age)";
  run e "CREATE VIEW adults AS SELECT name FROM users WHERE age >= 18";
  run e
    "CREATE PROCEDURE bump(IN uid INT) BEGIN UPDATE users SET age = age + 1      WHERE id = uid; END";
  run e
    "CREATE TRIGGER tg AFTER INSERT ON users FOR EACH ROW BEGIN UPDATE audit      SET n = n + 1; END";
  e

let all_table_hashes e =
  List.sort compare
    (List.map
       (fun (n, tbl) -> (n, Storage.hash tbl))
       (Catalog.tables (Engine.catalog e)))

let test_dump_roundtrip () =
  let e = build_rich_db () in
  let script = Dump.to_sql (Engine.catalog e) in
  (* determinism *)
  check Alcotest.string "dump is deterministic" script
    (Dump.to_sql (Engine.catalog e));
  let e2 = fresh () in
  Dump.restore e2 script;
  check
    Alcotest.(list (pair string int64))
    "identical tables" (all_table_hashes e) (all_table_hashes e2);
  (* catalog objects survive: view answers, procedure runs, trigger fires,
     auto counter continues past the dumped keys *)
  check Alcotest.int "view rows" 2 (qint e2 "SELECT COUNT(*) FROM adults");
  run e2 "CALL bump(1)";
  check Alcotest.int "procedure ran" 31 (qint e2 "SELECT age FROM users WHERE id = 1");
  check Alcotest.int "restore did not re-fire triggers" 0
    (qint e2 "SELECT n FROM audit");
  run e2 "INSERT INTO users (name, age) VALUES ('carol', 40)";
  check Alcotest.int "trigger fires on fresh insert" 1 (qint e2 "SELECT n FROM audit");
  check Alcotest.int "auto key continues" 3
    (qint e2 "SELECT id FROM users WHERE name = 'carol'")

let test_dump_checkpoint_plus_tail () =
  (* the recovery story: a dump is the checkpoint, the persisted statement
     log is the tail *)
  let e = build_rich_db () in
  let checkpoint = Dump.to_sql (Engine.catalog e) in
  Engine.reset_log e;
  run e "INSERT INTO users (name, age) VALUES ('dave', 20)";
  run e "CALL bump(2)";
  run e "DELETE FROM users WHERE id = 1";
  let tail = Log_io.records_of_log (Engine.log e) in
  let e2 = fresh () in
  Dump.restore e2 checkpoint;
  ignore (Log_io.replay e2 tail : int list);
  check
    Alcotest.(list (pair string int64))
    "checkpoint + tail equals original" (all_table_hashes e)
    (all_table_hashes e2)

let prop_dump_roundtrip =
  qtest
    (QCheck.Test.make ~name:"dump/restore preserves random databases" ~count:40
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let prng = Uv_util.Prng.create seed in
         let e = fresh () in
         run e "CREATE TABLE t (id INT PRIMARY KEY, s VARCHAR(32), f DOUBLE)";
         for i = 1 to 5 + Uv_util.Prng.int prng 20 do
           run e
             (Printf.sprintf "INSERT INTO t VALUES (%d, '%s', %d.%d)" i
                (String.init
                   (Uv_util.Prng.int prng 8)
                   (fun _ -> Char.chr (97 + Uv_util.Prng.int prng 26)))
                (Uv_util.Prng.int prng 100) (Uv_util.Prng.int prng 100))
         done;
         let e2 = fresh () in
         Dump.restore e2 (Dump.to_sql (Engine.catalog e));
         all_table_hashes e = all_table_hashes e2))

(* Property: random single-table history — undoing the whole log in
   reverse recovers the initial state hash. *)
let prop_full_undo_recovers_state =
  qtest
    (QCheck.Test.make ~name:"reverse undo of full history restores initial state"
       ~count:60
       QCheck.(int_range 0 10_000)
       (fun seed ->
         let e = fresh () in
         run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
         let prng = Uv_util.Prng.create seed in
         for i = 1 to 10 do
           ignore
             (Engine.exec_sql e
                (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i
                   (Uv_util.Prng.int prng 100)))
         done;
         let h0 = Engine.db_hash e in
         let start = Log.length (Engine.log e) in
         for _ = 1 to 15 do
           let k = 1 + Uv_util.Prng.int prng 10 in
           let sql =
             match Uv_util.Prng.int prng 3 with
             | 0 ->
                 Printf.sprintf "UPDATE t SET v = %d WHERE id = %d"
                   (Uv_util.Prng.int prng 100) k
             | 1 -> Printf.sprintf "DELETE FROM t WHERE id = %d" k
             | _ ->
                 Printf.sprintf "INSERT INTO t VALUES (%d, %d)" (100 + Uv_util.Prng.int prng 1000)
                   (Uv_util.Prng.int prng 100)
           in
           try run e sql with Engine.Sql_error _ -> ()
         done;
         (* undo everything after [start], newest first *)
         let log = Engine.log e in
         for i = Log.length log downto start + 1 do
           Log.apply_undo (Engine.catalog e) (Log.entry log i).Log.undo
         done;
         Int64.equal h0 (Engine.db_hash e)))

(* Property: the hash index is a sound superset — every row that
   SQL-equals the probe value is returned by the index lookup, across
   mixed value types (Int 5, Float 5.0, "5" all share a key). *)
let prop_index_superset =
  qtest
    (QCheck.Test.make ~name:"index lookup covers every SQL-equal row" ~count:150
       QCheck.(pair (small_list (int_range (-20) 20)) (int_range (-20) 20))
       (fun (stored, probe_i) ->
         let tbl =
           Storage.create
             (Schema.table "t"
                [ Schema.column ~primary_key:true "k" Value.Tint;
                  Schema.column "pos" Value.Tint ])
         in
         let variants i =
           match abs i mod 3 with
           | 0 -> Value.Int i
           | 1 -> Value.Float (float_of_int i)
           | _ -> Value.Text (string_of_int i)
         in
         List.iteri
           (fun pos i -> ignore (Storage.insert tbl [| variants i; Value.Int pos |]))
           stored;
         let probe = variants probe_i in
         match Storage.indexed_lookup tbl "k" probe with
         | None -> false (* pk is always indexed *)
         | Some ids ->
             Storage.fold tbl ~init:true ~f:(fun acc id row ->
                 acc
                 && (not (Value.equal_sql row.(0) probe) || List.mem id ids))))

(* Property: GROUP BY aggregation equals a hand-rolled fold. *)
let prop_group_by_sums =
  qtest
    (QCheck.Test.make ~name:"GROUP BY sums match manual aggregation" ~count:60
       QCheck.(small_list (pair (int_range 0 4) (int_range (-50) 50)))
       (fun rows ->
         let e = fresh () in
         run e "CREATE TABLE t (g INT, v INT)";
         List.iter
           (fun (g, v) ->
             run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" g v))
           rows;
         let r =
           Engine.query_sql e "SELECT g, SUM(v) FROM t GROUP BY g ORDER BY g ASC"
         in
         let got =
           List.map
             (fun row -> (Value.to_int row.(0), Value.to_int row.(1)))
             r.Engine.rows
         in
         let expected =
           List.sort_uniq compare (List.map fst rows)
           |> List.map (fun g ->
                  ( g,
                    List.fold_left
                      (fun acc (g', v) -> if g = g' then acc + v else acc)
                      0 rows ))
         in
         got = expected))

let () =
  Alcotest.run "uv_db"
    [
      ( "storage",
        [
          Alcotest.test_case "roundtrip" `Quick test_storage_roundtrip;
          Alcotest.test_case "hash tracks mutations" `Quick
            test_storage_hash_tracks_mutations;
          Alcotest.test_case "auto values" `Quick test_storage_auto_values;
          Alcotest.test_case "copy isolated" `Quick test_storage_copy_isolated;
          prop_columnar_matches_boxed_model;
        ] );
      ( "dml",
        [
          Alcotest.test_case "insert/select" `Quick test_insert_select;
          Alcotest.test_case "update/delete" `Quick test_update_delete;
          Alcotest.test_case "order/limit" `Quick test_select_order_limit;
          Alcotest.test_case "star projection" `Quick test_select_star_and_projection;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "subqueries" `Quick test_subquery;
          Alcotest.test_case "null semantics" `Quick test_null_semantics;
          Alcotest.test_case "builtins" `Quick test_builtin_functions;
        ] );
      ( "ddl",
        [
          Alcotest.test_case "alter table" `Quick test_alter_table;
          Alcotest.test_case "drop/truncate" `Quick test_drop_truncate;
          Alcotest.test_case "views" `Quick test_views;
          Alcotest.test_case "auto increment" `Quick test_auto_increment;
        ] );
      ( "procedural",
        [
          Alcotest.test_case "control flow" `Quick test_procedure_control_flow;
          Alcotest.test_case "leave/signal" `Quick test_procedure_leave_signal;
          Alcotest.test_case "select into" `Quick test_select_into_vars;
          Alcotest.test_case "triggers" `Quick test_triggers;
          Alcotest.test_case "transaction atomicity" `Quick test_transaction_atomic;
        ] );
      ( "log",
        [
          Alcotest.test_case "records" `Quick test_log_records;
          Alcotest.test_case "rand replay" `Quick test_nondet_replay_rand;
          Alcotest.test_case "auto-key replay" `Quick test_nondet_replay_auto_increment;
          Alcotest.test_case "undo" `Quick test_undo_records;
          Alcotest.test_case "cell-precise undo" `Quick test_undo_cell_precision;
          Alcotest.test_case "ddl undo" `Quick test_undo_ddl;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "log sizes" `Quick test_log_sizes;
          Alcotest.test_case "rtt accounting" `Quick test_rtt_accounting;
          Alcotest.test_case "failures not logged" `Quick
            test_failed_statement_not_logged;
          prop_full_undo_recovers_state;
        ] );
      ( "dump",
        [
          Alcotest.test_case "roundtrip + catalog objects" `Quick
            test_dump_roundtrip;
          Alcotest.test_case "checkpoint + tail recovery" `Quick
            test_dump_checkpoint_plus_tail;
          prop_dump_roundtrip;
        ] );
      ( "durable log",
        [
          Alcotest.test_case "print/parse/replay" `Quick test_log_io_roundtrip;
          Alcotest.test_case "file roundtrip" `Quick test_log_io_file_roundtrip;
          Alcotest.test_case "corrupt inputs" `Quick test_log_io_corrupt;
          prop_log_io_escape_roundtrip;
          prop_log_io_print_parse;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "in/not-in" `Quick test_in_subquery_membership;
          Alcotest.test_case "correlated subqueries" `Quick
            test_correlated_subqueries;
          Alcotest.test_case "pk/not-null constraints" `Quick
            test_pk_and_not_null_constraints;
          Alcotest.test_case "insert-select" `Quick test_insert_from_select;
          Alcotest.test_case "having/distinct aggregates" `Quick
            test_having_and_distinct_aggregates;
          Alcotest.test_case "rowcount scalar" `Quick test_rowcount_scalar;
          Alcotest.test_case "between/case" `Quick test_between_and_case;
          Alcotest.test_case "multi-row update" `Quick
            test_multi_row_update_order_independent;
          Alcotest.test_case "views track base" `Quick test_view_reflects_base_changes;
          Alcotest.test_case "nested procedures" `Quick test_nested_procedure_calls;
          Alcotest.test_case "delete/update triggers" `Quick
            test_trigger_on_delete_and_update;
          Alcotest.test_case "fk enforcement" `Quick test_enforce_fk;
          Alcotest.test_case "multi-key order" `Quick test_order_by_multiple_keys;
          Alcotest.test_case "distinct" `Quick test_distinct;
          prop_group_by_sums;
          prop_index_superset;
        ] );
    ]
