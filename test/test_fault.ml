(* Fault injection, crash-consistent recovery and graceful degradation.

   The contract under test (DESIGN.md §8): with any seeded fault
   schedule, a what-if run either ends bitwise-identical to the
   fault-free run (final database hash and new-universe log) or in a
   clean, reported abort — never in a torn state, never with an escaped
   exception — and the original engine is untouched either way. *)

open Uv_db
open Uv_retroactive
module F = Uv_fault.Fault
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let run e sql = ignore (Engine.exec_sql e sql)

(* ------------------------------------------------------------------ *)
(* The fault library itself                                             *)
(* ------------------------------------------------------------------ *)

let test_disabled_is_null () =
  check Alcotest.bool "disabled" false (F.enabled F.disabled);
  check Alcotest.bool "no injection" true
    (F.check F.disabled F.Site.engine_exec [ F.Stmt_fail ] = None);
  check Alcotest.int "nothing fired" 0 (List.length (F.fired F.disabled))

let test_seeded_deterministic () =
  let drive fault =
    List.map
      (fun key -> F.check ~key fault F.Site.worker [ F.Worker_crash; F.Slow ])
      [ 3; 1; 4; 1; 5; 9; 2; 6; 1; 3 ]
  in
  let a = drive (F.seeded ~worker_crash:0.5 ~slow:0.3 ~seed:99 ()) in
  let b = drive (F.seeded ~worker_crash:0.5 ~slow:0.3 ~seed:99 ()) in
  check Alcotest.bool "same seed, same probes => same decisions" true (a = b);
  check Alcotest.bool "something fired at p=0.8 over 10 probes" true
    (List.exists Option.is_some a);
  (* the decision is a function of (site, key, hit), not of probe order *)
  let shuffled =
    let f = F.seeded ~worker_crash:0.5 ~slow:0.3 ~seed:99 () in
    List.map
      (fun key -> (key, F.check ~key f F.Site.worker [ F.Worker_crash; F.Slow ]))
      [ 9; 5; 6; 2; 4; 3 ]
  in
  List.iter
    (fun (key, d) ->
      (* keys probed once in both orders must agree (hit = 1 for both) *)
      if List.mem key [ 4; 5; 9; 2; 6 ] then
        let original = List.nth a (if key = 4 then 2 else
                                   if key = 5 then 4 else
                                   if key = 9 then 5 else
                                   if key = 2 then 6 else 7) in
        check Alcotest.bool
          (Printf.sprintf "key %d schedule-independent" key)
          true
          (match (d, original) with
          | None, None -> true
          | Some x, Some y -> x.F.kind = y.F.kind
          | _ -> false))
    shuffled

let test_hits_are_independent () =
  (* retrying the same (site, key) draws a fresh decision: with p = 1.0
     every hit fires, and the hit counter advances *)
  let f = F.seeded ~stmt_fail:1.0 ~seed:7 () in
  let i1 = Option.get (F.check ~key:5 f F.Site.engine_exec [ F.Stmt_fail ]) in
  let i2 = Option.get (F.check ~key:5 f F.Site.engine_exec [ F.Stmt_fail ]) in
  check Alcotest.int "first hit" 1 i1.F.hit;
  check Alcotest.int "second hit" 2 i2.F.hit;
  check Alcotest.int "fired log" 2 (List.length (F.fired f))

let test_script_aims_precisely () =
  let f =
    F.script
      [ { F.site = F.Site.engine_exec; key = 2; hit = 1; kind = F.Stmt_fail; arg = 0.0 } ]
  in
  check Alcotest.bool "key 1 clean" true
    (F.check ~key:1 f F.Site.engine_exec [ F.Stmt_fail ] = None);
  check Alcotest.bool "key 2 hit 1 fires" true
    (F.check ~key:2 f F.Site.engine_exec [ F.Stmt_fail ] <> None);
  check Alcotest.bool "key 2 hit 2 clean (the retry succeeds)" true
    (F.check ~key:2 f F.Site.engine_exec [ F.Stmt_fail ] = None);
  check Alcotest.bool "wrong site never fires" true
    (F.check ~key:2 f F.Site.engine_commit [ F.Stmt_fail ] = None)

(* ------------------------------------------------------------------ *)
(* Engine: statement atomicity under injected faults                    *)
(* ------------------------------------------------------------------ *)

let setup_auto fault =
  let e = Engine.create ~fault () in
  run e
    "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)";
  Engine.set_sim_time e 100;
  e

let test_commit_fault_rolls_back_and_retries () =
  (* the fault fires after the statement executed, just before its log
     entry commits: the journal rollback must erase the row, restore the
     AUTO_INCREMENT counter, the PRNG and the clock — so the retry
     reenacts the statement exactly *)
  let fault =
    F.script
      [ { F.site = F.Site.engine_commit; key = 101; hit = 1;
          kind = F.Stmt_fail; arg = 0.0 } ]
  in
  let e = setup_auto fault in
  let clean = setup_auto F.disabled in
  let h0 = Engine.db_hash e in
  let log0 = Log.length (Engine.log e) in
  (match Engine.exec_sql e "INSERT INTO t (v) VALUES (RAND())" with
  | _ -> Alcotest.fail "expected the injected fault to escape"
  | exception F.Injected inj ->
      check Alcotest.string "site" F.Site.engine_commit inj.F.site);
  check Alcotest.int64 "rolled back bit-exact" h0 (Engine.db_hash e);
  check Alcotest.int "no log entry" log0 (Log.length (Engine.log e));
  (* retry on the faulted engine vs. first try on a clean engine *)
  run e "INSERT INTO t (v) VALUES (RAND())";
  run clean "INSERT INTO t (v) VALUES (RAND())";
  check Alcotest.int64 "retry reenacts exactly (hash)" (Engine.db_hash clean)
    (Engine.db_hash e);
  let entry eng = (Log.entry (Engine.log eng) 1).Log.nondet in
  check Alcotest.bool "retry reenacts exactly (draws)" true
    (entry e = entry clean)

let test_exec_fault_preserves_auto_counter () =
  let fault =
    F.script
      [ { F.site = F.Site.engine_exec; key = 101; hit = 1;
          kind = F.Stmt_fail; arg = 0.0 } ]
  in
  let e = setup_auto fault in
  (match Engine.exec_sql e "INSERT INTO t (v) VALUES (1)" with
  | _ -> Alcotest.fail "expected the injected fault to escape"
  | exception F.Injected _ -> ());
  run e "INSERT INTO t (v) VALUES (1)";
  match Engine.query_sql e "SELECT id FROM t" with
  | { Engine.rows = [ [| Uv_sql.Value.Int id |] ]; _ } ->
      check Alcotest.int "first key not burned by the failed insert" 1 id
  | _ -> Alcotest.fail "row missing"

let test_sql_error_context () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY)";
  match Engine.exec_sql e "INSERT INTO missing VALUES (1)" with
  | _ -> Alcotest.fail "expected Sql_error"
  | exception Engine.Sql_error msg ->
      check Alcotest.bool "message names the statement" true
        (let has needle =
           let n = String.length needle and m = String.length msg in
           let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
           go 0
         in
         has "at log index 2" && has "INSERT INTO missing")

(* ------------------------------------------------------------------ *)
(* Dump: AUTO_INCREMENT counters survive the round trip                 *)
(* ------------------------------------------------------------------ *)

let test_dump_roundtrips_highest_key_deleted () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)";
  run e "INSERT INTO t (v) VALUES (10)";
  run e "INSERT INTO t (v) VALUES (20)";
  run e "INSERT INTO t (v) VALUES (30)";
  run e "DELETE FROM t WHERE id = 3";
  let restored = Engine.create () in
  Dump.restore restored (Dump.to_sql (Engine.catalog e));
  check Alcotest.int64 "rows round-trip" (Engine.db_hash e)
    (Engine.db_hash restored);
  (* both databases must now hand out the same fresh key — 4, not 3 *)
  run e "INSERT INTO t (v) VALUES (40)";
  run restored "INSERT INTO t (v) VALUES (40)";
  check Alcotest.int64 "counter round-trips past a deleted max key"
    (Engine.db_hash e) (Engine.db_hash restored);
  match Engine.query_sql restored "SELECT id FROM t WHERE v = 40" with
  | { Engine.rows = [ [| Uv_sql.Value.Int id |] ]; _ } ->
      check Alcotest.int "fresh key skips the deleted one" 4 id
  | _ -> Alcotest.fail "row missing"

(* ------------------------------------------------------------------ *)
(* ULOGv2: corruption, truncation, torn writes                          *)
(* ------------------------------------------------------------------ *)

let nasty_history e =
  run e "CREATE TABLE notes (id INT PRIMARY KEY AUTO_INCREMENT, s TEXT)";
  run e "INSERT INTO notes (s) VALUES ('line\\nbreak and back\\\\slash')";
  run e "INSERT INTO notes (s) VALUES ('plain')";
  ignore
    (Engine.exec ~app_txn:"txn:9" e
       (Uv_sql.Parser.parse_stmt "INSERT INTO notes (s) VALUES (RAND())"));
  run e "UPDATE notes SET s = 'x' WHERE id = 2"

let test_truncate_every_byte () =
  let e = Engine.create () in
  nasty_history e;
  let full = Log_io.records_of_log (Engine.log e) in
  let text = Log_io.print full in
  let n = String.length text in
  for i = 0 to n do
    let cut = String.sub text 0 i in
    (* salvage never raises and always returns a valid record prefix *)
    let records, diag = Log_io.salvage cut in
    let k = List.length records in
    check Alcotest.int
      (Printf.sprintf "cut at %d: diagnosis counts the records" i)
      k diag.Log_io.valid_records;
    check Alcotest.bool
      (Printf.sprintf "cut at %d: salvaged records are a prefix" i)
      true
      (k <= List.length full
      && List.for_all2
           (fun a b -> a = b)
           records
           (List.filteri (fun j _ -> j < k) full));
    (* parse agrees with the diagnosis: clean prefix parses, damage raises *)
    match diag.Log_io.cut_at with
    | None ->
        check Alcotest.bool
          (Printf.sprintf "cut at %d: clean file parses" i)
          true
          (Log_io.parse cut = records)
    | Some off -> (
        check Alcotest.bool
          (Printf.sprintf "cut at %d: cut offset within the file" i)
          true
          (off <= i);
        match Log_io.parse cut with
        | _ -> Alcotest.fail "damaged text must not parse"
        | exception Log_io.Corrupt _ -> ())
  done;
  check Alcotest.bool "the full file is clean" true
    ((snd (Log_io.salvage text)).Log_io.cut_at = None)

let test_bitflip_detected () =
  let e = Engine.create () in
  nasty_history e;
  let text = Log_io.print (Log_io.records_of_log (Engine.log e)) in
  (* flip one content byte inside the second record's Q line *)
  let q2 =
    let first = String.index_from text (String.index text 'Q') '\n' in
    String.index_from text (first + 1) 'Q'
  in
  let flipped = Bytes.of_string text in
  Bytes.set flipped (q2 + 3) (Char.chr (Char.code (Bytes.get flipped (q2 + 3)) lxor 1));
  let records, diag = Log_io.salvage (Bytes.to_string flipped) in
  check Alcotest.bool "scan stops at the flipped record" true
    (diag.Log_io.cut_at <> None);
  check Alcotest.bool "prefix before the flip survives" true
    (List.length records < 4);
  match Log_io.parse (Bytes.to_string flipped) with
  | _ -> Alcotest.fail "bit flip must not parse"
  | exception Log_io.Corrupt msg ->
      check Alcotest.bool "reason mentions the checksum" true
        (let n = String.length msg in
         let rec go i = i + 8 <= n && (String.sub msg i 8 = "checksum" || go (i + 1)) in
         go 0)

let test_v1_still_parses () =
  let v1 = "ULOGv1\nQ INSERT INTO t VALUES (1)\nE\nQ SELECT 1\nA tag\nE\n" in
  let records = Log_io.parse v1 in
  check Alcotest.int "two records" 2 (List.length records);
  check Alcotest.bool "tag survives" true
    ((List.nth records 1).Log_io.r_app_txn = Some "tag")

let test_torn_save_keeps_old_file () =
  let path = Filename.temp_file "uv_fault" ".ulog" in
  Fun.protect ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
  @@ fun () ->
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY)";
  run e "INSERT INTO t VALUES (1)";
  Log_store.save_log_file (Engine.log e) ~path;
  let before = Log_store.load_log_file ~path in
  run e "INSERT INTO t VALUES (2)";
  (* every save attempt tears (p = 1.0): the temp file gets a prefix,
     the rename never happens, the previous good log survives *)
  let fault = F.seeded ~torn_write:1.0 ~seed:3 () in
  (match Log_store.save_log_file ~fault (Engine.log e) ~path with
  | () -> Alcotest.fail "expected the torn write to escape"
  | exception F.Injected inj ->
      check Alcotest.string "site" F.Site.log_save inj.F.site);
  check Alcotest.bool "previous log intact" true
    (Log_store.load_log_file ~path = before);
  (* and the torn temp file itself salvages without raising *)
  if Sys.file_exists (path ^ ".tmp") then
    ignore (Log_store.salvage_log_file ~path:(path ^ ".tmp"))

let test_replay_reports_skips () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY)";
  run e "INSERT INTO t VALUES (1)";
  let records = Log_io.records_of_log (Engine.log e) in
  (* replaying only the tail (as if the CREATE lived in a checkpoint)
     on an empty database: the INSERT cannot apply and must be reported,
     not raised *)
  let tail = [ List.nth records 1 ] in
  let fresh = Engine.create () in
  let skipped = Log_io.replay fresh tail in
  check Alcotest.(list int) "skip indices are 1-based" [ 1 ] skipped;
  (* the full log replays cleanly *)
  let fresh2 = Engine.create () in
  check Alcotest.(list int) "full log has no skips" []
    (Log_io.replay fresh2 records);
  check Alcotest.int64 "faithful replay" (Engine.db_hash e)
    (Engine.db_hash fresh2)

(* ------------------------------------------------------------------ *)
(* UCKPv1: checkpoint-ladder persistence                                *)
(* ------------------------------------------------------------------ *)

let laddered_engine () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  Engine.reset_log e;
  Engine.enable_checkpoints e ~every:4;
  for i = 1 to 20 do
    run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 10))
  done;
  (e, Option.get (Engine.checkpoints e))

let with_temp f =
  let path = Filename.temp_file "uv_fault" ".uckp" in
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists path then Sys.remove path;
      if Sys.file_exists (path ^ ".tmp") then Sys.remove (path ^ ".tmp"))
    (fun () -> f path)

let test_uckp_roundtrip () =
  let _, ladder = laddered_engine () in
  with_temp @@ fun path ->
  Log_store.save_checkpoints_file ladder ~path;
  let rungs = Log_store.load_checkpoints_file ~path in
  check Alcotest.int "every rung round-trips" (Checkpoint.count ladder)
    (List.length rungs);
  (* each restored catalog is bit-identical to re-restoring the live
     rung's SQL dump *)
  List.iter
    (fun (at, cat) ->
      match Checkpoint.nearest ladder at with
      | Some (at', live) when at' = at ->
          let a = Engine.create () and b = Engine.create () in
          Dump.restore a (Dump.to_sql cat);
          Dump.restore b (Dump.to_sql live);
          check Alcotest.int64
            (Printf.sprintf "rung at commit %d restores bit-exact" at)
            (Engine.db_hash b) (Engine.db_hash a)
      | _ -> Alcotest.failf "rung at commit %d missing from the ladder" at)
    rungs

let test_uckp_torn_save_keeps_old_file () =
  let _, ladder = laddered_engine () in
  with_temp @@ fun path ->
  Log_store.save_checkpoints_file ladder ~path;
  let before = Log_store.load_checkpoints_file ~path in
  let fault = F.seeded ~torn_write:1.0 ~seed:5 () in
  (match Log_store.save_checkpoints_file ~fault ladder ~path with
  | () -> Alcotest.fail "expected the torn write to escape"
  | exception F.Injected inj ->
      check Alcotest.string "site" F.Site.checkpoint_save inj.F.site);
  check Alcotest.int "previous ladder file intact" (List.length before)
    (List.length (Log_store.load_checkpoints_file ~path))

let test_uckp_bitflip_rejected () =
  let _, ladder = laddered_engine () in
  with_temp @@ fun path ->
  Log_store.save_checkpoints_file ladder ~path;
  let text =
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  (* flip one payload byte: the per-rung CRC must catch it *)
  let flipped = Bytes.of_string text in
  let mid = String.length text / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 1));
  let oc = open_out_bin path in
  output_bytes oc flipped;
  close_out oc;
  (match Log_store.load_checkpoints_file ~path with
  | _ -> Alcotest.fail "a flipped byte must not load"
  | exception Log_store.Error _ -> ());
  (* and truncation at any point is Corrupt, never an escape or a torn
     partial ladder *)
  for cut = 0 to String.length text - 1 do
    let oc = open_out_bin path in
    output_string oc (String.sub text 0 cut);
    close_out oc;
    match Log_store.load_checkpoints_file ~path with
    | rungs ->
        if cut < String.length text then
          Alcotest.failf "cut at %d silently loaded %d rungs" cut
            (List.length rungs)
    | exception Log_store.Error _ -> ()
  done

(* ------------------------------------------------------------------ *)
(* Whatif: deadline and degradation                                     *)
(* ------------------------------------------------------------------ *)

let small_history () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  let base = Engine.snapshot e in
  Engine.reset_log e;
  for i = 1 to 12 do
    run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 10))
  done;
  (e, base)

let test_deadline_aborts_cleanly () =
  let e, base = small_history () in
  let pristine = Engine.db_hash e in
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  let config = Whatif.Config.make ~deadline_ms:0.0 () in
  (match Whatif.run ~config ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove } with
  | Ok _ -> Alcotest.fail "a 0 ms budget cannot finish"
  | Error err ->
      check Alcotest.string "code" "deadline" (Whatif.Error.code_name err.Whatif.Error.code));
  check Alcotest.int64 "original engine untouched" pristine (Engine.db_hash e);
  (* and run_exn surfaces the same abort as the documented exception *)
  match Whatif.run_exn ~config ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove } with
  | _ -> Alcotest.fail "run_exn must raise on abort"
  | exception Whatif.Abort err ->
      check Alcotest.string "exception code" "deadline"
        (Whatif.Error.code_name err.Whatif.Error.code)

let test_certain_crash_degrades () =
  (* a history whose replay set is non-empty: every update reads and
     writes the row the removed insert created, so removal drags them
     all in and the executor actually runs waves *)
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  let base = Engine.snapshot e in
  Engine.reset_log e;
  run e "INSERT INTO t VALUES (1, 10)";
  for i = 1 to 8 do
    run e (Printf.sprintf "UPDATE t SET v = v + %d WHERE id = 1" i)
  done;
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  let baseline =
    Whatif.run_exn ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  (* every worker probe kills its lane and every wave probe reports a
     dead domain: the run must degrade to the caller lane, not die *)
  let fault = F.seeded ~worker_crash:1.0 ~seed:11 () in
  let config = Whatif.Config.make ~workers:4 ~fault () in
  match Whatif.run ~config ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove } with
  | Error err -> Alcotest.fail ("unexpected abort: " ^ Whatif.Error.to_string err)
  | Ok out ->
      check Alcotest.bool "degraded" true out.Whatif.degraded;
      check Alcotest.int64 "degraded run is bitwise-identical"
        baseline.Whatif.final_db_hash out.Whatif.final_db_hash

(* ------------------------------------------------------------------ *)
(* Chaos harness: seeded schedules across the five workloads            *)
(* ------------------------------------------------------------------ *)

let log_digest log =
  let buf = Buffer.create 4096 in
  Log.iter log (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%s|%s|%d|%s|%s\n" e.Log.index e.Log.sql
           (String.concat ","
              (List.map Uv_sql.Value.to_string e.Log.nondet))
           e.Log.rows_written
           (String.concat ","
              (List.map
                 (fun (t, h) -> Printf.sprintf "%s=%Lx" t h)
                 e.Log.written_hashes))
           (Option.value e.Log.app_txn ~default:"-")));
  Buffer.contents buf

let seeds_per_workload = 40

(* [checkpoint_every > 0] runs the same schedules with a checkpoint
   ladder attached (recorded while the history commits, exactly as a
   live deployment would): rung recording, skip-on-fault accounting and
   the rollback phase's jump-vs-undo decision all run under fire, and
   every outcome must still be bitwise-identical to the fault-free run.
   The target then sits late in the history so the jump gate is live. *)
let test_chaos ?(checkpoint_every = 0) ?(seeds = seeds_per_workload) (w : W.t)
    () =
  let eng, rt = W.setup ~mode:R.Transpiled w in
  let base = Engine.snapshot eng in
  if checkpoint_every > 0 then
    Engine.enable_checkpoints eng ~every:checkpoint_every;
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n:24 ~dep_rate:0.3 in
  ignore (W.run_history rt ~mode:R.Transpiled calls);
  let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
  let target =
    if checkpoint_every > 0 then
      { Analyzer.tau = max 1 (Log.length (Engine.log eng) - 8);
        op = Analyzer.Remove }
    else { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  let pristine = Engine.db_hash eng in
  let pristine_log = log_digest (Engine.log eng) in
  let baseline = Whatif.run_exn ~analyzer eng target in
  let want_hash = baseline.Whatif.final_db_hash in
  let want_log = log_digest baseline.Whatif.new_log in
  let oks = ref 0 and aborts = ref 0 in
  for seed = 1 to seeds do
    let fault =
      F.seeded ~stmt_fail:0.03 ~worker_crash:0.05 ~slow:0.02 ~seed ()
    in
    (* a quarter of the schedules also exercise the serial replay path *)
    let config =
      if seed mod 4 = 0 then
        Whatif.Config.make ~parallel_exec:false ~fault ()
      else Whatif.Config.make ~workers:4 ~fault ()
    in
    (match Whatif.run ~config ~analyzer eng target with
    | Ok out ->
        incr oks;
        check Alcotest.int64
          (Printf.sprintf "%s seed %d: hash == fault-free run" w.W.name seed)
          want_hash out.Whatif.final_db_hash;
        check Alcotest.string
          (Printf.sprintf "%s seed %d: log == fault-free run" w.W.name seed)
          want_log
          (log_digest out.Whatif.new_log)
    | Error err ->
        incr aborts;
        check Alcotest.bool
          (Printf.sprintf "%s seed %d: abort is typed" w.W.name seed)
          true
          (match err.Whatif.Error.code with
          | Whatif.Error.Fault | Whatif.Error.Deadline -> true
          | Whatif.Error.Internal -> false));
    check Alcotest.int64
      (Printf.sprintf "%s seed %d: original engine untouched" w.W.name seed)
      pristine (Engine.db_hash eng);
    check Alcotest.string
      (Printf.sprintf "%s seed %d: original log untouched" w.W.name seed)
      pristine_log
      (log_digest (Engine.log eng))
  done;
  (* the schedule rates are mild: most runs must survive via retry and
     degradation rather than abort *)
  check Alcotest.bool
    (Printf.sprintf "%s: recovery works more often than not (%d ok, %d aborted)"
       w.W.name !oks !aborts)
    true
    (!oks > !aborts)

(* ------------------------------------------------------------------ *)
(* Escape/unescape properties                                           *)
(* ------------------------------------------------------------------ *)

let prop_escape_roundtrip =
  QCheck.Test.make ~count:500 ~name:"escape/unescape round-trip"
    QCheck.string (fun s -> Log_io.unescape (Log_io.escape s) = s)

let prop_escape_single_line =
  QCheck.Test.make ~count:500 ~name:"escaped text is newline-free"
    QCheck.string (fun s ->
      let e = Log_io.escape s in
      not (String.contains e '\n') && not (String.contains e '\r'))

let prop_salvage_never_raises =
  QCheck.Test.make ~count:500 ~name:"salvage total on arbitrary bytes"
    QCheck.string (fun s ->
      let records, diag = Log_io.salvage s in
      List.length records = diag.Log_io.valid_records)

let () =
  Alcotest.run "uv_fault"
    ([
       ( "library",
         [
           Alcotest.test_case "disabled is null" `Quick test_disabled_is_null;
           Alcotest.test_case "seeded is deterministic" `Quick
             test_seeded_deterministic;
           Alcotest.test_case "hits are independent" `Quick
             test_hits_are_independent;
           Alcotest.test_case "script aims precisely" `Quick
             test_script_aims_precisely;
         ] );
       ( "engine",
         [
           Alcotest.test_case "commit fault rolls back & retries" `Quick
             test_commit_fault_rolls_back_and_retries;
           Alcotest.test_case "exec fault preserves auto counter" `Quick
             test_exec_fault_preserves_auto_counter;
           Alcotest.test_case "Sql_error carries context" `Quick
             test_sql_error_context;
         ] );
       ( "dump",
         [
           Alcotest.test_case "auto counter round-trips" `Quick
             test_dump_roundtrips_highest_key_deleted;
         ] );
       ( "ulog",
         [
           Alcotest.test_case "truncate at every byte" `Slow
             test_truncate_every_byte;
           Alcotest.test_case "bit flip detected" `Quick test_bitflip_detected;
           Alcotest.test_case "v1 still parses" `Quick test_v1_still_parses;
           Alcotest.test_case "torn save keeps old file" `Quick
             test_torn_save_keeps_old_file;
           Alcotest.test_case "replay reports skips" `Quick
             test_replay_reports_skips;
         ] );
       ( "uckp",
         [
           Alcotest.test_case "ladder round-trips" `Quick test_uckp_roundtrip;
           Alcotest.test_case "torn save keeps old file" `Quick
             test_uckp_torn_save_keeps_old_file;
           Alcotest.test_case "bit flip & truncation rejected" `Quick
             test_uckp_bitflip_rejected;
         ] );
       ( "whatif",
         [
           Alcotest.test_case "deadline aborts cleanly" `Quick
             test_deadline_aborts_cleanly;
           Alcotest.test_case "certain crash degrades" `Quick
             test_certain_crash_degrades;
         ] );
       ( "properties",
         List.map QCheck_alcotest.to_alcotest
           [
             prop_escape_roundtrip;
             prop_escape_single_line;
             prop_salvage_never_raises;
           ] );
     ]
    @ List.map
        (fun (w : W.t) ->
          ( "chaos: " ^ w.W.name,
            [
              Alcotest.test_case
                (Printf.sprintf "%d seeded schedules" seeds_per_workload)
                `Slow (test_chaos w);
              Alcotest.test_case "20 schedules, checkpoint ladder" `Slow
                (test_chaos ~checkpoint_every:8 ~seeds:20 w);
            ] ))
        (W.all ()))
