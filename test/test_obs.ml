(* Tests for ultraverse.obs: the JSON tree, the versioned report envelope,
   the tracing/metrics collector (null sink, span nesting, multi-domain
   lanes, exporter validity), and an end-to-end traced what-if run. *)

open Uv_obs

let check = Alcotest.check

let json = Alcotest.testable (Fmt.of_to_string Json.to_string) ( = )

(* ------------------------------------------------------------------ *)
(* Json                                                                 *)
(* ------------------------------------------------------------------ *)

let sample =
  Json.Obj
    [
      ("null", Json.Null);
      ("t", Json.Bool true);
      ("f", Json.Bool false);
      ("int", Json.Int (-42));
      ("float", Json.Float 1.5);
      ("str", Json.Str "a \"quoted\"\nline\twith \\ specials");
      ("empty_list", Json.List []);
      ("empty_obj", Json.Obj []);
      ( "nested",
        Json.List [ Json.Int 1; Json.Obj [ ("k", Json.Str "v") ]; Json.Null ] );
    ]

let parse_ok s =
  match Json.parse s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_roundtrip () =
  check json "compact round-trip" sample (parse_ok (Json.to_string sample));
  check json "pretty round-trip" sample (parse_ok (Json.pretty sample))

let test_json_escapes () =
  check json "\\u escape" (Json.Str "A") (parse_ok {|"A"|});
  check json "surrogate pair" (Json.Str "\xf0\x9f\x90\xab")
    (parse_ok {|"🐫"|});
  (* control characters must be escaped on output and re-parse *)
  let s = Json.Str "\x01\x02" in
  check json "control chars" s (parse_ok (Json.to_string s))

let test_json_numbers () =
  check json "int" (Json.Int 17) (parse_ok "17");
  check json "negative" (Json.Int (-3)) (parse_ok "-3");
  (match parse_ok "2.5" with
  | Json.Float f -> check (Alcotest.float 1e-12) "float" 2.5 f
  | j -> Alcotest.failf "expected float, got %s" (Json.to_string j));
  match parse_ok "1e3" with
  | Json.Float f -> check (Alcotest.float 1e-9) "exponent" 1000.0 f
  | j -> Alcotest.failf "expected float, got %s" (Json.to_string j)

(* network-grade parser hardening: byte/depth/string budgets with byte
   offsets in every diagnostic, and fuzz-style mutations that must never
   escape the (t, string) result type *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let tiny ?(max_bytes = 1 lsl 20) ?(max_depth = 512) ?(max_string = 1 lsl 20) ()
    =
  { Json.max_bytes; max_depth; max_string }

let test_json_limit_bytes () =
  let doc = Json.to_string sample in
  (match Json.parse ~limits:(tiny ~max_bytes:8 ()) doc with
  | Ok _ -> Alcotest.fail "oversized input accepted"
  | Error e -> Alcotest.(check bool) ("mentions budget: " ^ e) true (contains e "exceeds"));
  match Json.parse ~limits:(tiny ~max_bytes:String.(length doc) ()) doc with
  | Ok j -> check json "at the byte budget parses" sample j
  | Error e -> Alcotest.failf "rejected at exact budget: %s" e

let test_json_limit_depth () =
  let nested n = String.make n '[' ^ "1" ^ String.make n ']' in
  (match Json.parse ~limits:(tiny ~max_depth:16 ()) (nested 40) with
  | Ok _ -> Alcotest.fail "40-deep accepted with depth budget 16"
  | Error e ->
      Alcotest.(check bool) ("mentions nesting: " ^ e) true (contains e "nesting"));
  (match Json.parse ~limits:(tiny ~max_depth:16 ()) (nested 10) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "10-deep rejected: %s" e);
  (* the default budget guards the stack too: a pathological document
     errors instead of overflowing *)
  match Json.parse (nested 100_000) with
  | Ok _ -> Alcotest.fail "100k-deep accepted"
  | Error _ -> ()

let test_json_limit_string () =
  let doc = {|{"k":"|} ^ String.make 100 'a' ^ {|"}|} in
  (match Json.parse ~limits:(tiny ~max_string:32 ()) doc with
  | Ok _ -> Alcotest.fail "long string accepted"
  | Error e ->
      Alcotest.(check bool) ("mentions string: " ^ e) true (contains e "string"));
  match Json.parse ~limits:(tiny ~max_string:100 ()) doc with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "string at budget rejected: %s" e

let test_json_error_offsets () =
  (* every diagnostic carries the byte offset of the failure *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok j -> Alcotest.failf "accepted %S as %s" s (Json.to_string j)
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "%S error has offset: %s" s e)
            true (contains e "at byte"))
    [ "[1,x]"; "{\"a\" 1}"; "tru"; "\"unterminated"; "[1, {\"k\": ]}" ]

let test_json_fuzz_negatives () =
  (* mutation fuzzing: truncations and byte flips of a valid document
     must always come back as Ok/Error — never an exception — and
     accepted mutants must re-serialize losslessly *)
  let base = Json.to_string sample in
  let prng = Uv_util.Prng.create 0xBEEF in
  let try_parse s =
    match Json.parse ~limits:(tiny ()) s with
    | Ok j -> check json "accepted mutant round-trips" j (parse_ok (Json.to_string j))
    | Error _ -> ()
    | exception e ->
        Alcotest.failf "parser raised %s on %S" (Printexc.to_string e) s
  in
  for len = 0 to String.length base - 1 do
    try_parse (String.sub base 0 len)
  done;
  for _ = 1 to 2_000 do
    let b = Bytes.of_string base in
    for _ = 0 to Uv_util.Prng.int prng 3 do
      Bytes.set b
        (Uv_util.Prng.int prng (Bytes.length b))
        (Char.chr (Uv_util.Prng.int prng 256))
    done;
    try_parse (Bytes.to_string b)
  done

let test_json_errors () =
  let bad s =
    match Json.parse s with
    | Ok j -> Alcotest.failf "accepted %S as %s" s (Json.to_string j)
    | Error _ -> ()
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "nul";
  bad "\"unterminated";
  bad "\"ctrl \x01 char\"";
  bad "{} trailing";
  bad "'single'"

let test_json_accessors () =
  check (Alcotest.option json) "member hit" (Some (Json.Int (-42)))
    (Json.member "int" sample);
  check (Alcotest.option json) "member miss" None (Json.member "nope" sample);
  check (Alcotest.option json) "member on non-obj" None
    (Json.member "x" (Json.Int 1));
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "to_float int" (Some 3.0)
    (Json.to_float (Json.Int 3));
  check
    (Alcotest.option (Alcotest.float 1e-9))
    "to_float str" None
    (Json.to_float (Json.Str "3"))

(* ------------------------------------------------------------------ *)
(* Report                                                               *)
(* ------------------------------------------------------------------ *)

let test_report_roundtrip () =
  let payload = Json.Obj [ ("answer", Json.Int 42) ] in
  let s = Report.to_string ~schema:"uv.metrics/1" payload in
  (match Report.parse s with
  | Ok p -> check json "payload preserved" payload p
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Report.parse ~expect:"uv.metrics/1" s with
  | Ok p -> check json "expect match" payload p
  | Error e -> Alcotest.failf "expect parse failed: %s" e

let test_report_envelope_fields () =
  let j = Report.envelope ~schema:"uv.whatif/1" Json.Null in
  check (Alcotest.option json) "schema" (Some (Json.Str "uv.whatif/1"))
    (Json.member "schema" j);
  check (Alcotest.option json) "tool" (Some (Json.Str "ultraverse"))
    (Json.member "tool" j);
  check (Alcotest.option json) "version"
    (Some (Json.Str Report.version))
    (Json.member "version" j)

let test_report_rejects_unknown_schema () =
  (match Report.envelope ~schema:"uv.bogus/9" Json.Null with
  | _ -> Alcotest.fail "emitted an unregistered schema"
  | exception Invalid_argument _ -> ());
  (* a syntactically perfect envelope with an unregistered schema must not
     round-trip either *)
  let forged =
    Json.to_string
      (Json.Obj
         [
           ("schema", Json.Str "uv.bogus/9");
           ("tool", Json.Str "ultraverse");
           ("version", Json.Str Report.version);
           ("payload", Json.Obj []);
         ])
  in
  match Report.parse forged with
  | Ok _ -> Alcotest.fail "parsed an unregistered schema"
  | Error _ -> ()

let test_report_rejects_malformed () =
  let reject s =
    match Report.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  reject "not json at all";
  reject "{}";
  reject {|{"schema":"uv.lint/1","tool":"ultraverse","version":"0"}|};
  reject {|{"schema":"uv.lint/1","tool":"other","version":"0","payload":{}}|};
  reject {|{"schema":"uv.lint/1","version":"0","payload":{}}|};
  (* expect mismatch between two registered schemas *)
  let s = Report.to_string ~schema:"uv.lint/1" (Json.Obj []) in
  match Report.parse ~expect:"uv.whatif/1" s with
  | Ok _ -> Alcotest.fail "expect mismatch accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Trace: null sink                                                     *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_noop () =
  let t = Trace.disabled in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  let sp = Trace.start t "x" in
  Trace.finish t sp;
  Trace.incr t "c";
  Trace.incr t ~by:100 "c";
  Trace.observe t "h" 1.0;
  Trace.instant t "i";
  check Alcotest.int "counter stays 0" 0 (Trace.counter_value t "c");
  check Alcotest.int "with_span passes value" 7 (Trace.with_span t "s" (fun () -> 7));
  (match Json.member "traceEvents" (Trace.chrome_json t) with
  | Some (Json.List []) -> ()
  | _ -> Alcotest.fail "disabled chrome export must have no events");
  let m = Trace.metrics_payload t in
  check (Alcotest.option json) "no counters" (Some (Json.Obj []))
    (Json.member "counters" m)

(* ------------------------------------------------------------------ *)
(* Trace: live collector                                                *)
(* ------------------------------------------------------------------ *)

(* decode the X events of a chrome export: (name, tid, ts, dur) *)
let x_events t =
  let doc = parse_ok (Trace.chrome_string t) in
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      List.filter_map
        (fun e ->
          match (Json.member "ph" e, Json.member "name" e) with
          | Some (Json.Str "X"), Some (Json.Str name) ->
              let num k = Option.get (Option.bind (Json.member k e) Json.to_float) in
              Some (name, int_of_float (num "tid"), num "ts", num "dur")
          | _ -> None)
        evs
  | _ -> Alcotest.fail "no traceEvents"

let test_trace_span_nesting () =
  let t = Trace.create () in
  let v =
    Trace.with_span t "outer" (fun () ->
        Trace.with_span t "inner" (fun () -> 99))
  in
  check Alcotest.int "value through nested spans" 99 v;
  let evs = x_events t in
  let find n = List.find (fun (name, _, _, _) -> name = n) evs in
  let _, otid, ots, odur = find "outer" in
  let _, itid, its, idur = find "inner" in
  check Alcotest.int "same lane" otid itid;
  Alcotest.(check bool) "inner starts after outer" true (its >= ots);
  Alcotest.(check bool) "inner ends before outer" true
    (its +. idur <= ots +. odur +. 1.0)

let test_trace_span_exception_safe () =
  let t = Trace.create () in
  (try Trace.with_span t "boom" (fun () -> failwith "x")
   with Failure _ -> ());
  match x_events t with
  | [ ("boom", _, _, _) ] -> ()
  | evs -> Alcotest.failf "expected 1 span, got %d" (List.length evs)

let test_trace_counters_and_histograms () =
  let t = Trace.create () in
  Trace.incr t "c";
  Trace.incr t ~by:6 "c";
  check Alcotest.int "counter" 7 (Trace.counter_value t "c");
  List.iter (Trace.observe t "h") [ 4.0; 1.0; 3.0; 2.0 ];
  let m = Trace.metrics_payload t in
  let h =
    match Json.member "histograms" m with
    | Some hs -> Option.get (Json.member "h" hs)
    | None -> Alcotest.fail "no histograms"
  in
  let num k = Option.get (Option.bind (Json.member k h) Json.to_float) in
  check (Alcotest.float 1e-9) "count" 4.0 (num "count");
  check (Alcotest.float 1e-9) "sum" 10.0 (num "sum_ms");
  check (Alcotest.float 1e-9) "min" 1.0 (num "min_ms");
  check (Alcotest.float 1e-9) "max" 4.0 (num "max_ms");
  Alcotest.(check bool) "p50 within range" true
    (num "p50_ms" >= 1.0 && num "p50_ms" <= 4.0);
  match Json.member "counters" m with
  | Some cs ->
      check (Alcotest.option json) "counter exported" (Some (Json.Int 7))
        (Json.member "c" cs)
  | None -> Alcotest.fail "no counters"

let test_trace_multi_domain_lanes () =
  let t = Trace.create () in
  Trace.with_span t "main-span" (fun () -> ());
  let ds =
    List.init 2 (fun i ->
        Domain.spawn (fun () ->
            Trace.with_span t (Printf.sprintf "worker-%d" i) (fun () ->
                Trace.incr t "worker.spans")))
  in
  List.iter Domain.join ds;
  check Alcotest.int "both workers recorded" 2 (Trace.counter_value t "worker.spans");
  let evs = x_events t in
  check Alcotest.int "three spans" 3 (List.length evs);
  let tids = List.sort_uniq compare (List.map (fun (_, tid, _, _) -> tid) evs) in
  Alcotest.(check bool) "spawned domains get their own lanes" true
    (List.length tids >= 2);
  (* every lane must carry a thread_name metadata record *)
  let doc = parse_ok (Trace.chrome_string t) in
  let meta_tids =
    match Json.member "traceEvents" doc with
    | Some (Json.List evs) ->
        List.filter_map
          (fun e ->
            match (Json.member "ph" e, Json.member "name" e) with
            | Some (Json.Str "M"), Some (Json.Str "thread_name") ->
                Option.map
                  (fun f -> int_of_float f)
                  (Option.bind (Json.member "tid" e) Json.to_float)
            | _ -> None)
          evs
    | _ -> []
  in
  List.iter
    (fun tid ->
      Alcotest.(check bool)
        (Printf.sprintf "lane %d named" tid)
        true (List.mem tid meta_tids))
    tids

let test_trace_instant_events () =
  let t = Trace.create () in
  Trace.instant t "marker" ~args:[ ("k", Json.Int 1) ];
  let doc = parse_ok (Trace.chrome_string t) in
  match Json.member "traceEvents" doc with
  | Some (Json.List evs) ->
      let is_marker e =
        Json.member "ph" e = Some (Json.Str "i")
        && Json.member "name" e = Some (Json.Str "marker")
      in
      Alcotest.(check bool) "instant exported" true (List.exists is_marker evs)
  | _ -> Alcotest.fail "no traceEvents"

(* ------------------------------------------------------------------ *)
(* End-to-end: a traced what-if run                                     *)
(* ------------------------------------------------------------------ *)

let build_history () =
  let eng = Uv_db.Engine.create () in
  let run sql = ignore (Uv_db.Engine.exec_sql eng sql) in
  run "CREATE TABLE accounts (id INT PRIMARY KEY, balance INT)";
  for i = 1 to 4 do
    run (Printf.sprintf "INSERT INTO accounts VALUES (%d, 100)" i)
  done;
  (* independent single-row updates: conflict-free, so the wave executor
     gets real parallel batches *)
  for round = 1 to 3 do
    for i = 1 to 4 do
      run
        (Printf.sprintf
           "UPDATE accounts SET balance = balance + %d WHERE id = %d" round i)
    done
  done;
  eng

let whatif_outcome ~obs eng =
  let analyzer = Uv_retroactive.Analyzer.analyze ~obs (Uv_db.Engine.log eng) in
  let target = { Uv_retroactive.Analyzer.tau = 6; op = Uv_retroactive.Analyzer.Remove } in
  let config = Uv_retroactive.Whatif.Config.make ~workers:2 ~obs () in
  Uv_retroactive.Whatif.run_exn ~config ~analyzer eng target

let test_whatif_traced () =
  let obs = Trace.create () in
  let out = whatif_outcome ~obs (build_history ()) in
  let names = List.map (fun (n, _, _, _) -> n) (x_events obs) in
  let has n = List.mem n names in
  Alcotest.(check bool) "whatif root span" true (has "whatif");
  Alcotest.(check bool) "analyze phase" true (has "analyze");
  Alcotest.(check bool) "rwsets span" true (has "analyze.rwsets");
  Alcotest.(check bool) "closure.col span" true (has "closure.col");
  Alcotest.(check bool) "closure.row span" true (has "closure.row");
  Alcotest.(check bool) "hash-jump phase always present" true (has "hash-jump");
  Alcotest.(check bool) "cluster span" true (has "cluster");
  let waves =
    List.filter (fun n -> String.length n > 5 && String.sub n 0 5 = "wave.") names
  in
  check Alcotest.int "a span per executed wave" out.Uv_retroactive.Whatif.exec_waves
    (List.length waves);
  let is_q n =
    String.length n > 1
    && n.[0] = 'Q'
    && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub n 1 (String.length n - 1))
  in
  check Alcotest.int "a span per replayed statement"
    out.Uv_retroactive.Whatif.replayed
    (List.length (List.filter is_q names));
  Alcotest.(check bool) "closure iterations counted" true
    (Trace.counter_value obs "analyze.closure_iters" > 0);
  Alcotest.(check bool) "statement execs counted" true
    (Trace.counter_value obs "db.log_appends" > 0);
  (* the metrics report round-trips through the envelope *)
  let s = Report.to_string ~schema:"uv.metrics/1" (Trace.metrics_payload obs) in
  match Report.parse ~expect:"uv.metrics/1" s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "metrics envelope: %s" e

let test_whatif_obs_invariant () =
  (* observability must not change the computed universe *)
  let quiet = whatif_outcome ~obs:Trace.disabled (build_history ()) in
  let traced = whatif_outcome ~obs:(Trace.create ()) (build_history ()) in
  check Alcotest.int64 "same final hash" quiet.Uv_retroactive.Whatif.final_db_hash
    traced.Uv_retroactive.Whatif.final_db_hash;
  check Alcotest.int "same replay count" quiet.Uv_retroactive.Whatif.replayed
    traced.Uv_retroactive.Whatif.replayed;
  (* the phase table is populated either way, with the documented order *)
  let phase_names o = List.map fst o.Uv_retroactive.Whatif.phases in
  check
    Alcotest.(list string)
    "phases present without obs"
    [ "analyze"; "snapshot"; "hash-jump"; "rollback"; "replay"; "cost-model";
      "merge-log" ]
    (phase_names quiet);
  check Alcotest.(list string) "same phases with obs" (phase_names quiet)
    (phase_names traced)

let () =
  Alcotest.run "uv_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "numbers" `Quick test_json_numbers;
          Alcotest.test_case "errors" `Quick test_json_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "byte budget" `Quick test_json_limit_bytes;
          Alcotest.test_case "depth budget" `Quick test_json_limit_depth;
          Alcotest.test_case "string budget" `Quick test_json_limit_string;
          Alcotest.test_case "error offsets" `Quick test_json_error_offsets;
          Alcotest.test_case "mutation fuzz" `Quick test_json_fuzz_negatives;
        ] );
      ( "report",
        [
          Alcotest.test_case "round-trip" `Quick test_report_roundtrip;
          Alcotest.test_case "envelope fields" `Quick test_report_envelope_fields;
          Alcotest.test_case "unknown schema" `Quick test_report_rejects_unknown_schema;
          Alcotest.test_case "malformed" `Quick test_report_rejects_malformed;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null sink" `Quick test_trace_disabled_noop;
          Alcotest.test_case "span nesting" `Quick test_trace_span_nesting;
          Alcotest.test_case "exception safety" `Quick test_trace_span_exception_safe;
          Alcotest.test_case "counters/histograms" `Quick test_trace_counters_and_histograms;
          Alcotest.test_case "multi-domain lanes" `Quick test_trace_multi_domain_lanes;
          Alcotest.test_case "instant events" `Quick test_trace_instant_events;
        ] );
      ( "whatif",
        [
          Alcotest.test_case "traced run" `Quick test_whatif_traced;
          Alcotest.test_case "obs-off invariance" `Quick test_whatif_obs_invariant;
        ] );
    ]
