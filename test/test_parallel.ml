(* Determinism and correctness of the real parallel replay executor
   (Wave_exec): at every worker count the what-if outcome must be
   bit-identical — same final database hash, same new-universe log —
   and identical to what the serial path produces. *)

open Uv_db
open Uv_retroactive
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let run e sql = ignore (Engine.exec_sql e sql)

(* A log digest covering everything scenario-stacking depends on:
   commit index, rendered SQL, recorded draws, row counts, the
   restamped per-table hashes, and the transaction tag. *)
let log_digest log =
  let buf = Buffer.create 4096 in
  Log.iter log (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%d|%s|%s|%d|%s|%s\n" e.Log.index e.Log.sql
           (String.concat ","
              (List.map Uv_sql.Value.to_string e.Log.nondet))
           e.Log.rows_written
           (String.concat ","
              (List.map
                 (fun (t, h) -> Printf.sprintf "%s=%Lx" t h)
                 e.Log.written_hashes))
           (Option.value e.Log.app_txn ~default:"-")));
  Buffer.contents buf

let build (w : W.t) ~n ~dep_rate =
  let eng, rt = W.setup ~mode:R.Transpiled w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n ~dep_rate in
  ignore (W.run_history rt ~mode:R.Transpiled calls);
  (eng, base)

(* ------------------------------------------------------------------ *)
(* Worker-count invariance on the five workloads                        *)
(* ------------------------------------------------------------------ *)

let test_workers_invariant (w : W.t) () =
  let eng, base = build w ~n:60 ~dep_rate:0.3 in
  let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
  let target = { Analyzer.tau = 1; op = Analyzer.Remove } in
  let run_with config = Whatif.run_exn ~config ~analyzer eng target in
  let serial = run_with (Whatif.Config.make ~parallel_exec:false ()) in
  check Alcotest.bool
    (w.W.name ^ ": serial path reports no measured parallel time")
    true
    (serial.Whatif.measured_parallel_ms = None);
  let want_hash = serial.Whatif.final_db_hash in
  let want_log = log_digest serial.Whatif.new_log in
  List.iter
    (fun workers ->
      let out = run_with (Whatif.Config.make ~workers ()) in
      check Alcotest.bool
        (Printf.sprintf "%s: workers=%d ran the wave executor" w.W.name workers)
        true
        (out.Whatif.measured_parallel_ms <> None);
      check Alcotest.int64
        (Printf.sprintf "%s: workers=%d final hash == serial" w.W.name workers)
        want_hash out.Whatif.final_db_hash;
      check Alcotest.string
        (Printf.sprintf "%s: workers=%d new log == serial" w.W.name workers)
        want_log
        (log_digest out.Whatif.new_log))
    [ 1; 2; 4; 8 ]

(* ------------------------------------------------------------------ *)
(* Structural (trigger-firing) statements serialize inside their wave   *)
(* ------------------------------------------------------------------ *)

let test_trigger_wave_serializes () =
  let e = Engine.create () in
  run e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)";
  run e "CREATE TABLE audit (id INT PRIMARY KEY, n INT)";
  run e
    "CREATE TRIGGER taud AFTER UPDATE ON acct FOR EACH ROW BEGIN UPDATE \
     audit SET n = n + 1 WHERE id = 1; END";
  run e "INSERT INTO audit VALUES (1, 0)";
  for i = 1 to 8 do
    run e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i)
  done;
  let base = Engine.snapshot e in
  Engine.reset_log e;
  (* DML-only history: every UPDATE fires the trigger, so every entry is
     structural and they all funnel through the shared audit row *)
  for i = 1 to 8 do
    run e (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i i)
  done;
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  let target = { Analyzer.tau = 1; op = Analyzer.Remove } in
  let serial =
    Whatif.run_exn
      ~config:(Whatif.Config.make ~parallel_exec:false ())
      ~analyzer e target
  in
  let par =
    Whatif.run_exn ~config:(Whatif.Config.make ~workers:4 ()) ~analyzer e target
  in
  check Alcotest.bool "wave executor ran" true
    (par.Whatif.measured_parallel_ms <> None);
  check Alcotest.int64 "trigger cascades produce the serial state"
    serial.Whatif.final_db_hash par.Whatif.final_db_hash;
  check Alcotest.string "trigger cascades produce the serial log"
    (log_digest serial.Whatif.new_log)
    (log_digest par.Whatif.new_log);
  (* the oracle value: removing UPDATE #1 leaves 7 trigger firings *)
  let merged = Engine.of_catalog (Catalog.snapshot (Engine.catalog e)) in
  Whatif.commit merged par;
  match Engine.query_sql merged "SELECT n FROM audit WHERE id = 1" with
  | { Engine.rows = [ [| Uv_sql.Value.Int n |] ]; _ } ->
      check Alcotest.int "audit counter" 7 n
  | _ -> Alcotest.fail "audit row missing"

(* ------------------------------------------------------------------ *)
(* Serial fallback on ineligible histories                              *)
(* ------------------------------------------------------------------ *)

let test_ddl_member_falls_back () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  let base = Engine.snapshot e in
  Engine.reset_log e;
  run e "INSERT INTO t VALUES (1, 10)";
  (* TRUNCATE writes every row of t, so removing the INSERT pulls this
     DDL into the replay set through the write-write conflict *)
  run e "TRUNCATE TABLE t";
  run e "INSERT INTO t VALUES (2, 20)";
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  (* row-only mode: the TRUNCATE's wildcard row write joins the closure *)
  let out =
    Whatif.run_exn
      ~config:(Whatif.Config.make ~mode:Analyzer.Row_only ())
      ~analyzer e
      { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  check Alcotest.bool "DDL joined the replay set" true
    out.Whatif.replay.Analyzer.members.(1);
  check Alcotest.bool "mid-history DDL forces the serial path" true
    (out.Whatif.measured_parallel_ms = None)

let test_hash_jumper_falls_back () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  let base = Engine.snapshot e in
  Engine.reset_log e;
  run e "INSERT INTO t VALUES (1, 10)";
  run e "UPDATE t SET v = v + 1 WHERE id = 1";
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  let out =
    Whatif.run_exn
      ~config:(Whatif.Config.make ~hash_jumper:true ())
      ~analyzer e { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  check Alcotest.bool "hash-jumper needs commit-prefix replay" true
    (out.Whatif.measured_parallel_ms = None)

(* ------------------------------------------------------------------ *)
(* Conflict_dag unit tests                                              *)
(* ------------------------------------------------------------------ *)

let test_waves_layering () =
  (* 1 -> 2 -> 4, 3 independent: waves [1;3] [2] [4] *)
  let dag =
    Conflict_dag.build ~nodes:[ 1; 2; 3; 4 ]
      ~edges:[ (2, 1); (4, 2) ]
  in
  check
    Alcotest.(list (list int))
    "longest-path layers"
    [ [ 1; 3 ]; [ 2 ]; [ 4 ] ]
    (Conflict_dag.waves dag);
  check Alcotest.int "wave count" 3 (Conflict_dag.wave_count dag);
  check Alcotest.int "edge count (deduped)" 2
    (Conflict_dag.edge_count
       (Conflict_dag.build ~nodes:[ 1; 2; 3; 4 ]
          ~edges:[ (2, 1); (4, 2); (2, 1) ]))

let test_waves_empty_and_chain () =
  let empty = Conflict_dag.build ~nodes:[] ~edges:[] in
  check Alcotest.(list (list int)) "empty" [] (Conflict_dag.waves empty);
  let chain =
    Conflict_dag.build ~nodes:[ 10; 20; 30 ] ~edges:[ (20, 10); (30, 20) ]
  in
  check
    Alcotest.(list (list int))
    "pure chain: one node per wave"
    [ [ 10 ]; [ 20 ]; [ 30 ] ]
    (Conflict_dag.waves chain)

let test_makespan_matches_scheduler () =
  let entries = [ 1; 2; 3; 4; 5 ] in
  let edges = [ (3, 1); (4, 2); (5, 3); (5, 4) ] in
  let weight i = float_of_int i *. 1.5 in
  let direct =
    Conflict_dag.makespan
      (Conflict_dag.build ~nodes:entries ~edges)
      ~weight ~workers:2
  in
  let via_wrapper = Scheduler.makespan ~entries ~edges ~weight ~workers:2 in
  check (Alcotest.float 1e-9) "Scheduler is a thin wrapper" direct via_wrapper

let workload_cases (w : W.t) =
  ( "determinism: " ^ w.W.name,
    [
      Alcotest.test_case "workers in {1,2,4,8} == serial" `Slow
        (test_workers_invariant w);
    ] )

let () =
  Alcotest.run "uv_parallel"
    (List.map workload_cases (W.all ())
    @ [
        ( "structural",
          [
            Alcotest.test_case "trigger wave serializes" `Quick
              test_trigger_wave_serializes;
          ] );
        ( "fallback",
          [
            Alcotest.test_case "mid-history DDL" `Quick
              test_ddl_member_falls_back;
            Alcotest.test_case "hash-jumper" `Quick
              test_hash_jumper_falls_back;
          ] );
        ( "conflict-dag",
          [
            Alcotest.test_case "wave layering" `Quick test_waves_layering;
            Alcotest.test_case "empty & chain" `Quick
              test_waves_empty_and_chain;
            Alcotest.test_case "makespan parity" `Quick
              test_makespan_matches_scheduler;
          ] );
      ])
