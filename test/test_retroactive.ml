(* Tests for ultraverse.retroactive: Table A column-wise policies, Table B
   row-wise policies, dependency-graph closure, the what-if driver against
   a full-replay oracle (Definition E.1), the Hash-jumper, and the
   scheduler. Includes the paper's running examples: Figure 6 (e-commerce
   dependency graph), Table 2 (row-wise independence), and Figure 7
   (Hash-jump on overwritten membership). *)

open Uv_sql
open Uv_db
open Uv_retroactive

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let run e sql = ignore (Engine.exec_sql e sql)

let qint e sql =
  let r = Engine.query_sql e sql in
  match r.Engine.rows with
  | row :: _ -> Value.to_int row.(0)
  | [] -> Alcotest.failf "no rows from %s" sql

let rw_of ?(schema = []) sql =
  let sv = Schema_view.create () in
  List.iter (fun ddl -> Schema_view.apply sv (Parser.parse_stmt ddl)) schema;
  Rwset.of_stmt sv (Parser.parse_stmt sql)

let has_r key rw = Rwset.Colset.mem key rw.Rwset.r
let has_w key rw = Rwset.Colset.mem key rw.Rwset.w

(* ------------------------------------------------------------------ *)
(* Column-wise policy (Table A)                                         *)
(* ------------------------------------------------------------------ *)

let users_ddl = "CREATE TABLE users (id INT PRIMARY KEY, name VARCHAR(8), age INT)"

let test_rw_create_table () =
  let rw = rw_of "CREATE TABLE t (a INT, b INT REFERENCES u(x))" in
  Alcotest.(check bool) "writes _S.t" true (has_w "_S.t" rw);
  Alcotest.(check bool) "reads _S.t" true (has_r "_S.t" rw);
  Alcotest.(check bool) "reads fk source schema" true (has_r "_S.u" rw)

let test_rw_select () =
  let rw = rw_of ~schema:[ users_ddl ] "SELECT name FROM users WHERE age > 30" in
  Alcotest.(check bool) "reads name" true (has_r "users.name" rw);
  Alcotest.(check bool) "reads age" true (has_r "users.age" rw);
  Alcotest.(check bool) "reads schema" true (has_r "_S.users" rw);
  Alcotest.(check bool) "write set empty" true (Rwset.Colset.is_empty rw.Rwset.w)

let test_rw_insert_select () =
  let rw =
    rw_of
      ~schema:[ users_ddl; "CREATE TABLE archive (id INT, name VARCHAR(8))" ]
      "INSERT INTO archive SELECT id, name FROM users WHERE age > 30"
  in
  Alcotest.(check bool) "writes archive columns" true (has_w "archive.id" rw);
  Alcotest.(check bool) "reads source columns" true (has_r "users.id" rw);
  Alcotest.(check bool) "reads filter column" true (has_r "users.age" rw);
  Alcotest.(check bool) "reads source schema" true (has_r "_S.users" rw);
  Alcotest.(check bool) "does not write source" false (has_w "users.id" rw)

let test_rw_select_having () =
  (* HAVING columns are reads even when absent from projection and WHERE *)
  let rw =
    rw_of ~schema:[ users_ddl ]
      "SELECT name FROM users GROUP BY name HAVING SUM(age) > 100"
  in
  Alcotest.(check bool) "reads having column" true (has_r "users.age" rw);
  (* a subselect inside HAVING reads its source table *)
  let rw =
    rw_of
      ~schema:[ users_ddl; "CREATE TABLE quota (n INT)" ]
      "SELECT name FROM users GROUP BY name HAVING COUNT(*) > (SELECT n FROM quota)"
  in
  Alcotest.(check bool) "reads having subselect" true (has_r "quota.n" rw)

let test_rw_insert_writes_all_columns () =
  let rw = rw_of ~schema:[ users_ddl ] "INSERT INTO users VALUES (1, 'x', 2)" in
  List.iter
    (fun c -> Alcotest.(check bool) ("writes " ^ c) true (has_w ("users." ^ c) rw))
    [ "id"; "name"; "age" ]

let test_rw_insert_auto_increment_reads_pk () =
  let rw =
    rw_of
      ~schema:
        [ "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)" ]
      "INSERT INTO t (v) VALUES (1)"
  in
  Alcotest.(check bool) "reads pk column" true (has_r "t.id" rw)

let test_rw_update_reads_and_writes () =
  let rw =
    rw_of ~schema:[ users_ddl ] "UPDATE users SET age = age + 1 WHERE name = 'x'"
  in
  Alcotest.(check bool) "writes age only" true
    (has_w "users.age" rw && not (has_w "users.name" rw));
  Alcotest.(check bool) "reads assigned source" true (has_r "users.age" rw);
  Alcotest.(check bool) "reads where" true (has_r "users.name" rw)

let test_rw_fk_write_propagation () =
  (* updating a referenced column also writes the referencing FK columns *)
  let schema =
    [ users_ddl; "CREATE TABLE orders (oid INT, uid INT REFERENCES users(id))" ]
  in
  let rw = rw_of ~schema "UPDATE users SET id = 9 WHERE id = 1" in
  Alcotest.(check bool) "fk column written" true (has_w "orders.uid" rw)

let test_rw_call_unions_body () =
  let schema =
    [
      users_ddl;
      "CREATE PROCEDURE p(IN x INT) BEGIN IF x > 0 THEN UPDATE users SET age \
       = 1 WHERE id = x; ELSE DELETE FROM users WHERE id = x; END IF; END";
    ]
  in
  let rw = rw_of ~schema "CALL p(3)" in
  (* both branches merged (§4.2 Branch Conditions) *)
  Alcotest.(check bool) "then-branch write" true (has_w "users.age" rw);
  Alcotest.(check bool) "else-branch write" true (has_w "users.name" rw);
  Alcotest.(check bool) "reads procedure schema" true (has_r "_S.p" rw)

let test_rw_view_expansion () =
  let schema =
    [ users_ddl; "CREATE VIEW adults AS SELECT id, name FROM users WHERE age > 17" ]
  in
  let rw = rw_of ~schema "SELECT name FROM adults" in
  Alcotest.(check bool) "expands to parent column" true (has_r "users.name" rw);
  Alcotest.(check bool) "reads view schema" true (has_r "_S.adults" rw)

let test_rw_trigger_inherited () =
  let schema =
    [
      users_ddl;
      "CREATE TABLE audit (n INT)";
      "CREATE TRIGGER tg AFTER INSERT ON users FOR EACH ROW BEGIN UPDATE \
       audit SET n = n + 1; END";
    ]
  in
  let rw = rw_of ~schema "INSERT INTO users VALUES (1, 'x', 2)" in
  Alcotest.(check bool) "trigger body write inherited" true (has_w "audit.n" rw);
  Alcotest.(check bool) "trigger schema read" true (has_r "_S.tg" rw)

let test_rw_transaction_union () =
  let rw =
    rw_of ~schema:[ users_ddl ]
      "BEGIN TRANSACTION; UPDATE users SET age = 1 WHERE id = 1; DELETE FROM \
       users WHERE id = 2; COMMIT"
  in
  Alcotest.(check bool) "union of writes" true
    (has_w "users.age" rw && has_w "users.name" rw)

let test_rw_trigger_on_update () =
  (* triggers keyed to UPDATE fire for UPDATE only — an INSERT on the
     same table must not inherit the body's sets *)
  let schema =
    [
      users_ddl;
      "CREATE TABLE audit (n INT)";
      "CREATE TRIGGER tu AFTER UPDATE ON users FOR EACH ROW BEGIN UPDATE \
       audit SET n = n + 1; END";
    ]
  in
  let upd = rw_of ~schema "UPDATE users SET age = 2 WHERE id = 1" in
  Alcotest.(check bool) "update inherits trigger write" true
    (has_w "audit.n" upd);
  Alcotest.(check bool) "update reads trigger schema" true
    (has_r "_S.tu" upd);
  let ins = rw_of ~schema "INSERT INTO users VALUES (1, 'x', 2)" in
  Alcotest.(check bool) "insert does not fire the UPDATE trigger" false
    (has_w "audit.n" ins)

let test_rw_write_reads_through_view () =
  (* a write statement whose source is a view reads the parent columns
     the view projects AND the view's own filter columns *)
  let schema =
    [
      users_ddl;
      "CREATE VIEW adults AS SELECT id, name FROM users WHERE age > 17";
      "CREATE TABLE archive (id INT, name VARCHAR(8))";
    ]
  in
  let rw = rw_of ~schema "INSERT INTO archive SELECT id, name FROM adults" in
  Alcotest.(check bool) "reads parent projection" true (has_r "users.id" rw);
  Alcotest.(check bool) "reads view filter column" true (has_r "users.age" rw);
  Alcotest.(check bool) "reads view schema" true (has_r "_S.adults" rw);
  Alcotest.(check bool) "writes the target, not the parent" true
    (has_w "archive.id" rw && not (has_w "users.id" rw))

let test_rw_insert_explicit_ai_still_reads_pk () =
  (* an explicit AUTO_INCREMENT value still bumps the counter, so the
     dependency on the PK column remains even without a fill *)
  let schema = [ "CREATE TABLE t (id INT PRIMARY KEY AUTO_INCREMENT, v INT)" ] in
  let rw = rw_of ~schema "INSERT INTO t (id, v) VALUES (7, 1)" in
  Alcotest.(check bool) "explicit value still reads pk" true (has_r "t.id" rw);
  let isel = rw_of ~schema "INSERT INTO t SELECT v + 1, v FROM t" in
  Alcotest.(check bool) "insert-select reads pk too" true (has_r "t.id" isel)

let test_rw_fk_write_inheritance_on_delete () =
  (* deleting referenced rows cascades a write onto the referencing FK
     columns — but only in the parent-to-child direction *)
  let schema =
    [ users_ddl; "CREATE TABLE orders (oid INT, uid INT REFERENCES users(id))" ]
  in
  let del = rw_of ~schema "DELETE FROM users WHERE id = 1" in
  Alcotest.(check bool) "delete writes referencing fk column" true
    (has_w "orders.uid" del);
  Alcotest.(check bool) "delete writes own columns" true (has_w "users.id" del);
  let child = rw_of ~schema "DELETE FROM orders WHERE oid = 1" in
  Alcotest.(check bool) "child delete does not write the parent" false
    (has_w "users.id" child);
  Alcotest.(check bool) "child delete reads the referenced column" true
    (has_r "users.id" child)

(* ------------------------------------------------------------------ *)
(* Row-wise policy (Table B) — via the analyzer on small histories      *)
(* ------------------------------------------------------------------ *)

(* Table 2 scenario: Bob's and Alice's rows are independent. *)
let test_rowwise_table2_independence () =
  let e = Engine.create () in
  run e "CREATE TABLE Users (uid VARCHAR(8) PRIMARY KEY, nickname VARCHAR(8), email VARCHAR(32))";
  run e "INSERT INTO Users VALUES ('alice01', 'Alice', 'a@g.com')"; (* Q2 *)
  run e "INSERT INTO Users VALUES ('bob99', 'Bob', 'b@y.com')"; (* Q3 *)
  run e "UPDATE Users SET email = 'alice@aol.com' WHERE uid = 'alice01'"; (* Q4 *)
  run e "UPDATE Users SET email = 'bob@hotmail.com' WHERE uid = 'bob99'"; (* Q5 *)
  let analyzer = Analyzer.analyze (Engine.log e) in
  (* remove Q2 (Alice's signup): Q4 depends, Q3/Q5 (Bob) do not *)
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "alice's update replays" true rs.Analyzer.members.(3);
  Alcotest.(check bool) "bob's insert skipped" false rs.Analyzer.members.(2);
  Alcotest.(check bool) "bob's update skipped" false rs.Analyzer.members.(4);
  (* column-only would replay both updates (same email column) *)
  Alcotest.(check bool) "column-only over-approximates" true
    (rs.Analyzer.col_only_count > rs.Analyzer.member_count)

let test_rowwise_alias () =
  (* §4.3 alias example: DELETE by nickname maps to Bob's uid through the
     alias learned at insert time *)
  let e = Engine.create () in
  run e "CREATE TABLE Users (uid VARCHAR(8) PRIMARY KEY, nickname VARCHAR(8))";
  run e "INSERT INTO Users VALUES ('alice01', 'Alice')";
  run e "INSERT INTO Users VALUES ('bob99', 'Bob')";
  run e "DELETE FROM Users WHERE nickname = 'Bob'";
  let config =
    {
      Uv_retroactive.Rowset.ri_columns = [ ("Users", [ "uid" ]) ];
      ri_aliases = [ ("Users", "nickname", "uid") ];
    }
  in
  let analyzer = Analyzer.analyze ~config (Engine.log e) in
  (* removing Alice's insert must NOT pull in the Bob-targeted delete *)
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "alias delete skipped" false rs.Analyzer.members.(3);
  (* removing Bob's insert must pull it in *)
  let rs2 = Analyzer.replay_set analyzer { Analyzer.tau = 3; op = Analyzer.Remove } in
  Alcotest.(check bool) "alias delete replays" true rs2.Analyzer.members.(3)

let test_rowwise_merged_ri_values () =
  (* §4.3 merging: UPDATE rewrites the RI value; both ids refer to the
     same physical row afterwards *)
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  run e "INSERT INTO t VALUES (1, 10)"; (* Q2 *)
  run e "UPDATE t SET id = 2 WHERE id = 1"; (* Q3 merges 1 ~ 2 *)
  run e "UPDATE t SET v = 99 WHERE id = 2"; (* Q4 touches the same row *)
  let analyzer = Analyzer.analyze (Engine.log e) in
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "post-merge access replays" true rs.Analyzer.members.(3)

let test_rowwise_wildcard_where () =
  (* no RI constraint in WHERE -> wildcard -> conflicts with everything *)
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  run e "INSERT INTO t VALUES (1, 10)";
  run e "INSERT INTO t VALUES (2, 20)";
  run e "UPDATE t SET v = 0 WHERE v > 5"; (* wildcard row access *)
  let analyzer = Analyzer.analyze (Engine.log e) in
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "wildcard update replays" true rs.Analyzer.members.(3)

let test_ddl_dependency () =
  (* retroactively removing a CREATE PROCEDURE pulls in its CALLs via _S *)
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "CREATE PROCEDURE p() BEGIN INSERT INTO t VALUES (1); END";
  run e "CALL p()";
  run e "INSERT INTO t VALUES (5)";
  let analyzer = Analyzer.analyze (Engine.log e) in
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "call depends on create procedure" true
    rs.Analyzer.members.(2)

let test_read_only_never_joins () =
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "INSERT INTO t VALUES (1)";
  run e "SELECT COUNT(*) FROM t";
  run e "UPDATE t SET a = 2 WHERE a = 1";
  let analyzer = Analyzer.analyze (Engine.log e) in
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "standalone SELECT not in replay set" false
    rs.Analyzer.members.(2);
  Alcotest.(check bool) "later writer joins" true rs.Analyzer.members.(3)

(* direct Table B extraction checks *)
let extract_rows ?(config = Rowset.default_config) ~schema sql =
  let sv = Schema_view.create () in
  List.iter (fun ddl -> Schema_view.apply sv (Parser.parse_stmt ddl)) schema;
  let state = Rowset.create config in
  Rowset.of_entry state sv (Parser.parse_stmt sql) []

let riset_of rows table side =
  match List.assoc_opt table rows with
  | Some access when Array.length access > 0 ->
      if side = `R then access.(0).Rowset.dr else access.(0).Rowset.dw
  | _ -> Alcotest.failf "no access recorded for %s" table

let vals = function
  | Rowset.Vals s -> List.sort compare (Rowset.Vset.elements s)
  | Rowset.Any -> Alcotest.fail "expected concrete values, got Any"

let t_schema = [ "CREATE TABLE t (id INT PRIMARY KEY, v INT)" ]

let test_tableb_equality_constraint () =
  let rows = extract_rows ~schema:t_schema "UPDATE t SET v = 9 WHERE id = 5" in
  check Alcotest.(list string) "write pins the row" [ "I5" ]
    (vals (riset_of rows "t" `W))

let test_tableb_in_list () =
  let rows = extract_rows ~schema:t_schema "DELETE FROM t WHERE id IN (1, 2, 3)" in
  check Alcotest.(list string) "IN enumerates" [ "I1"; "I2"; "I3" ]
    (vals (riset_of rows "t" `W))

let test_tableb_and_intersects () =
  let rows =
    extract_rows ~schema:t_schema "UPDATE t SET v = 0 WHERE id = 5 AND v > 3"
  in
  check Alcotest.(list string) "AND keeps the pinned id" [ "I5" ]
    (vals (riset_of rows "t" `W))

let test_tableb_or_unions () =
  let rows =
    extract_rows ~schema:t_schema "UPDATE t SET v = 0 WHERE id = 5 OR id = 7"
  in
  check Alcotest.(list string) "OR unions" [ "I5"; "I7" ]
    (vals (riset_of rows "t" `W))

let test_tableb_range_is_wildcard () =
  let rows = extract_rows ~schema:t_schema "UPDATE t SET v = 0 WHERE id > 5" in
  (match riset_of rows "t" `W with
  | Rowset.Any -> ()
  | _ -> Alcotest.fail "range constraints degrade to wildcard")

let test_tableb_insert_writes_key () =
  let rows = extract_rows ~schema:t_schema "INSERT INTO t VALUES (42, 0)" in
  check Alcotest.(list string) "inserted key" [ "I42" ]
    (vals (riset_of rows "t" `W))

(* ------------------------------------------------------------------ *)
(* Figure 6 end-to-end                                                  *)
(* ------------------------------------------------------------------ *)

let figure6_history =
  [
    "CREATE TABLE Users (uid VARCHAR(16) PRIMARY KEY, nickname VARCHAR(32), email VARCHAR(64))";
    "CREATE TABLE Address (owner_uid VARCHAR(16) PRIMARY KEY, city VARCHAR(32))";
    "CREATE TABLE Orders (oid VARCHAR(8) PRIMARY KEY, ord_uid VARCHAR(16))";
    "CREATE TABLE Stats (day INT PRIMARY KEY, total INT)";
    "CREATE PROCEDURE NewOrder(IN orderer_uid VARCHAR(16), IN order_id VARCHAR(8)) lbl: BEGIN \
     DECLARE cnt INT; \
     SELECT COUNT(*) INTO cnt FROM Address WHERE owner_uid = orderer_uid; \
     IF cnt <> 0 THEN INSERT INTO Orders VALUES (order_id, orderer_uid); \
     ELSE LEAVE lbl; END IF; END";
    "INSERT INTO Users VALUES ('alice01', 'Alice', 'al@gmail.com')";
    "INSERT INTO Address VALUES ('alice01', 'Osaka')";
    "CALL NewOrder('alice01', 'ord-1')";
    "INSERT INTO Users VALUES ('bob99', 'Bob', 'bob@yahoo.com')";
    "CALL NewOrder('bob99', 'ord-2')";
    "INSERT INTO Stats VALUES (1, (SELECT COUNT(*) FROM Orders))";
    "UPDATE Users SET email = 'alice@aol.com' WHERE uid = 'alice01'";
    "UPDATE Users SET email = 'bob@hotmail.com' WHERE uid = 'bob99'";
  ]

let build_figure6 () =
  let e = Engine.create () in
  List.iter (run e) figure6_history;
  e

let oracle_replay e ~skip =
  (* Definition E.1: replay the whole log minus [skip] on a fresh engine *)
  let e2 = Engine.create () in
  Log.iter (Engine.log e) (fun entry ->
      if entry.Log.index <> skip then
        try
          ignore
            (Engine.exec ~nondet:entry.Log.nondet ?app_txn:entry.Log.app_txn e2
               entry.Log.stmt)
        with Engine.Sql_error _ | Engine.Signal_raised _ -> ());
  e2

let table_testable = Alcotest.(list (pair string int64))

let all_hashes e =
  List.map (fun (n, t) -> (n, Storage.hash t)) (Catalog.tables (Engine.catalog e))

let merged_universe e out =
  let merged = Engine.of_catalog (Catalog.snapshot (Engine.catalog e)) in
  Whatif.commit merged out;
  merged

let test_figure6_remove_address () =
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 7; op = Analyzer.Remove } in
  let m = out.Whatif.replay.Analyzer.members in
  Alcotest.(check bool) "Q8 (Alice order) replays" true m.(7);
  Alcotest.(check bool) "Q11 (stats) replays" true m.(10);
  Alcotest.(check bool) "Q9 (Bob signup) skipped" false m.(8);
  Alcotest.(check bool) "Q10 (Bob order attempt) skipped" false m.(9);
  Alcotest.(check bool) "Q12/Q13 (emails) skipped" true (not m.(11) && not m.(12));
  let truth = oracle_replay e ~skip:7 in
  check table_testable "final state equals oracle" (all_hashes truth)
    (all_hashes (merged_universe e out));
  (* semantic checks: no address -> no order -> stats total 0 *)
  let merged = merged_universe e out in
  check Alcotest.int "no orders in new universe" 0
    (qint merged "SELECT COUNT(*) FROM Orders");
  check Alcotest.int "stats reflect no orders" 0
    (qint merged "SELECT total FROM Stats WHERE day = 1")

let test_figure6_add_address_for_bob () =
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let stmt = Parser.parse_stmt "INSERT INTO Address VALUES ('bob99', 'Tokyo')" in
  (* add just before Q10 so Bob's order attempt now succeeds *)
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 10; op = Analyzer.Add stmt } in
  let merged = merged_universe e out in
  check Alcotest.int "both orders exist now" 2
    (qint merged "SELECT COUNT(*) FROM Orders");
  check Alcotest.int "stats reflect two orders" 2
    (qint merged "SELECT total FROM Stats WHERE day = 1")

let test_figure6_change_query () =
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let stmt = Parser.parse_stmt "CALL NewOrder('bob99', 'ord-9')" in
  (* change Q8 from Alice's order to Bob's (who has no address) *)
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 8; op = Analyzer.Change stmt } in
  let merged = merged_universe e out in
  check Alcotest.int "alice's order gone, bob's fails" 0
    (qint merged "SELECT COUNT(*) FROM Orders")

let test_mutated_consulted_classification () =
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let rs = Analyzer.replay_set analyzer { Analyzer.tau = 7; op = Analyzer.Remove } in
  Alcotest.(check bool) "Orders mutated" true (List.mem "Orders" rs.Analyzer.mutated);
  Alcotest.(check bool) "Stats mutated" true (List.mem "Stats" rs.Analyzer.mutated);
  Alcotest.(check bool) "Users untouched" true
    (not (List.mem "Users" rs.Analyzer.mutated)
    && not (List.mem "Users" rs.Analyzer.consulted))

let test_remove_readonly_target () =
  (* removing a standalone SELECT cannot change anything *)
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "INSERT INTO t VALUES (1)";
  run e "SELECT COUNT(*) FROM t";
  run e "INSERT INTO t VALUES (2)";
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 3; op = Analyzer.Remove } in
  check Alcotest.int "nothing replays" 0 out.Whatif.replayed;
  let truth = oracle_replay e ~skip:3 in
  check table_testable "oracle agrees" (all_hashes truth)
    (all_hashes (merged_universe e out))

let test_add_at_end_of_history () =
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "INSERT INTO t VALUES (1)";
  let n = Log.length (Engine.log e) in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let stmt = Parser.parse_stmt "INSERT INTO t VALUES (99)" in
  let out =
    Whatif.run_exn ~analyzer e { Analyzer.tau = n + 1; op = Analyzer.Add stmt }
  in
  let merged = merged_universe e out in
  check Alcotest.int "appended row visible" 2 (qint merged "SELECT COUNT(*) FROM t");
  check Alcotest.int "new log one longer" (n + 1) (Log.length out.Whatif.new_log)

let test_remove_create_table () =
  (* retroactively removing a table's creation erases everything that
     touched it; the rest of the database is untouched *)
  let e = Engine.create () in
  run e "CREATE TABLE keepme (a INT)";
  run e "CREATE TABLE doomed (a INT)";
  run e "INSERT INTO doomed VALUES (1)";
  run e "INSERT INTO keepme VALUES (7)";
  run e "UPDATE doomed SET a = 2 WHERE a = 1";
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 2; op = Analyzer.Remove } in
  Alcotest.(check bool) "doomed statements failed in the new universe" true
    (out.Whatif.failed_replays >= 1);
  let merged = merged_universe e out in
  (match Engine.query_sql merged "SELECT COUNT(*) FROM doomed" with
  | exception Engine.Sql_error _ -> ()
  | _ -> Alcotest.fail "doomed table must not exist in the new universe");
  check Alcotest.int "unrelated table intact" 7 (qint merged "SELECT a FROM keepme")

(* ------------------------------------------------------------------ *)
(* Hash-jumper (Figure 7)                                               *)
(* ------------------------------------------------------------------ *)

let test_hash_jumper_figure7 () =
  (* membership levels: removing the initialisation is effectless once the
     later overwrite replays *)
  let e = Engine.create () in
  run e "CREATE TABLE Membership (uid INT PRIMARY KEY, level VARCHAR(8))";
  run e "INSERT INTO Membership VALUES (1, 'gold')"; (* Q2: Alice init *)
  run e "INSERT INTO Membership VALUES (2, 'gold')";
  run e "UPDATE Membership SET level = 'diamond' WHERE uid = 1"; (* overwrite *)
  for i = 3 to 30 do
    run e (Printf.sprintf "INSERT INTO Membership VALUES (%d, 'silver')" i)
  done;
  let analyzer = Analyzer.analyze (Engine.log e) in
  (* change Q2 to initialise Alice as 'bronze' — overwritten later, so the
     final state is unchanged and the jumper can stop at Q4 *)
  let stmt = Parser.parse_stmt "INSERT INTO Membership VALUES (1, 'bronze')" in
  let config = Whatif.Config.make ~hash_jumper:true () in
  let out =
    Whatif.run_exn ~config ~analyzer e { Analyzer.tau = 2; op = Analyzer.Change stmt }
  in
  Alcotest.(check (option int)) "hash hit at the overwrite" (Some 4)
    out.Whatif.hash_jump_at;
  Alcotest.(check bool) "declared effectless" false out.Whatif.changed;
  Alcotest.(check bool) "replay stopped early" true (out.Whatif.replayed < 5)

let test_hash_jumper_no_false_hit () =
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  run e "INSERT INTO t VALUES (1, 10)";
  run e "UPDATE t SET v = v + 1 WHERE id = 1";
  run e "UPDATE t SET v = v + 1 WHERE id = 1";
  let analyzer = Analyzer.analyze (Engine.log e) in
  (* change the seed value: every later increment produces a different
     state, so the jumper must never fire *)
  let stmt = Parser.parse_stmt "INSERT INTO t VALUES (1, 100)" in
  let config = Whatif.Config.make ~hash_jumper:true () in
  let out =
    Whatif.run_exn ~config ~analyzer e { Analyzer.tau = 2; op = Analyzer.Change stmt }
  in
  Alcotest.(check (option int)) "no hit" None out.Whatif.hash_jump_at;
  Alcotest.(check bool) "changed" true out.Whatif.changed;
  let merged = merged_universe e out in
  check Alcotest.int "new value propagated" 102 (qint merged "SELECT v FROM t")

let test_hash_at_timeline () =
  let e = Engine.create () in
  run e "CREATE TABLE t (a INT)";
  run e "INSERT INTO t VALUES (1)";
  let h_after_2 = Engine.table_hash e "t" in
  run e "INSERT INTO t VALUES (2)";
  let h_after_3 = Engine.table_hash e "t" in
  let j = Hash_jumper.of_log (Engine.log e) in
  check Alcotest.int64 "hash at 2" h_after_2 (Hash_jumper.hash_at j ~table:"t" ~index:2);
  check Alcotest.int64 "hash at 3" h_after_3 (Hash_jumper.hash_at j ~table:"t" ~index:3);
  check Alcotest.int64 "before any write" 0L (Hash_jumper.hash_at j ~table:"t" ~index:1)

(* ------------------------------------------------------------------ *)
(* Scheduler                                                            *)
(* ------------------------------------------------------------------ *)

let test_scheduler_independent_parallel () =
  let entries = [ 1; 2; 3; 4 ] in
  let ms =
    Scheduler.makespan ~entries ~edges:[] ~weight:(fun _ -> 1.0) ~workers:4
  in
  check (Alcotest.float 1e-9) "fully parallel" 1.0 ms;
  let serial =
    Scheduler.makespan ~entries ~edges:[] ~weight:(fun _ -> 1.0) ~workers:1
  in
  check (Alcotest.float 1e-9) "serial" 4.0 serial

let test_scheduler_conflict_chain () =
  let entries = [ 1; 2; 3 ] in
  let edges = [ (2, 1); (3, 2) ] in
  let ms = Scheduler.makespan ~entries ~edges ~weight:(fun _ -> 1.0) ~workers:8 in
  check (Alcotest.float 1e-9) "chain serialises" 3.0 ms

let test_dependency_edges_row_refined () =
  (* two updates to different rows produce no edge; same row does *)
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
  run e "INSERT INTO t VALUES (1, 0)";
  run e "INSERT INTO t VALUES (2, 0)";
  run e "UPDATE t SET v = 1 WHERE id = 1";
  run e "UPDATE t SET v = 2 WHERE id = 2";
  run e "UPDATE t SET v = 3 WHERE id = 1";
  let analyzer = Analyzer.analyze (Engine.log e) in
  let members = Array.make 6 true in
  members.(0) <- false;
  let edges = Analyzer.dependency_edges analyzer ~members in
  Alcotest.(check bool) "same-row updates ordered" true (List.mem (6, 4) edges);
  Alcotest.(check bool) "different-row updates unordered" true
    (not (List.mem (5, 4) edges))

(* ------------------------------------------------------------------ *)
(* Property: what-if == full-replay oracle on random histories          *)
(* ------------------------------------------------------------------ *)

let random_history prng n =
  let stmts = ref [] in
  for _ = 1 to n do
    let id () = 1 + Uv_util.Prng.int prng 6 in
    let sql =
      match Uv_util.Prng.int prng 6 with
      | 0 ->
          Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)"
            (100 + Uv_util.Prng.int prng 10_000)
            (Uv_util.Prng.int prng 50) (Uv_util.Prng.int prng 50)
      | 1 ->
          Printf.sprintf "UPDATE t SET v = %d WHERE id = %d"
            (Uv_util.Prng.int prng 100) (id ())
      | 2 ->
          Printf.sprintf "UPDATE t SET w = w + %d WHERE v > %d"
            (Uv_util.Prng.int prng 5) (Uv_util.Prng.int prng 60)
      | 3 -> Printf.sprintf "DELETE FROM t WHERE id = %d" (id ())
      | 4 ->
          (* derived-table copy: INSERT ... SELECT (skipped as a SQL error
             by histories whose fixture lacks table d) *)
          Printf.sprintf "INSERT INTO d SELECT id, v + w FROM t WHERE v > %d"
            (Uv_util.Prng.int prng 80)
      | _ ->
          Printf.sprintf
            "INSERT INTO d SELECT v, COUNT(*) FROM t GROUP BY v HAVING COUNT(*) >= %d"
            (1 + Uv_util.Prng.int prng 2)
    in
    stmts := sql :: !stmts
  done;
  List.rev !stmts

let whatif_matches_oracle seed =
  let prng = Uv_util.Prng.create seed in
  let e = Engine.create () in
  run e "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)";
  run e "CREATE TABLE d (k INT, x INT)";
  for i = 1 to 6 do
    run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)" i (i * 10) 0)
  done;
  List.iter
    (fun sql -> try run e sql with Engine.Sql_error _ -> ())
    (random_history prng 25);
  let n = Log.length (Engine.log e) in
  let tau = 9 + Uv_util.Prng.int prng (n - 9) in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau; op = Analyzer.Remove } in
  let truth = oracle_replay e ~skip:tau in
  let merged = merged_universe e out in
  all_hashes truth = all_hashes merged

let prop_whatif_oracle =
  QCheck.Test.make ~name:"whatif remove == full-replay oracle (random histories)"
    ~count:60
    QCheck.(int_range 0 100_000)
    whatif_matches_oracle

(* column-only mode must also be correct (row analysis only prunes) *)
let prop_colonly_oracle =
  QCheck.Test.make ~name:"column-only whatif == oracle" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Uv_util.Prng.create (seed + 7) in
      let e = Engine.create () in
      run e "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)";
      for i = 1 to 6 do
        run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 0)" i (i * 10))
      done;
      List.iter
        (fun sql -> try run e sql with Engine.Sql_error _ -> ())
        (random_history prng 20);
      let n = Log.length (Engine.log e) in
      let tau = 8 + Uv_util.Prng.int prng (n - 8) in
      let analyzer = Analyzer.analyze (Engine.log e) in
      let config = Whatif.Config.make ~mode:Analyzer.Col_only () in
      let out = Whatif.run_exn ~config ~analyzer e { Analyzer.tau; op = Analyzer.Remove } in
      let truth = oracle_replay e ~skip:tau in
      all_hashes truth = all_hashes (merged_universe e out))

(* oracle for Add/Change: full replay with the operation applied at tau *)
let oracle_with_op e tau op =
  let e2 = Engine.create () in
  let exec_stmt ?nondet ?app_txn stmt =
    try ignore (Engine.exec ?nondet ?app_txn e2 stmt)
    with Engine.Sql_error _ | Engine.Signal_raised _ -> ()
  in
  Log.iter (Engine.log e) (fun entry ->
      if entry.Log.index = tau then begin
        match op with
        | Analyzer.Add stmt ->
            exec_stmt stmt;
            exec_stmt ~nondet:entry.Log.nondet ?app_txn:entry.Log.app_txn
              entry.Log.stmt
        | Analyzer.Change stmt -> exec_stmt stmt
        | Analyzer.Remove -> ()
      end
      else
        exec_stmt ~nondet:entry.Log.nondet ?app_txn:entry.Log.app_txn
          entry.Log.stmt);
  e2

let random_op prng =
  let fresh_insert () =
    Parser.parse_stmt
      (Printf.sprintf "INSERT INTO t VALUES (%d, %d, %d)"
         (10_000 + Uv_util.Prng.int prng 10_000)
         (Uv_util.Prng.int prng 50) (Uv_util.Prng.int prng 50))
  in
  let touch_update () =
    Parser.parse_stmt
      (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d"
         (Uv_util.Prng.int prng 100)
         (1 + Uv_util.Prng.int prng 6))
  in
  match Uv_util.Prng.int prng 3 with
  | 0 -> Analyzer.Add (fresh_insert ())
  | 1 -> Analyzer.Add (touch_update ())
  | _ -> Analyzer.Change (touch_update ())

let prop_add_change_oracle =
  QCheck.Test.make ~name:"whatif add/change == oracle (random histories)"
    ~count:60
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Uv_util.Prng.create (seed + 23) in
      let e = Engine.create () in
      run e "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)";
      run e "CREATE TABLE d (k INT, x INT)";
      for i = 1 to 6 do
        run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 0)" i (i * 10))
      done;
      List.iter
        (fun sql -> try run e sql with Engine.Sql_error _ -> ())
        (random_history prng 20);
      let n = Log.length (Engine.log e) in
      let tau = 9 + Uv_util.Prng.int prng (n - 9) in
      let op = random_op prng in
      let analyzer = Analyzer.analyze (Engine.log e) in
      let out = Whatif.run_exn ~analyzer e { Analyzer.tau; op } in
      let truth = oracle_with_op e tau op in
      all_hashes truth = all_hashes (merged_universe e out))

(* row-only mode is likewise sound on its own (Theorem E.20's two
   independent over-approximations) *)
let prop_rowonly_oracle =
  QCheck.Test.make ~name:"row-only whatif == oracle" ~count:30
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Uv_util.Prng.create (seed + 13) in
      let e = Engine.create () in
      run e "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)";
      run e "CREATE TABLE d (k INT, x INT)";
      for i = 1 to 6 do
        run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 0)" i (i * 10))
      done;
      List.iter
        (fun sql -> try run e sql with Engine.Sql_error _ -> ())
        (random_history prng 20);
      let n = Log.length (Engine.log e) in
      let tau = 9 + Uv_util.Prng.int prng (n - 9) in
      let analyzer = Analyzer.analyze (Engine.log e) in
      let config = Whatif.Config.make ~mode:Analyzer.Row_only () in
      let out = Whatif.run_exn ~config ~analyzer e { Analyzer.tau; op = Analyzer.Remove } in
      let truth = oracle_replay e ~skip:tau in
      all_hashes truth = all_hashes (merged_universe e out))

(* cell-wise replay set is never larger than either single analysis *)
let prop_cell_subset =
  QCheck.Test.make ~name:"|cell| <= min(|col|, |row|)" ~count:40
    QCheck.(int_range 0 100_000)
    (fun seed ->
      let prng = Uv_util.Prng.create (seed + 13) in
      let e = Engine.create () in
      run e "CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)";
      for i = 1 to 6 do
        run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d, 0)" i (i * 10))
      done;
      List.iter
        (fun sql -> try run e sql with Engine.Sql_error _ -> ())
        (random_history prng 20);
      let analyzer = Analyzer.analyze (Engine.log e) in
      let rs = Analyzer.replay_set analyzer { Analyzer.tau = 8; op = Analyzer.Remove } in
      rs.Analyzer.member_count <= rs.Analyzer.col_only_count
      && rs.Analyzer.member_count <= rs.Analyzer.row_only_count)


(* ------------------------------------------------------------------ *)
(* Scenario tree (§6)                                                   *)
(* ------------------------------------------------------------------ *)

let test_scenario_branching () =
  let e = build_figure6 () in
  let root = Scenario.root ~name:"reality" e in
  (* branch 1: Alice never registered her address *)
  let no_addr, out1 =
    Scenario.branch ~name:"no-address" root { Analyzer.tau = 7; op = Analyzer.Remove }
  in
  Alcotest.(check bool) "branch changed" true out1.Whatif.changed;
  check Alcotest.int "no orders without address" 0
    (Value.to_int
       (List.hd (Scenario.query_sql no_addr "SELECT COUNT(*) FROM Orders").Engine.rows).(0));
  (* the root is untouched *)
  check Alcotest.int "reality still has the order" 1
    (Value.to_int
       (List.hd (Scenario.query_sql root "SELECT COUNT(*) FROM Orders").Engine.rows).(0));
  (* branch the BRANCH: in the no-address world, Bob registers one *)
  let bob_addr, _ =
    Scenario.branch ~name:"bob-registers" no_addr
      {
        Analyzer.tau = 9;
        op = Analyzer.Add (Parser.parse_stmt "INSERT INTO Address VALUES ('bob99', 'Tokyo')");
      }
  in
  check Alcotest.int "bob's order succeeds in the grandchild" 1
    (Value.to_int
       (List.hd (Scenario.query_sql bob_addr "SELECT COUNT(*) FROM Orders").Engine.rows).(0));
  check Alcotest.(list string) "lineage" [ "reality"; "no-address"; "bob-registers" ]
    (Scenario.lineage bob_addr);
  check Alcotest.int "depth" 2 (Scenario.depth bob_addr);
  check Alcotest.int "root has one child" 1 (List.length (Scenario.children root))

let test_whatif_insert_select_dependency () =
  (* the payroll pattern: INSERT ... SELECT propagates a tainted write into
     a derived table; removing the taint repairs the copy but preserves
     later independent changes *)
  let e = Engine.create () in
  List.iter (run e)
    [
      "CREATE TABLE staff (id INT PRIMARY KEY, salary INT)";
      "CREATE TABLE payouts (month INT, staff_id INT, amount INT)";
      "INSERT INTO staff VALUES (1, 3000), (2, 4200)";
      "UPDATE staff SET salary = 9000 WHERE id = 1"; (* tau = 4: the attack *)
      "UPDATE staff SET salary = 4500 WHERE id = 2"; (* independent raise *)
      "INSERT INTO payouts SELECT 2, id, salary FROM staff";
    ];
  let analyzer = Analyzer.analyze (Engine.log e) in
  let target = { Analyzer.tau = 4; op = Analyzer.Remove } in
  let rs = Analyzer.replay_set analyzer target in
  Alcotest.(check bool) "insert-select is tainted" true rs.Analyzer.members.(5);
  Alcotest.(check bool) "independent raise is not" false rs.Analyzer.members.(4);
  let out = Whatif.run_exn ~analyzer e target in
  let truth = oracle_replay e ~skip:4 in
  check table_testable "equals full-replay oracle" (all_hashes truth)
    (all_hashes (merged_universe e out))

let test_retroactive_ddl_operations () =
  (* retroactively ADD a CREATE INDEX: pure access-path change, so the
     universe must be judged unchanged; retroactively ADD an ALTER TABLE
     and the later inserts gain the column *)
  (* column-listed INSERTs so they still apply after a retroactive ALTER
     widens the table (a column-less INSERT would fail, exactly as it
     would on MySQL) *)
  let e = Engine.create () in
  List.iter (run e)
    [
      "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
      "INSERT INTO t (id, v) VALUES (1, 10)";
      "UPDATE t SET v = v + 1 WHERE id = 1";
      "INSERT INTO t (id, v) VALUES (2, 20)";
    ];
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out =
    Whatif.run_exn ~analyzer e
      {
        Analyzer.tau = 2;
        op = Analyzer.Add (Parser.parse_stmt "CREATE INDEX iv ON t (v)");
      }
  in
  (* a new index changes the catalog (changed = true) but not the data *)
  Alcotest.(check bool) "index addition is a catalog change" true
    out.Whatif.changed;
  Alcotest.(check bool) "index addition leaves the data identical" true
    (Int64.equal
       (Catalog.db_hash out.Whatif.temp_catalog)
       (Engine.db_hash e));
  (* retroactive ALTER: every later writer of t joins via the _S key *)
  let out2 =
    Whatif.run_exn ~analyzer e
      {
        Analyzer.tau = 2;
        op = Analyzer.Add (Parser.parse_stmt "ALTER TABLE t ADD COLUMN w INT");
      }
  in
  Alcotest.(check bool) "schema change replays later writers" true
    (out2.Whatif.replayed >= 3);
  let r =
    Whatif.query_new_universe out2
      (match Parser.parse_stmt "SELECT w FROM t WHERE id = 2" with
      | Ast.Select s -> s
      | _ -> assert false)
  in
  Alcotest.(check bool) "new column exists and is NULL" true
    (match r.Engine.rows with [ row ] -> Value.is_null row.(0) | _ -> false);
  (* removing a CREATE VIEW drops the view but leaves the base data *)
  let e2 = Engine.create () in
  List.iter (run e2)
    [
      "CREATE TABLE b (x INT)";
      "CREATE VIEW vb AS SELECT x FROM b";
      "INSERT INTO b VALUES (1)";
    ];
  let analyzer2 = Analyzer.analyze (Engine.log e2) in
  let out3 =
    Whatif.run_exn ~analyzer:analyzer2 e2 { Analyzer.tau = 2; op = Analyzer.Remove }
  in
  let merged = merged_universe e2 out3 in
  Alcotest.(check bool) "view gone" true
    (Catalog.view (Engine.catalog merged) "vb" = None);
  check Alcotest.int "base rows intact" 1 (qint merged "SELECT COUNT(*) FROM b")

let test_explain_provenance () =
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let target = { Analyzer.tau = 7; op = Analyzer.Remove } in
  let rs, prov = Analyzer.replay_set_explained analyzer target in
  (* same membership as the plain API *)
  let rs' = Analyzer.replay_set analyzer target in
  Alcotest.(check (array bool)) "same members" rs'.Analyzer.members rs.Analyzer.members;
  (* non-members carry no provenance, members carry some *)
  Array.iteri
    (fun j p ->
      Alcotest.(check bool)
        (Printf.sprintf "provenance presence for %d" (j + 1))
        rs.Analyzer.members.(j) (p <> None))
    prov;
  (* Q8 (Alice's order) was pulled in directly by the removed Address row *)
  (match prov.(7) with
  | Some p ->
      Alcotest.(check bool) "order joined via the target" true
        (p.Analyzer.p_col_via = Some 0 || p.Analyzer.p_row_via = Some 0)
  | None -> Alcotest.fail "order must be a member");
  (* Q11 (stats) was pulled in by Q8's Orders write *)
  (match prov.(10) with
  | Some p ->
      Alcotest.(check bool) "stats joined via the order" true
        (p.Analyzer.p_col_via = Some 8 || p.Analyzer.p_row_via = Some 8)
  | None -> Alcotest.fail "stats must be a member");
  (* pairwise detail: the order and the stats conflict on Orders *)
  let cols = Analyzer.conflict_columns analyzer 8 11 in
  Alcotest.(check bool) "Orders column conflict" true
    (List.exists (fun c -> String.length c > 7 && String.sub c 0 7 = "Orders.") cols);
  (* the two email updates share a column (both write Users.email) but are
     row-disjoint (alice vs bob) — exactly the cell-wise distinction *)
  Alcotest.(check bool) "emails share a column" true
    (List.mem "Users.email" (Analyzer.conflict_columns analyzer 12 13));
  Alcotest.(check (list (pair string (list string))))
    "emails are row-disjoint" []
    (Analyzer.conflict_tables analyzer 12 13);
  (* report: one line per member, mentioning the direct seed *)
  let rs2, lines = Analyzer.explain_report analyzer target in
  Alcotest.(check int) "one line per member" rs2.Analyzer.member_count
    (List.length lines);
  let contains hay needle =
    let hn = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= hn && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "a line cites the target" true
    (List.exists
       (fun l ->
         String.length l >= 3 && String.sub l 0 3 = "#8 " && contains l "the target")
       lines)

let test_branch_seq_multi_target () =
  (* branch_seq applies several retroactive targets as one scenario, in
     descending commit order so each earlier index stays valid.  The result
     must equal chaining individual branches by hand in that order. *)
  let e = build_figure6 () in
  let root = Scenario.root ~name:"reality" e in
  let targets =
    [
      { Analyzer.tau = 7; op = Analyzer.Remove };
      (* remove a later entry too: the second INSERT into Address at index 8
         does not exist in Figure 6, so aim at the order placement itself *)
      { Analyzer.tau = 8; op = Analyzer.Remove };
    ]
  in
  let combined, outcomes = Scenario.branch_seq ~name:"combined" root targets in
  Alcotest.(check int) "two outcomes" 2 (List.length outcomes);
  (* manual: apply tau=8 first (descending), then tau=7 *)
  let s1, _ = Scenario.branch root { Analyzer.tau = 8; op = Analyzer.Remove } in
  let s2, _ = Scenario.branch s1 { Analyzer.tau = 7; op = Analyzer.Remove } in
  check table_testable "branch_seq equals manual descending chain"
    (all_hashes (Scenario.engine s2))
    (all_hashes (Scenario.engine combined));
  (* tree stays tidy: root gains exactly the named child, no intermediates *)
  Alcotest.(check bool) "combined is a direct child of root" true
    (List.exists (fun c -> Scenario.name c = "combined") (Scenario.children root));
  Alcotest.(check (list string)) "lineage skips intermediates"
    [ "reality"; "combined" ] (Scenario.lineage combined);
  (* parent untouched *)
  check Alcotest.int "reality still has the order" 1
    (Value.to_int
       (List.hd (Scenario.query_sql root "SELECT COUNT(*) FROM Orders").Engine.rows).(0))

let test_new_log_replayable () =
  (* the merged new-universe log, replayed from scratch, rebuilds the
     new universe exactly *)
  let e = build_figure6 () in
  let analyzer = Analyzer.analyze (Engine.log e) in
  let out = Whatif.run_exn ~analyzer e { Analyzer.tau = 7; op = Analyzer.Remove } in
  let rebuilt = Engine.create () in
  Log.iter out.Whatif.new_log (fun entry ->
      try ignore (Engine.exec ~nondet:entry.Log.nondet rebuilt entry.Log.stmt)
      with Engine.Sql_error _ | Engine.Signal_raised _ -> ());
  let merged = merged_universe e out in
  check table_testable "rebuilt universe equals merged"
    (all_hashes merged) (all_hashes rebuilt);
  check Alcotest.int "one entry fewer" (Log.length (Engine.log e) - 1)
    (Log.length out.Whatif.new_log)

let prop_branching_isolates_parent =
  QCheck.Test.make ~name:"branching never mutates the parent universe" ~count:30
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let prng = Uv_util.Prng.create seed in
      let e = Engine.create () in
      run e "CREATE TABLE t (id INT PRIMARY KEY, v INT)";
      for i = 1 to 5 do
        run e (Printf.sprintf "INSERT INTO t VALUES (%d, %d)" i (i * 10))
      done;
      for _ = 1 to 12 do
        let id = 1 + Uv_util.Prng.int prng 5 in
        run e
          (Printf.sprintf "UPDATE t SET v = %d WHERE id = %d"
             (Uv_util.Prng.int prng 100) id)
      done;
      let root = Scenario.root e in
      let before = Scenario.db_hash root in
      let n = Scenario.history_length root in
      let tau = 6 + Uv_util.Prng.int prng (n - 6) in
      let child, _ = Scenario.branch root { Analyzer.tau; op = Analyzer.Remove } in
      ignore (Scenario.db_hash child);
      Int64.equal before (Scenario.db_hash root))

(* ------------------------------------------------------------------ *)
(* Concurrency-control scheduling (§6)                                  *)
(* ------------------------------------------------------------------ *)

let cc_base () =
  let e = Engine.create () in
  run e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)";
  run e "INSERT INTO acct VALUES (1, 100), (2, 100), (3, 100), (4, 100)";
  e

let test_cc_disjoint_rows_one_wave () =
  let e = cc_base () in
  let stmts =
    List.map Parser.parse_stmt
      [
        "UPDATE acct SET bal = bal + 1 WHERE id = 1";
        "UPDATE acct SET bal = bal + 1 WHERE id = 2";
        "UPDATE acct SET bal = bal + 1 WHERE id = 3";
      ]
  in
  let plan = Cc_schedule.plan ~base:(Engine.catalog e) stmts in
  check Alcotest.int "single wave" 1 (Cc_schedule.wave_count plan);
  check Alcotest.int "no conflicts" 0 plan.Cc_schedule.conflict_edges

let test_cc_same_row_serialises () =
  let e = cc_base () in
  let stmts =
    List.map Parser.parse_stmt
      [
        "UPDATE acct SET bal = bal + 1 WHERE id = 1";
        "UPDATE acct SET bal = bal * 2 WHERE id = 1";
        "UPDATE acct SET bal = bal + 5 WHERE id = 2";
      ]
  in
  let plan = Cc_schedule.plan ~base:(Engine.catalog e) stmts in
  check Alcotest.int "two waves" 2 (Cc_schedule.wave_count plan);
  (match plan.Cc_schedule.waves with
  | [ w1; w2 ] ->
      Alcotest.(check (list int)) "first wave" [ 0; 2 ] w1;
      Alcotest.(check (list int)) "second wave" [ 1 ] w2
  | _ -> Alcotest.fail "wave shape");
  (* executing the plan preserves serial semantics *)
  let plan_exec_hash =
    let e2 = cc_base () in
    ignore (Cc_schedule.execute e2 stmts plan);
    Engine.table_hash e2 "acct"
  in
  let serial_hash =
    let e3 = cc_base () in
    List.iter (fun s -> ignore (Engine.exec e3 s)) stmts;
    Engine.table_hash e3 "acct"
  in
  check Alcotest.int64 "plan == serial" serial_hash plan_exec_hash

let test_cc_ddl_serialises_everything () =
  let e = cc_base () in
  let stmts =
    List.map Parser.parse_stmt
      [
        "UPDATE acct SET bal = 0 WHERE id = 1";
        "ALTER TABLE acct ADD COLUMN note VARCHAR(8)";
        "UPDATE acct SET bal = 0 WHERE id = 2";
      ]
  in
  let plan = Cc_schedule.plan ~base:(Engine.catalog e) stmts in
  Alcotest.(check bool) "ddl forces ordering" true (Cc_schedule.wave_count plan >= 2)

let prop_cc_plan_equals_serial =
  QCheck.Test.make ~name:"wave execution == serial execution" ~count:50
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let prng = Uv_util.Prng.create seed in
      let e = cc_base () in
      let stmts =
        List.init 12 (fun _ ->
            let id = 1 + Uv_util.Prng.int prng 4 in
            Parser.parse_stmt
              (match Uv_util.Prng.int prng 3 with
              | 0 ->
                  Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d"
                    (Uv_util.Prng.int prng 10) id
              | 1 ->
                  Printf.sprintf "UPDATE acct SET bal = bal * 2 WHERE id = %d" id
              | _ ->
                  Printf.sprintf "INSERT INTO acct VALUES (%d, %d)"
                    (10 + Uv_util.Prng.int prng 1000)
                    (Uv_util.Prng.int prng 100)))
      in
      let plan = Cc_schedule.plan ~base:(Engine.catalog e) stmts in
      let h_plan =
        let e2 = cc_base () in
        ignore (Cc_schedule.execute e2 stmts plan);
        Engine.table_hash e2 "acct"
      in
      let h_serial =
        let e3 = cc_base () in
        List.iter
          (fun s -> try ignore (Engine.exec e3 s) with Engine.Sql_error _ -> ())
          stmts;
        Engine.table_hash e3 "acct"
      in
      Int64.equal h_plan h_serial)

(* ------------------------------------------------------------------ *)
(* Session caches: incremental analyzer, plan cache, checkpoint ladder  *)
(* ------------------------------------------------------------------ *)

let session_base () =
  let e = Engine.create () in
  run e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)";
  for i = 1 to 4 do
    run e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i)
  done;
  let base = Engine.snapshot e in
  Engine.reset_log e;
  (e, base)

(* [hot] concentrates every update on one row so each entry depends on
   all earlier ones (dense replay sets, compilable statements) *)
let session_grow ?(hot = false) e k =
  for i = 1 to k do
    run e
      (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i
         (if hot then 1 else 1 + (i mod 4)))
  done

let remove1 = { Analyzer.tau = 1; op = Analyzer.Remove }

let ok_run s target =
  match Whatif.Session.run s target with
  | Ok o -> o
  | Error e ->
      Alcotest.failf "session run aborted: %s" (Whatif.Error.to_string e)

let fresh_run ?config e base target =
  let analyzer = Analyzer.analyze ~base (Engine.log e) in
  Whatif.run_exn ?config ~analyzer e target

let test_session_extend_matches_fresh () =
  let e, base = session_base () in
  session_grow e 10;
  let s = Whatif.Service.open_session @@ Whatif.Service.create ~base e in
  ignore (ok_run s remove1);
  session_grow e 10;
  let o2 = ok_run s remove1 in
  let o3 = fresh_run e base remove1 in
  check Alcotest.int64 "extended analyzer, same universe"
    o3.Whatif.final_db_hash o2.Whatif.final_db_hash;
  check Alcotest.int "same replay set" o3.Whatif.replayed o2.Whatif.replayed;
  let st = Whatif.Session.stats s in
  check Alcotest.int "one full build" 1 st.Whatif.Session.analyzer_builds;
  check Alcotest.bool "the growth was an extend" true
    (st.Whatif.Session.analyzer_extends >= 1);
  check Alcotest.int "covers the whole log"
    (Log.length (Engine.log e))
    st.Whatif.Session.analyzed_entries

let test_session_ddl_rebuilds () =
  let e, base = session_base () in
  session_grow e 6;
  let s = Whatif.Service.open_session @@ Whatif.Service.create ~base e in
  ignore (ok_run s remove1);
  run e "CREATE TABLE audit (k INT PRIMARY KEY)";
  run e "INSERT INTO audit VALUES (1)";
  session_grow e 2;
  let o = ok_run s remove1 in
  let o' = fresh_run e base remove1 in
  check Alcotest.int64 "DDL-rebuilt session matches fresh"
    o'.Whatif.final_db_hash o.Whatif.final_db_hash;
  let st = Whatif.Session.stats s in
  check Alcotest.int "mid-history DDL forced a rebuild" 2
    st.Whatif.Session.analyzer_builds

let test_session_truncation_rebuilds () =
  let e, base = session_base () in
  session_grow e 8;
  let s = Whatif.Service.open_session @@ Whatif.Service.create ~base e in
  ignore (ok_run s remove1);
  (* the history is rewritten in place: a shorter log must force a full
     recompute, never an extend over a stale prefix *)
  Engine.reset_log e;
  session_grow e 5;
  let o = ok_run s remove1 in
  let o' = fresh_run e base remove1 in
  check Alcotest.int64 "rebuilt after truncation"
    o'.Whatif.final_db_hash o.Whatif.final_db_hash;
  let st = Whatif.Session.stats s in
  check Alcotest.int "truncation forced a rebuild" 2
    st.Whatif.Session.analyzer_builds;
  check Alcotest.int "covers only the new log" 5
    st.Whatif.Session.analyzed_entries

let test_session_plans_and_invalidate () =
  let e, base = session_base () in
  session_grow ~hot:true e 12;
  let s = Whatif.Service.open_session @@ Whatif.Service.create ~base e in
  let o1 = ok_run s remove1 in
  let o2 = ok_run s remove1 in
  check Alcotest.int64 "repeat run identical" o1.Whatif.final_db_hash
    o2.Whatif.final_db_hash;
  check Alcotest.bool "members replayed through plans" true
    (o2.Whatif.plans_used > 0);
  let st = Whatif.Session.stats s in
  check Alcotest.bool "second run hit the plan cache" true
    (st.Whatif.Session.plan_cache_hits > 0);
  check Alcotest.bool "plans compiled" true
    (st.Whatif.Session.plans_compiled > 0);
  (* the plan cache is an accelerator, not a semantic input *)
  let off =
    let s_off =
      Whatif.Service.open_session @@ Whatif.Service.create
        ~config:(Whatif.Config.make ~plans:false ())
        ~base e
    in
    ok_run s_off remove1
  in
  check Alcotest.int "plans off replays none through plans" 0
    off.Whatif.plans_used;
  check Alcotest.int64 "identical with plans off" o1.Whatif.final_db_hash
    off.Whatif.final_db_hash;
  Whatif.Session.invalidate s;
  let st0 = Whatif.Session.stats s in
  check Alcotest.int "invalidate drops the plan cache" 0
    st0.Whatif.Session.plan_cache_size;
  check Alcotest.int "invalidate drops the analyzer" 0
    st0.Whatif.Session.analyzed_entries;
  let o3 = ok_run s remove1 in
  check Alcotest.int64 "forced recompute reproduces" o1.Whatif.final_db_hash
    o3.Whatif.final_db_hash;
  check Alcotest.int "recompute was a fresh build" 2
    (Whatif.Session.stats s).Whatif.Session.analyzer_builds

let test_session_checkpoint_jump_matches_undo () =
  let history e =
    for i = 1 to 40 do
      run e (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = 1" i)
    done
  in
  (* ladder engine: the session enables checkpointing, rungs accumulate
     as the history commits *)
  let e1, base1 = session_base () in
  let s =
    Whatif.Service.open_session @@ Whatif.Service.create
      ~config:(Whatif.Config.make ~checkpoint_every:8 ())
      ~base:base1 e1
  in
  history e1;
  let target = { Analyzer.tau = 10; op = Analyzer.Remove } in
  let o_jump = ok_run s target in
  (* plain engine, same statements, no ladder *)
  let e2, base2 = session_base () in
  history e2;
  let o_undo = fresh_run e2 base2 target in
  check Alcotest.string "ladder rollback jumped" "checkpoint"
    o_jump.Whatif.rollback_strategy;
  check Alcotest.string "plain rollback undid" "undo"
    o_undo.Whatif.rollback_strategy;
  check Alcotest.int64 "identical universes" o_undo.Whatif.final_db_hash
    o_jump.Whatif.final_db_hash;
  check Alcotest.bool "the ladder recorded rungs" true
    ((Whatif.Session.stats s).Whatif.Session.checkpoint_rungs > 0);
  let again = ok_run s target in
  check Alcotest.int64 "jump reproduces across runs"
    o_jump.Whatif.final_db_hash again.Whatif.final_db_hash

(* ------------------------------------------------------------------ *)
(* Service: shared snapshots under concurrent what-ifs and ingest       *)
(* ------------------------------------------------------------------ *)

let svc_config = Whatif.Config.make ~workers:1 ()

let test_service_concurrent_runs_match_serial () =
  (* N reader domains ask what-ifs while the main domain keeps
     ingesting; every reply must equal the one-shot answer over exactly
     the history prefix the service reports it used *)
  let e, base = session_base () in
  session_grow e 12;
  let svc = Whatif.Service.create ~config:svc_config ~base e in
  Whatif.Service.publish svc;
  let grow_len = Log.length (Engine.log e) in
  let tail =
    List.init 30 (fun i ->
        Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" (50 + i)
          (1 + (i mod 4)))
  in
  let results = Array.make 4 [] in
  let ingest_done = Atomic.make false in
  (* the service lock is reader-preferring, so a continuous reader
     stream would starve the ingest writer outright (single-core boxes
     especially); readers yield whenever the writer raises its hand *)
  let writer_waiting = Atomic.make false in
  let readers =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            (* keep asking until the ingest stream ends, so runs overlap
               every prefix the writer publishes *)
            let acc = ref [] and i = ref 0 in
            while (not (Atomic.get ingest_done)) || !i < 8 do
              while Atomic.get writer_waiting do
                Domain.cpu_relax ()
              done;
              let tau = 1 + ((!i + d) mod 8) in
              (match
                 Whatif.Service.run svc { Analyzer.tau; op = Analyzer.Remove }
               with
              | Ok r ->
                  acc :=
                    ( tau,
                      r.Whatif.Service.history_len,
                      r.Whatif.Service.outcome.Whatif.final_db_hash )
                    :: !acc
              | Error err ->
                  Alcotest.failf "service run aborted: %s"
                    (Whatif.Error.to_string err));
              incr i
            done;
            results.(d) <- !acc))
  in
  List.iter
    (fun sql ->
      Atomic.set writer_waiting true;
      let applied, failed = Whatif.Service.ingest_sql svc sql in
      Atomic.set writer_waiting false;
      let t0 = Uv_util.Clock.now_ms () in
      while Uv_util.Clock.now_ms () -. t0 < 0.5 do
        Domain.cpu_relax ()
      done;
      check Alcotest.int "ingest applied" 1 applied;
      check Alcotest.int "ingest failed" 0 failed)
    tail;
  Atomic.set ingest_done true;
  List.iter Domain.join readers;
  check Alcotest.int "history grew under readers"
    (grow_len + List.length tail)
    (Whatif.Service.history_len svc);
  (* serial re-derivation of every distinct (tau, prefix) answer *)
  let seen = Hashtbl.create 64 in
  Array.iter
    (List.iter (fun (tau, len, hash) ->
         match Hashtbl.find_opt seen (tau, len) with
         | Some h ->
             check Alcotest.int64 "same point, same universe" h hash
         | None -> Hashtbl.add seen (tau, len) hash))
    results;
  Hashtbl.iter
    (fun (tau, len) hash ->
      let e2, base2 = session_base () in
      session_grow e2 12;
      List.iteri
        (fun i sql -> if grow_len + i < len then run e2 sql)
        tail;
      check Alcotest.int "prefix length" len (Log.length (Engine.log e2));
      let o = fresh_run ~config:svc_config e2 base2 { Analyzer.tau; op = Analyzer.Remove } in
      check Alcotest.int64
        (Printf.sprintf "tau=%d len=%d matches one-shot" tau len)
        o.Whatif.final_db_hash hash)
    seen;
  let distinct_lens = Hashtbl.create 8 in
  Hashtbl.iter (fun (_, len) _ -> Hashtbl.replace distinct_lens len ()) seen;
  Alcotest.(check bool) "runs interleaved with ingest" true
    (Hashtbl.length distinct_lens >= 2)

let test_service_sessions_share_caches () =
  let e, base = session_base () in
  session_grow ~hot:true e 12;
  let svc = Whatif.Service.create ~config:svc_config ~base e in
  let s1 = Whatif.Service.open_session svc in
  let s2 = Whatif.Service.open_session svc in
  let o1 = ok_run s1 remove1 in
  let o2 = ok_run s2 remove1 in
  check Alcotest.int64 "handles agree" o1.Whatif.final_db_hash
    o2.Whatif.final_db_hash;
  let st = Whatif.Service.stats svc in
  check Alcotest.int "one shared analyzer build" 1 st.Whatif.Service.analyzer_builds;
  check Alcotest.int "both handles counted" 2 st.Whatif.Service.sessions;
  Alcotest.(check bool) "second run hit the shared plan cache" true
    (st.Whatif.Service.plan_cache_hits > 0)

let test_service_ingest_counts_failures () =
  let e, base = session_base () in
  session_grow e 4;
  let svc = Whatif.Service.create ~config:svc_config ~base e in
  let applied, failed =
    Whatif.Service.ingest_sql svc
      "UPDATE acct SET bal = 1 WHERE id = 2; UPDATE nosuch SET x = 1 WHERE y \
       = 0; UPDATE acct SET bal = 2 WHERE id = 3;"
  in
  check Alcotest.int "good statements applied" 2 applied;
  check Alcotest.int "bad statement counted" 1 failed;
  (* the service still answers over the surviving history *)
  match Whatif.Service.run svc remove1 with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "run after failed ingest: %s" (Whatif.Error.to_string err)

let () =
  Alcotest.run "uv_retroactive"
    [
      ( "column-wise (Table A)",
        [
          Alcotest.test_case "create table" `Quick test_rw_create_table;
          Alcotest.test_case "select" `Quick test_rw_select;
          Alcotest.test_case "select having" `Quick test_rw_select_having;
          Alcotest.test_case "insert-select" `Quick test_rw_insert_select;
          Alcotest.test_case "insert writes all" `Quick
            test_rw_insert_writes_all_columns;
          Alcotest.test_case "auto_increment reads pk" `Quick
            test_rw_insert_auto_increment_reads_pk;
          Alcotest.test_case "update" `Quick test_rw_update_reads_and_writes;
          Alcotest.test_case "fk write propagation" `Quick test_rw_fk_write_propagation;
          Alcotest.test_case "call unions body" `Quick test_rw_call_unions_body;
          Alcotest.test_case "view expansion" `Quick test_rw_view_expansion;
          Alcotest.test_case "trigger inherited" `Quick test_rw_trigger_inherited;
          Alcotest.test_case "transaction union" `Quick test_rw_transaction_union;
          Alcotest.test_case "trigger on update" `Quick test_rw_trigger_on_update;
          Alcotest.test_case "write reads through view" `Quick
            test_rw_write_reads_through_view;
          Alcotest.test_case "explicit ai reads pk" `Quick
            test_rw_insert_explicit_ai_still_reads_pk;
          Alcotest.test_case "fk write inheritance on delete" `Quick
            test_rw_fk_write_inheritance_on_delete;
        ] );
      ( "row-wise (Table B)",
        [
          Alcotest.test_case "Table 2 independence" `Quick
            test_rowwise_table2_independence;
          Alcotest.test_case "alias columns" `Quick test_rowwise_alias;
          Alcotest.test_case "merged RI values" `Quick test_rowwise_merged_ri_values;
          Alcotest.test_case "wildcard where" `Quick test_rowwise_wildcard_where;
          Alcotest.test_case "DDL dependency" `Quick test_ddl_dependency;
          Alcotest.test_case "read-only excluded" `Quick test_read_only_never_joins;
          Alcotest.test_case "equality constraint" `Quick
            test_tableb_equality_constraint;
          Alcotest.test_case "IN list" `Quick test_tableb_in_list;
          Alcotest.test_case "AND intersects" `Quick test_tableb_and_intersects;
          Alcotest.test_case "OR unions" `Quick test_tableb_or_unions;
          Alcotest.test_case "range wildcard" `Quick test_tableb_range_is_wildcard;
          Alcotest.test_case "insert key" `Quick test_tableb_insert_writes_key;
        ] );
      ( "figure 6 what-if",
        [
          Alcotest.test_case "remove address" `Quick test_figure6_remove_address;
          Alcotest.test_case "add address for bob" `Quick
            test_figure6_add_address_for_bob;
          Alcotest.test_case "change query" `Quick test_figure6_change_query;
          Alcotest.test_case "mutated/consulted" `Quick
            test_mutated_consulted_classification;
          Alcotest.test_case "read-only target" `Quick test_remove_readonly_target;
          Alcotest.test_case "add at end" `Quick test_add_at_end_of_history;
          Alcotest.test_case "remove create table" `Quick test_remove_create_table;
          Alcotest.test_case "retroactive DDL ops" `Quick
            test_retroactive_ddl_operations;
          Alcotest.test_case "explain provenance" `Quick test_explain_provenance;
          Alcotest.test_case "insert-select dependency" `Quick
            test_whatif_insert_select_dependency;
        ] );
      ( "hash-jumper",
        [
          Alcotest.test_case "figure 7 early stop" `Quick test_hash_jumper_figure7;
          Alcotest.test_case "no false hit" `Quick test_hash_jumper_no_false_hit;
          Alcotest.test_case "hash timeline" `Quick test_hash_at_timeline;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "independent parallel" `Quick
            test_scheduler_independent_parallel;
          Alcotest.test_case "conflict chain" `Quick test_scheduler_conflict_chain;
          Alcotest.test_case "row-refined edges" `Quick
            test_dependency_edges_row_refined;
        ] );
      ( "oracle properties",
        [
          qtest prop_whatif_oracle;
          qtest prop_colonly_oracle;
          qtest prop_rowonly_oracle;
          qtest prop_add_change_oracle;
          qtest prop_cell_subset;
        ]
      );
      ( "scenarios (§6)",
        [
          Alcotest.test_case "branch and re-branch" `Quick test_scenario_branching;
          Alcotest.test_case "branch_seq multi-target" `Quick
            test_branch_seq_multi_target;
          Alcotest.test_case "merged log replayable" `Quick test_new_log_replayable;
          qtest prop_branching_isolates_parent;
        ] );
      ( "session caches",
        [
          Alcotest.test_case "extend matches fresh analyze" `Quick
            test_session_extend_matches_fresh;
          Alcotest.test_case "mid-history DDL rebuilds" `Quick
            test_session_ddl_rebuilds;
          Alcotest.test_case "log truncation rebuilds" `Quick
            test_session_truncation_rebuilds;
          Alcotest.test_case "plan cache & invalidate" `Quick
            test_session_plans_and_invalidate;
          Alcotest.test_case "checkpoint jump == undo" `Quick
            test_session_checkpoint_jump_matches_undo;
        ] );
      ( "service",
        [
          Alcotest.test_case "concurrent runs match serial" `Quick
            test_service_concurrent_runs_match_serial;
          Alcotest.test_case "sessions share caches" `Quick
            test_service_sessions_share_caches;
          Alcotest.test_case "ingest counts failures" `Quick
            test_service_ingest_counts_failures;
        ] );
      ( "cc scheduling (§6)",
        [
          Alcotest.test_case "disjoint rows parallel" `Quick
            test_cc_disjoint_rows_one_wave;
          Alcotest.test_case "same row serialises" `Quick test_cc_same_row_serialises;
          Alcotest.test_case "ddl serialises" `Quick test_cc_ddl_serialises_everything;
          qtest prop_cc_plan_equals_serial;
        ] );
    ]
