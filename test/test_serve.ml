(* Tests for the [ultraverse serve] daemon: protocol round-trips, typed
   admission-control and deadline errors that must never tear the
   connection down, protocol-damage handling, and clean shutdown.

   Each test starts a real daemon on a fresh Unix socket and talks to it
   through Serve.Client or raw Frame_io frames (the latter to pipeline
   requests the blocking client cannot). *)

open Uv_db
open Uv_retroactive
module J = Uv_obs.Json
module Report = Uv_obs.Report
module Frame_io = Uv_util.Frame_io

let check = Alcotest.check

(* one replay lane per request: these tests exercise concurrency across
   requests, not inside a replay *)
let svc_config = Whatif.Config.make ~workers:1 ()

let build_service n =
  let e = Engine.create () in
  ignore
    (Engine.exec_sql e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
  for i = 1 to 4 do
    ignore
      (Engine.exec_sql e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i))
  done;
  for i = 1 to n do
    ignore
      (Engine.exec_sql e
         (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i
            (1 + (i mod 4))))
  done;
  let svc = Whatif.Service.create ~config:svc_config e in
  Whatif.Service.publish svc;
  svc

let fresh_sock () =
  let p = Filename.temp_file "uv-test-serve" ".sock" in
  Sys.remove p;
  p

let with_server ?(config = Serve.default_config) ?(history = 40) f =
  let svc = build_service history in
  let addr = Serve.Unix_sock (fresh_sock ()) in
  let srv = Serve.start ~config svc addr in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv addr svc)

let expect_result = function
  | Ok (Serve.Client.Result j) -> j
  | Ok (Serve.Client.Refused { code; message; _ }) ->
      Alcotest.failf "refused [%s]: %s" code message
  | Error e -> Alcotest.failf "transport: %s" e

let member_exn k j =
  match J.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing %S in %s" k (J.to_string j)

(* ------------------------------------------------------------------ *)

let test_roundtrip_and_hash_identity () =
  with_server (fun _srv addr svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let pong = expect_result (Serve.Client.ping c) in
          check Alcotest.bool "pong" true (member_exn "pong" pong = J.Bool true);
          let r = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          let served =
            match member_exn "final_db_hash" r with
            | J.Str h -> h
            | j -> Alcotest.failf "hash not a string: %s" (J.to_string j)
          in
          (* the same question one-shot, straight through the service *)
          let oneshot =
            match
              Whatif.Service.run svc { Analyzer.tau = 3; op = Analyzer.Remove }
            with
            | Ok r -> Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash
            | Error e -> Alcotest.failf "one-shot: %s" (Whatif.Error.to_string e)
          in
          check Alcotest.string "served == one-shot universe" oneshot served;
          let stats = expect_result (Serve.Client.stats c) in
          check Alcotest.bool "stats counts the whatif" true
            (match member_exn "whatifs" stats with
            | J.Int n -> n >= 1
            | _ -> false);
          let metrics = expect_result (Serve.Client.metrics c) in
          check Alcotest.bool "metrics payload is an object" true
            (match metrics with J.Obj _ -> true | _ -> false)))

(* raw pipelined connection: the blocking client can't over-run the
   admission queue, so speak frames directly *)
let raw_connect addr =
  match addr with
  | Serve.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Serve.Tcp _ -> Alcotest.fail "unix sockets only in tests"

let raw_send fd payload =
  Frame_io.write_frame fd (Report.to_string ~schema:"uv.serve/1" payload)

let raw_recv fd =
  match Frame_io.read_frame fd with
  | Ok s -> (
      match Report.parse ~expect:"uv.serve/1" s with
      | Ok j -> j
      | Error e -> Alcotest.failf "bad envelope: %s" e)
  | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e)

let test_saturation_typed_no_teardown () =
  let config =
    { Serve.default_config with workers = 1; queue_capacity = 1 }
  in
  with_server ~config ~history:120 (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* 8 what-ifs back-to-back into a 1-worker, 1-slot queue: the
             overflow must come back [saturated], not close the socket *)
          let n = 8 in
          for i = 1 to n do
            raw_send fd
              (J.Obj
                 [
                   ("id", J.Int i);
                   ("type", J.Str "whatif");
                   ("tau", J.Int 5);
                   ("op", J.Str "remove");
                 ])
          done;
          let ok = ref 0 and saturated = ref 0 in
          for _ = 1 to n do
            let r = raw_recv fd in
            match (member_exn "ok" r, J.member "error" r) with
            | J.Bool true, _ -> incr ok
            | J.Bool false, Some err -> (
                match member_exn "code" err with
                | J.Str "saturated" ->
                    incr saturated;
                    check Alcotest.bool "carries retry_after_ms" true
                      (J.member "retry_after_ms" err <> None)
                | J.Str c -> Alcotest.failf "unexpected error code %s" c
                | _ -> Alcotest.fail "error code not a string")
            | _ -> Alcotest.fail "response without ok"
          done;
          check Alcotest.int "every request answered" n (!ok + !saturated);
          Alcotest.(check bool) "pool saturation observed" true (!saturated >= 1);
          Alcotest.(check bool) "some requests admitted" true (!ok >= 1);
          (* the connection survived every rejection *)
          raw_send fd (J.Obj [ ("id", J.Int 99); ("type", J.Str "ping") ]);
          let pong = raw_recv fd in
          check Alcotest.bool "ping after saturation" true
            (member_exn "ok" pong = J.Bool true)))

let test_deadline_typed_no_teardown () =
  with_server ~history:160 (fun _srv addr _svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* a 1 ms budget cannot cover a 160-statement replay on any
             machine this runs on; the failure must be a typed error *)
          (match Serve.Client.whatif ~deadline_ms:0.01 ~tau:3 ~op:"remove" c () with
          | Ok (Serve.Client.Refused { code = "deadline"; phase; _ }) ->
              Alcotest.(check bool) "deadline error names its phase" true
                (phase <> None)
          | Ok (Serve.Client.Refused { code; _ }) ->
              Alcotest.failf "wrong error code %s" code
          | Ok (Serve.Client.Result _) ->
              Alcotest.fail "a microsecond budget was enough?"
          | Error e -> Alcotest.failf "transport: %s" e);
          (* same connection, no deadline: the run now succeeds *)
          let r = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          check Alcotest.bool "full run after deadline error" true
            (J.member "final_db_hash" r <> None)))

let test_bad_request_typed_then_served () =
  with_server (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* unparsable JSON costs one typed error, not the connection *)
          Frame_io.write_frame fd "this is not an envelope";
          let r = raw_recv fd in
          (match J.member "error" r with
          | Some err ->
              check Alcotest.bool "bad_request code" true
                (member_exn "code" err = J.Str "bad_request")
          | None -> Alcotest.fail "damaged frame got an ok reply");
          (* a well-formed envelope with an unknown type: same deal *)
          raw_send fd (J.Obj [ ("type", J.Str "no_such_op") ]);
          let r = raw_recv fd in
          check Alcotest.bool "unknown type refused" true
            (member_exn "ok" r = J.Bool false);
          raw_send fd (J.Obj [ ("type", J.Str "ping") ]);
          check Alcotest.bool "still serving" true
            (member_exn "ok" (raw_recv fd) = J.Bool true)))

let test_oversized_frame_closes () =
  let config = { Serve.default_config with max_frame = 2048 } in
  with_server ~config (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* protocol damage proper: the stream cannot be re-synchronised,
             so the server answers once and hangs up *)
          Frame_io.write_frame fd (String.make 100_000 'x');
          (match Frame_io.read_frame fd with
          | Ok s -> (
              match Report.parse ~expect:"uv.serve/1" s with
              | Ok j ->
                  check Alcotest.bool "typed farewell" true
                    (member_exn "ok" j = J.Bool false)
              | Error e -> Alcotest.failf "farewell not an envelope: %s" e)
          | Error `Closed -> () (* immediate close is acceptable too *)
          | Error (`Oversized n) -> Alcotest.failf "server sent %d bytes" n);
          match Frame_io.read_frame fd with
          | Error `Closed -> ()
          | Ok _ -> Alcotest.fail "connection survived protocol damage"
          | Error (`Oversized n) -> Alcotest.failf "server sent %d bytes" n))

let test_ingest_visible_to_later_whatifs () =
  with_server ~history:20 (fun _srv addr _svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let len_of r =
            match member_exn "history_len" r with
            | J.Int n -> n
            | _ -> Alcotest.fail "history_len not an int"
          in
          let before = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          let r =
            expect_result
              (Serve.Client.ingest c
                 "UPDATE acct SET bal = bal + 7 WHERE id = 2; UPDATE acct SET \
                  bal = bal - 7 WHERE id = 3;")
          in
          check Alcotest.bool "both applied" true
            (member_exn "applied" r = J.Int 2);
          let after = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          check Alcotest.int "the later run sees the longer history"
            (len_of before + 2) (len_of after)))

(* ------------------------------------------------------------------ *)
(* Durability: acked ingest on disk, restart recovery, health, retry    *)
(* ------------------------------------------------------------------ *)

let with_store_dir f =
  let dir = Filename.temp_file "uv-serve-store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

(* no real fsyncs in unit tests: the crash windows themselves are the
   chaos harness's business; here we test the protocol contract *)
let dcfg = { Durable.default_config with Durable.fsync = false }

let seed_history ?(n = 20) e =
  ignore (Engine.exec_sql e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
  for i = 1 to 4 do
    ignore
      (Engine.exec_sql e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i))
  done;
  for i = 1 to n do
    ignore
      (Engine.exec_sql e
         (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i
            (1 + (i mod 4))))
  done

(* the daemon's own bring-up sequence: attach, load the script history
   on first boot, seed, serve *)
let with_durable_server ~dir f =
  let e = Engine.create () in
  let dur, recov = Durable.attach ~config:dcfg ~dir e in
  if recov.Durable.rec_records = 0 then begin
    seed_history e;
    Durable.seed dur
  end;
  let svc = Whatif.Service.create ~config:svc_config e in
  Whatif.Service.publish svc;
  let addr = Serve.Unix_sock (fresh_sock ()) in
  let srv = Serve.start ~durable:dur svc addr in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv addr svc dur)

let batch_sql =
  "UPDATE acct SET bal = bal + 7 WHERE id = 2; UPDATE acct SET bal = bal - 7 \
   WHERE id = 3;"

let test_durable_ack_means_on_disk () =
  with_store_dir @@ fun dir ->
  with_durable_server ~dir (fun _srv addr _svc dur ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let base = (Durable.stats dur).Durable.durable_len in
          let r =
            expect_result (Serve.Client.ingest ~idem_key:"batch-1" c batch_sql)
          in
          check Alcotest.bool "both applied" true
            (member_exn "applied" r = J.Int 2);
          check Alcotest.bool "ack is marked durable" true
            (member_exn "durable" r = J.Bool true);
          check Alcotest.bool "first send is no duplicate" true
            (member_exn "duplicate" r = J.Bool false);
          (* the ack in hand implies on-disk: an independent reader of
             the store directory already sees the batch *)
          let snap = Log_store.open_ dir in
          check Alcotest.int "batch durable at ack time" (base + 2)
            (Log_store.length snap);
          Log_store.close snap;
          (* lost-ack re-send under the same key: recorded ack returned,
             nothing re-executes *)
          let r2 =
            expect_result (Serve.Client.ingest ~idem_key:"batch-1" c batch_sql)
          in
          check Alcotest.bool "re-send flagged duplicate" true
            (member_exn "duplicate" r2 = J.Bool true);
          check Alcotest.bool "original ack echoed" true
            (member_exn "applied" r2 = J.Int 2);
          let snap = Log_store.open_ dir in
          check Alcotest.int "nothing re-executed" (base + 2)
            (Log_store.length snap);
          Log_store.close snap))

(* byte-copy a store directory: the disk state at this instant is what
   a [kill -9] would leave behind *)
let snapshot_dir src dst =
  Sys.mkdir dst 0o755;
  Array.iter
    (fun name ->
      let ic = open_in_bin (Filename.concat src name) in
      let data =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      let oc = open_out_bin (Filename.concat dst name) in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc data))
    (Sys.readdir src)

let test_restart_recovers_acked_history () =
  with_store_dir @@ fun dir ->
  let crash_image = Filename.temp_file "uv-serve-crash" "" in
  Sys.remove crash_image;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists crash_image then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat crash_image name))
          (Sys.readdir crash_image);
        Sys.rmdir crash_image
      end)
  @@ fun () ->
  let served_hash =
    with_durable_server ~dir (fun _srv addr _svc _dur ->
        let c = Serve.Client.connect addr in
        Fun.protect
          ~finally:(fun () -> Serve.Client.close c)
          (fun () ->
            let r =
              expect_result
                (Serve.Client.ingest ~idem_key:"transfer-9" c batch_sql)
            in
            check Alcotest.bool "acked" true
              (member_exn "durable" r = J.Bool true);
            (* freeze the disk the instant the ack arrives — everything
               after this line is a crash as far as recovery is
               concerned *)
            snapshot_dir dir crash_image;
            match
              member_exn "final_db_hash"
                (expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()))
            with
            | J.Str h -> h
            | j -> Alcotest.failf "hash not a string: %s" (J.to_string j)))
  in
  (* second life, from the crash image *)
  let e2 = Engine.create () in
  let dur2, recov = Durable.attach ~config:dcfg ~dir:crash_image e2 in
  Fun.protect
    ~finally:(fun () -> Durable.close dur2)
    (fun () ->
      check Alcotest.int "acked batch survived the crash" 0
        recov.Durable.rec_truncated;
      check Alcotest.int "idempotency key survived the crash" 1
        recov.Durable.rec_keys;
      check Alcotest.int "no replay errors" 0 recov.Durable.rec_replay_skipped;
      let svc2 = Whatif.Service.create ~config:svc_config e2 in
      Whatif.Service.publish svc2;
      Durable.start ~ingest:(Whatif.Service.ingest svc2) dur2;
      (* the client's post-crash re-send is deduplicated, not re-run *)
      let stmts = Uv_sql.Parser.parse_script batch_sql in
      let ack = Durable.ingest ~key:"transfer-9" dur2 stmts in
      check Alcotest.bool "re-send after restart deduplicated" true
        ack.Durable.duplicate;
      (* and the recovered universe answers what-ifs identically *)
      let restarted_hash =
        match
          Whatif.Service.run svc2 { Analyzer.tau = 3; op = Analyzer.Remove }
        with
        | Ok r -> Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash
        | Error e -> Alcotest.failf "post-restart run: %s" (Whatif.Error.to_string e)
      in
      check Alcotest.string "what-if hash identical across restart"
        served_hash restarted_hash)

let test_health_endpoint () =
  (* without a store: healthy, no durable section *)
  with_server (fun _srv addr _svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let h = expect_result (Serve.Client.health c) in
          check Alcotest.bool "schema tagged" true
            (member_exn "schema" h = J.Str "uv.health/1");
          check Alcotest.bool "healthy" true (member_exn "ok" h = J.Bool true);
          check Alcotest.bool "not degraded" true
            (member_exn "degraded" h = J.Bool false);
          check Alcotest.bool "no durable section" true
            (member_exn "durable" h = J.Null)));
  (* with a store: watermarks present and consistent *)
  with_store_dir @@ fun dir ->
  with_durable_server ~dir (fun _srv addr _svc dur ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          ignore
            (expect_result (Serve.Client.ingest ~idem_key:"h1" c batch_sql));
          let h = expect_result (Serve.Client.health c) in
          check Alcotest.bool "healthy with store" true
            (member_exn "ok" h = J.Bool true);
          let d = member_exn "durable" h in
          check Alcotest.bool "durable watermark matches the handle" true
            (member_exn "durable_len" d
            = J.Int (Durable.stats dur).Durable.durable_len);
          check Alcotest.bool "keys counted" true
            (member_exn "idem_keys" d = J.Int 1);
          check Alcotest.bool "not poisoned" true
            (member_exn "poisoned" d = J.Bool false);
          check Alcotest.bool "queue depth reported" true
            (match member_exn "queue_pending" h with
            | J.Int n -> n >= 0
            | _ -> false)))

let test_client_retry_behaviour () =
  (* connection refused: Reset, retried with backoff, attempts counted *)
  let dead = Serve.Unix_sock (fresh_sock ()) in
  (match
     Serve.Client.call_retry ~retries:2 ~backoff_ms:1. dead
       (J.Obj [ ("type", J.Str "ping") ])
   with
  | (Error (Serve.Client.Reset _), attempts) ->
      check Alcotest.int "every retry attempted" 3 attempts
  | (Error (Serve.Client.Protocol e), _) ->
      Alcotest.failf "refused connect typed Protocol: %s" e
  | (Ok _, _) -> Alcotest.fail "call to a dead socket succeeded");
  with_server ~history:160 (fun _srv addr _svc ->
      (* a live server: first attempt lands *)
      (match
         Serve.Client.call_retry ~retries:3 addr (J.Obj [ ("type", J.Str "ping") ])
       with
      | (Ok (Serve.Client.Result _), attempts) ->
          check Alcotest.int "no spurious retries" 1 attempts
      | (Ok (Serve.Client.Refused { code; _ }), _) ->
          Alcotest.failf "ping refused: %s" code
      | (Error e, _) ->
          Alcotest.failf "transport: %s" (Serve.Client.error_to_string e));
      (* a deadline refusal is final: the budget is spent either way *)
      match
        Serve.Client.call_retry ~retries:3 addr
          (Serve.Client.whatif_payload ~deadline_ms:0.01 ~tau:3 ~op:"remove" ())
      with
      | (Ok (Serve.Client.Refused { code = "deadline"; _ }), attempts) ->
          check Alcotest.int "deadline not retried" 1 attempts
      | (Ok (Serve.Client.Refused { code; _ }), _) ->
          Alcotest.failf "wrong code %s" code
      | (Ok (Serve.Client.Result _), _) ->
          Alcotest.fail "a microsecond budget was enough?"
      | (Error e, _) ->
          Alcotest.failf "transport: %s" (Serve.Client.error_to_string e))

let test_client_shutdown_stops_server () =
  with_server (fun srv addr _svc ->
      let c = Serve.Client.connect addr in
      (match Serve.Client.shutdown c with
      | Ok (Serve.Client.Result _) -> ()
      | Ok (Serve.Client.Refused { code; _ }) -> Alcotest.failf "refused: %s" code
      | Error e -> Alcotest.failf "transport: %s" e);
      Serve.Client.close c;
      (* wait must return because the request flipped the server *)
      Serve.wait srv;
      (* double stop (with_server's finally will stop again) is fine *)
      Serve.stop srv)

let () =
  Alcotest.run "uv_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "round-trip & hash identity" `Quick
            test_roundtrip_and_hash_identity;
          Alcotest.test_case "ingest visible to later runs" `Quick
            test_ingest_visible_to_later_whatifs;
        ] );
      ( "typed errors",
        [
          Alcotest.test_case "saturation, no teardown" `Quick
            test_saturation_typed_no_teardown;
          Alcotest.test_case "deadline, no teardown" `Quick
            test_deadline_typed_no_teardown;
          Alcotest.test_case "bad request, no teardown" `Quick
            test_bad_request_typed_then_served;
          Alcotest.test_case "oversized frame closes" `Quick
            test_oversized_frame_closes;
        ] );
      ( "durability",
        [
          Alcotest.test_case "ack means on-disk; idem-key dedup" `Quick
            test_durable_ack_means_on_disk;
          Alcotest.test_case "restart recovers acked history" `Quick
            test_restart_recovers_acked_history;
          Alcotest.test_case "health endpoint" `Quick test_health_endpoint;
          Alcotest.test_case "client retry behaviour" `Quick
            test_client_retry_behaviour;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "client-requested shutdown" `Quick
            test_client_shutdown_stops_server;
        ] );
    ]
