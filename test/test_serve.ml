(* Tests for the [ultraverse serve] daemon: protocol round-trips, typed
   admission-control and deadline errors that must never tear the
   connection down, protocol-damage handling, and clean shutdown.

   Each test starts a real daemon on a fresh Unix socket and talks to it
   through Serve.Client or raw Frame_io frames (the latter to pipeline
   requests the blocking client cannot). *)

open Uv_db
open Uv_retroactive
module J = Uv_obs.Json
module Report = Uv_obs.Report
module Frame_io = Uv_util.Frame_io

let check = Alcotest.check

(* one replay lane per request: these tests exercise concurrency across
   requests, not inside a replay *)
let svc_config = Whatif.Config.make ~workers:1 ()

let build_service n =
  let e = Engine.create () in
  ignore
    (Engine.exec_sql e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)");
  for i = 1 to 4 do
    ignore
      (Engine.exec_sql e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i))
  done;
  for i = 1 to n do
    ignore
      (Engine.exec_sql e
         (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" i
            (1 + (i mod 4))))
  done;
  let svc = Whatif.Service.create ~config:svc_config e in
  Whatif.Service.publish svc;
  svc

let fresh_sock () =
  let p = Filename.temp_file "uv-test-serve" ".sock" in
  Sys.remove p;
  p

let with_server ?(config = Serve.default_config) ?(history = 40) f =
  let svc = build_service history in
  let addr = Serve.Unix_sock (fresh_sock ()) in
  let srv = Serve.start ~config svc addr in
  Fun.protect ~finally:(fun () -> Serve.stop srv) (fun () -> f srv addr svc)

let expect_result = function
  | Ok (Serve.Client.Result j) -> j
  | Ok (Serve.Client.Refused { code; message; _ }) ->
      Alcotest.failf "refused [%s]: %s" code message
  | Error e -> Alcotest.failf "transport: %s" e

let member_exn k j =
  match J.member k j with
  | Some v -> v
  | None -> Alcotest.failf "missing %S in %s" k (J.to_string j)

(* ------------------------------------------------------------------ *)

let test_roundtrip_and_hash_identity () =
  with_server (fun _srv addr svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let pong = expect_result (Serve.Client.ping c) in
          check Alcotest.bool "pong" true (member_exn "pong" pong = J.Bool true);
          let r = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          let served =
            match member_exn "final_db_hash" r with
            | J.Str h -> h
            | j -> Alcotest.failf "hash not a string: %s" (J.to_string j)
          in
          (* the same question one-shot, straight through the service *)
          let oneshot =
            match
              Whatif.Service.run svc { Analyzer.tau = 3; op = Analyzer.Remove }
            with
            | Ok r -> Printf.sprintf "%Lx" r.outcome.Whatif.final_db_hash
            | Error e -> Alcotest.failf "one-shot: %s" (Whatif.Error.to_string e)
          in
          check Alcotest.string "served == one-shot universe" oneshot served;
          let stats = expect_result (Serve.Client.stats c) in
          check Alcotest.bool "stats counts the whatif" true
            (match member_exn "whatifs" stats with
            | J.Int n -> n >= 1
            | _ -> false);
          let metrics = expect_result (Serve.Client.metrics c) in
          check Alcotest.bool "metrics payload is an object" true
            (match metrics with J.Obj _ -> true | _ -> false)))

(* raw pipelined connection: the blocking client can't over-run the
   admission queue, so speak frames directly *)
let raw_connect addr =
  match addr with
  | Serve.Unix_sock path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | Serve.Tcp _ -> Alcotest.fail "unix sockets only in tests"

let raw_send fd payload =
  Frame_io.write_frame fd (Report.to_string ~schema:"uv.serve/1" payload)

let raw_recv fd =
  match Frame_io.read_frame fd with
  | Ok s -> (
      match Report.parse ~expect:"uv.serve/1" s with
      | Ok j -> j
      | Error e -> Alcotest.failf "bad envelope: %s" e)
  | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e)

let test_saturation_typed_no_teardown () =
  let config =
    { Serve.default_config with workers = 1; queue_capacity = 1 }
  in
  with_server ~config ~history:120 (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* 8 what-ifs back-to-back into a 1-worker, 1-slot queue: the
             overflow must come back [saturated], not close the socket *)
          let n = 8 in
          for i = 1 to n do
            raw_send fd
              (J.Obj
                 [
                   ("id", J.Int i);
                   ("type", J.Str "whatif");
                   ("tau", J.Int 5);
                   ("op", J.Str "remove");
                 ])
          done;
          let ok = ref 0 and saturated = ref 0 in
          for _ = 1 to n do
            let r = raw_recv fd in
            match (member_exn "ok" r, J.member "error" r) with
            | J.Bool true, _ -> incr ok
            | J.Bool false, Some err -> (
                match member_exn "code" err with
                | J.Str "saturated" ->
                    incr saturated;
                    check Alcotest.bool "carries retry_after_ms" true
                      (J.member "retry_after_ms" err <> None)
                | J.Str c -> Alcotest.failf "unexpected error code %s" c
                | _ -> Alcotest.fail "error code not a string")
            | _ -> Alcotest.fail "response without ok"
          done;
          check Alcotest.int "every request answered" n (!ok + !saturated);
          Alcotest.(check bool) "pool saturation observed" true (!saturated >= 1);
          Alcotest.(check bool) "some requests admitted" true (!ok >= 1);
          (* the connection survived every rejection *)
          raw_send fd (J.Obj [ ("id", J.Int 99); ("type", J.Str "ping") ]);
          let pong = raw_recv fd in
          check Alcotest.bool "ping after saturation" true
            (member_exn "ok" pong = J.Bool true)))

let test_deadline_typed_no_teardown () =
  with_server ~history:160 (fun _srv addr _svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          (* a 1 ms budget cannot cover a 160-statement replay on any
             machine this runs on; the failure must be a typed error *)
          (match Serve.Client.whatif ~deadline_ms:0.01 ~tau:3 ~op:"remove" c () with
          | Ok (Serve.Client.Refused { code = "deadline"; phase; _ }) ->
              Alcotest.(check bool) "deadline error names its phase" true
                (phase <> None)
          | Ok (Serve.Client.Refused { code; _ }) ->
              Alcotest.failf "wrong error code %s" code
          | Ok (Serve.Client.Result _) ->
              Alcotest.fail "a microsecond budget was enough?"
          | Error e -> Alcotest.failf "transport: %s" e);
          (* same connection, no deadline: the run now succeeds *)
          let r = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          check Alcotest.bool "full run after deadline error" true
            (J.member "final_db_hash" r <> None)))

let test_bad_request_typed_then_served () =
  with_server (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* unparsable JSON costs one typed error, not the connection *)
          Frame_io.write_frame fd "this is not an envelope";
          let r = raw_recv fd in
          (match J.member "error" r with
          | Some err ->
              check Alcotest.bool "bad_request code" true
                (member_exn "code" err = J.Str "bad_request")
          | None -> Alcotest.fail "damaged frame got an ok reply");
          (* a well-formed envelope with an unknown type: same deal *)
          raw_send fd (J.Obj [ ("type", J.Str "no_such_op") ]);
          let r = raw_recv fd in
          check Alcotest.bool "unknown type refused" true
            (member_exn "ok" r = J.Bool false);
          raw_send fd (J.Obj [ ("type", J.Str "ping") ]);
          check Alcotest.bool "still serving" true
            (member_exn "ok" (raw_recv fd) = J.Bool true)))

let test_oversized_frame_closes () =
  let config = { Serve.default_config with max_frame = 2048 } in
  with_server ~config (fun _srv addr _svc ->
      let fd = raw_connect addr in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          (* protocol damage proper: the stream cannot be re-synchronised,
             so the server answers once and hangs up *)
          Frame_io.write_frame fd (String.make 100_000 'x');
          (match Frame_io.read_frame fd with
          | Ok s -> (
              match Report.parse ~expect:"uv.serve/1" s with
              | Ok j ->
                  check Alcotest.bool "typed farewell" true
                    (member_exn "ok" j = J.Bool false)
              | Error e -> Alcotest.failf "farewell not an envelope: %s" e)
          | Error `Closed -> () (* immediate close is acceptable too *)
          | Error (`Oversized n) -> Alcotest.failf "server sent %d bytes" n);
          match Frame_io.read_frame fd with
          | Error `Closed -> ()
          | Ok _ -> Alcotest.fail "connection survived protocol damage"
          | Error (`Oversized n) -> Alcotest.failf "server sent %d bytes" n))

let test_ingest_visible_to_later_whatifs () =
  with_server ~history:20 (fun _srv addr _svc ->
      let c = Serve.Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Serve.Client.close c)
        (fun () ->
          let len_of r =
            match member_exn "history_len" r with
            | J.Int n -> n
            | _ -> Alcotest.fail "history_len not an int"
          in
          let before = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          let r =
            expect_result
              (Serve.Client.ingest c
                 "UPDATE acct SET bal = bal + 7 WHERE id = 2; UPDATE acct SET \
                  bal = bal - 7 WHERE id = 3;")
          in
          check Alcotest.bool "both applied" true
            (member_exn "applied" r = J.Int 2);
          let after = expect_result (Serve.Client.whatif ~tau:3 ~op:"remove" c ()) in
          check Alcotest.int "the later run sees the longer history"
            (len_of before + 2) (len_of after)))

let test_client_shutdown_stops_server () =
  with_server (fun srv addr _svc ->
      let c = Serve.Client.connect addr in
      (match Serve.Client.shutdown c with
      | Ok (Serve.Client.Result _) -> ()
      | Ok (Serve.Client.Refused { code; _ }) -> Alcotest.failf "refused: %s" code
      | Error e -> Alcotest.failf "transport: %s" e);
      Serve.Client.close c;
      (* wait must return because the request flipped the server *)
      Serve.wait srv;
      (* double stop (with_server's finally will stop again) is fine *)
      Serve.stop srv)

let () =
  Alcotest.run "uv_serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "round-trip & hash identity" `Quick
            test_roundtrip_and_hash_identity;
          Alcotest.test_case "ingest visible to later runs" `Quick
            test_ingest_visible_to_later_whatifs;
        ] );
      ( "typed errors",
        [
          Alcotest.test_case "saturation, no teardown" `Quick
            test_saturation_typed_no_teardown;
          Alcotest.test_case "deadline, no teardown" `Quick
            test_deadline_typed_no_teardown;
          Alcotest.test_case "bad request, no teardown" `Quick
            test_bad_request_typed_then_served;
          Alcotest.test_case "oversized frame closes" `Quick
            test_oversized_frame_closes;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "client-requested shutdown" `Quick
            test_client_shutdown_stops_server;
        ] );
    ]
