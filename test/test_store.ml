(* The segmented history store (DESIGN.md §12): manifest integrity at
   every truncation point, segment seals falling inside application
   transactions, checkpoint-ladder alignment with segment boundaries,
   bit-equality with the legacy single-file path, salvage of a damaged
   prefix, and the joint replay-set path served from a streamed store. *)

open Uv_db
open Uv_retroactive
module F = Uv_fault.Fault
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let run e sql = ignore (Engine.exec_sql e sql)

let with_store_dir f =
  let dir = Filename.temp_file "uv_store" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      if Sys.file_exists dir then begin
        Array.iter
          (fun name -> Sys.remove (Filename.concat dir name))
          (Sys.readdir dir);
        Sys.rmdir dir
      end)
    (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc data)

(* A small history whose statements straddle segment seals: the schema
   DDL plus multi-statement application transactions, so a fresh engine
   can replay it from nothing. *)
let build_history ?(txns = 8) () =
  let e = Engine.create () in
  run e "CREATE TABLE acct (id INT PRIMARY KEY, bal INT)";
  for i = 1 to 4 do
    run e (Printf.sprintf "INSERT INTO acct VALUES (%d, 100)" i)
  done;
  for k = 1 to txns do
    let tag = Printf.sprintf "transfer-%d" k in
    let src = 1 + (k mod 4) and dst = 1 + ((k + 1) mod 4) in
    ignore
      (Engine.exec_sql ~app_txn:tag e
         (Printf.sprintf "UPDATE acct SET bal = bal - %d WHERE id = %d" k src));
    ignore
      (Engine.exec_sql ~app_txn:tag e
         (Printf.sprintf "UPDATE acct SET bal = bal + %d WHERE id = %d" k dst));
    ignore
      (Engine.exec_sql ~app_txn:tag e
         (Printf.sprintf "INSERT INTO acct VALUES (%d, RAND())" (10 + k)))
  done;
  e

let fill_store dir ~cap e =
  let store = Log_store.open_ ~segment_cap:cap dir in
  Log_store.append_log store (Engine.log e);
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Manifest integrity                                                   *)
(* ------------------------------------------------------------------ *)

let test_manifest_truncation_every_byte () =
  with_store_dir @@ fun dir ->
  let e = build_history () in
  fill_store dir ~cap:3 e;
  let mpath = Filename.concat dir "MANIFEST" in
  let good = read_file mpath in
  let len = String.length good in
  check Alcotest.bool "manifest is non-trivial" true (len > 40);
  for cut = 0 to len - 1 do
    write_file mpath (String.sub good 0 cut);
    match Log_store.open_ dir with
    | _ ->
        Alcotest.fail
          (Printf.sprintf "truncation at byte %d went undetected" cut)
    | exception Log_store.Error (Log_store.Store_error.Corrupt_manifest _) ->
        ()
  done;
  write_file mpath good;
  let store = Log_store.open_ dir in
  check Alcotest.int "intact manifest still opens" (Log.length (Engine.log e))
    (Log_store.length store);
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Segment seals inside application transactions                        *)
(* ------------------------------------------------------------------ *)

let test_boundary_mid_transaction () =
  with_store_dir @@ fun dir ->
  let e = build_history () in
  (* cap 4 over 3-statement transactions: seals keep landing mid-txn *)
  fill_store dir ~cap:4 e;
  let store = Log_store.open_ dir in
  let spans_seal tag =
    let seqs = ref [] in
    Log.iter (Engine.log e) (fun entry ->
        if entry.Log.app_txn = Some tag then
          seqs :=
            (Log_store.segment_of_index store entry.Log.index)
              .Log_store.seg_seq
            :: !seqs);
    List.sort_uniq compare !seqs |> List.length > 1
  in
  check Alcotest.bool "some app txn straddles a seal" true
    (List.exists
       (fun k -> spans_seal (Printf.sprintf "transfer-%d" k))
       [ 1; 2; 3; 4; 5; 6; 7; 8 ]);
  let e2 = Engine.create () in
  let skipped = Log_store.replay store e2 in
  check Alcotest.(list int) "replay skips nothing" [] skipped;
  check Alcotest.int64 "replayed database is bit-identical"
    (Engine.db_hash e) (Engine.db_hash e2);
  (* the app-txn tags survive segmentation *)
  let tags log =
    let acc = ref [] in
    Log.iter log (fun entry -> acc := entry.Log.app_txn :: !acc);
    List.rev !acc
  in
  check
    Alcotest.(list (option string))
    "app-txn tags preserved" (tags (Engine.log e)) (tags (Engine.log e2));
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Checkpoint-ladder alignment                                          *)
(* ------------------------------------------------------------------ *)

let test_checkpoint_rung_at_boundary () =
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:12 () in
  fill_store dir ~cap:5 e;
  let store = Log_store.open_ dir in
  let bounds = Log_store.boundaries store in
  check Alcotest.bool "several sealed segments" true (List.length bounds >= 3);
  let e2 = Engine.create () in
  (* stride far beyond the history: every rung recorded comes from the
     declared segment boundaries, not the stride *)
  Engine.enable_checkpoints e2 ~every:1_000_000;
  ignore (Log_store.replay store e2);
  let ladder = Option.get (Engine.checkpoints e2) in
  let rungs = List.map fst (Checkpoint.rungs ladder) in
  check Alcotest.bool "a rung exists at a segment boundary" true
    (rungs <> []);
  List.iter
    (fun r ->
      check Alcotest.bool
        (Printf.sprintf "rung %d sits on a segment boundary" r)
        true (List.mem r bounds))
    rungs;
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Round-trip equality with the legacy single file                      *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_matches_single_file () =
  with_store_dir @@ fun dir ->
  let e = build_history () in
  let path = Filename.concat dir "legacy.ulog" in
  Log_store.save_log_file (Engine.log e) ~path;
  let sub = Filename.concat dir "store" in
  Sys.mkdir sub 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun n -> Sys.remove (Filename.concat sub n))
        (Sys.readdir sub);
      Sys.rmdir sub)
  @@ fun () ->
  fill_store sub ~cap:3 e;
  let store = Log_store.open_ sub in
  let from_file = Log_store.load_log_file ~path in
  check Alcotest.bool "record streams are identical" true
    (Log_store.records store = from_file);
  let replay_records records =
    let e2 = Engine.create () in
    List.iteri
      (fun i r ->
        let entry = Log_store.entry_of_record ~index:(i + 1) r in
        try
          ignore
            (Engine.exec ~nondet:entry.Log.nondet ?app_txn:entry.Log.app_txn
               e2 entry.Log.stmt)
        with Engine.Sql_error _ -> ())
      records;
    Engine.db_hash e2
  in
  let e_store = Engine.create () in
  ignore (Log_store.replay store e_store);
  check Alcotest.int64 "store replay = single-file replay"
    (replay_records from_file) (Engine.db_hash e_store);
  check Alcotest.int64 "both match the original" (Engine.db_hash e)
    (Engine.db_hash e_store);
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Damage: verify flags it, salvage keeps the longest clean prefix      *)
(* ------------------------------------------------------------------ *)

let test_salvage_damaged_segment () =
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:12 () in
  fill_store dir ~cap:5 e;
  let clean = Log_store.open_ dir in
  let sealed =
    List.filter (fun s -> s.Log_store.seg_crc <> "") (Log_store.segments clean)
  in
  check Alcotest.bool "at least three sealed segments" true
    (List.length sealed >= 3);
  List.iter
    (fun c ->
      check Alcotest.bool
        (Printf.sprintf "segment %d verifies clean" c.Log_store.chk_segment)
        true
        (c.Log_store.chk_crc_ok && c.Log_store.chk_diag = None))
    (Log_store.verify clean);
  Log_store.close clean;
  (* cut segment 2 mid-record *)
  let victim = Filename.concat dir (List.nth sealed 1).Log_store.seg_file in
  let bytes = read_file victim in
  write_file victim (String.sub bytes 0 (String.length bytes - 4));
  let damaged = Log_store.open_ dir in
  let checks = Log_store.verify ~segment:2 damaged in
  check Alcotest.int "one check row for --segment 2" 1 (List.length checks);
  check Alcotest.bool "damage detected" true
    (List.for_all (fun c -> c.Log_store.chk_diag <> None) checks);
  Log_store.close damaged;
  let store, report = Log_store.open_salvage dir in
  check Alcotest.(option int) "cut in segment 2" (Some 2)
    report.Log_store.sr_cut_segment;
  let seg1 = List.nth sealed 0 in
  check Alcotest.bool "salvage keeps segment 1 and a prefix of segment 2"
    true
    (Log_store.length store >= seg1.Log_store.seg_max
    && Log_store.length store < Log.length (Engine.log e));
  (* the salvaged prefix replays cleanly *)
  let e2 = Engine.create () in
  ignore (Log_store.replay store e2);
  Log_store.close store

(* ------------------------------------------------------------------ *)
(* Torn writes: sync never clobbers the previous good state             *)
(* ------------------------------------------------------------------ *)

let test_torn_sync_keeps_old_store () =
  with_store_dir @@ fun dir ->
  let e = build_history () in
  fill_store dir ~cap:1000 e;
  let before = Log_store.open_ dir in
  let n = Log_store.length before in
  let records = Log_store.records before in
  Log_store.close before;
  let fault = F.seeded ~torn_write:1.0 ~seed:11 () in
  let store = Log_store.open_ ~fault dir in
  Log_store.append store
    { Log_io.r_sql = "INSERT INTO acct VALUES (99, 1)"; r_nondet = [];
      r_app_txn = None };
  (match Log_store.sync store with
  | () -> Alcotest.fail "expected the torn write to escape"
  | exception F.Injected inj ->
      check Alcotest.string "site" F.Site.log_save inj.F.site);
  let after = Log_store.open_ dir in
  check Alcotest.int "record count unchanged on disk" n
    (Log_store.length after);
  check Alcotest.bool "records unchanged on disk" true
    (Log_store.records after = records);
  Log_store.close after

(* ------------------------------------------------------------------ *)
(* Crash-window recovery on the live (open) segment                     *)
(* ------------------------------------------------------------------ *)

let sqls store = List.map (fun r -> r.Log_io.r_sql) (Log_store.records store)

let test_crash_between_tail_write_and_manifest () =
  (* sync writes the tail segment file first, the manifest second. A
     crash between the two leaves a segment file that is a byte
     superset of what the manifest acknowledges (same prefix, appended
     records, stale CRC). Salvage must keep every manifest-acknowledged
     record — dropping the whole segment on the CRC mismatch would lose
     acked history. *)
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:4 () in
  let all = Log.length (Engine.log e) in
  let n = all - 5 in
  let store = Log_store.open_ ~segment_cap:1000 dir in
  List.iteri
    (fun i r -> if i < n then Log_store.append store r)
    (Log_io.records_of_log (Engine.log e));
  Log_store.close store;
  let old_manifest = read_file (Filename.concat dir "MANIFEST") in
  let store = Log_store.open_ dir in
  check Alcotest.int "first sync acknowledged" n (Log_store.length store);
  List.iteri
    (fun i r -> if i >= n then Log_store.append store r)
    (Log_io.records_of_log (Engine.log e));
  Log_store.close store;
  (* the crash: segment file holds [all] records, manifest says [n] *)
  write_file (Filename.concat dir "MANIFEST") old_manifest;
  let store, report = Log_store.open_salvage dir in
  check Alcotest.bool "salvage flagged the mismatch" true
    (report.Log_store.sr_cut_segment = Some 1);
  check Alcotest.bool "every acknowledged record survives" true
    (Log_store.length store >= n);
  (* the extra durable-but-unacknowledged records parse cleanly, so the
     longest valid prefix is the whole file; the Durable layer decides
     their fate against its intent journal *)
  check Alcotest.int "longest valid prefix kept" all (Log_store.length store);
  let expect = List.map (fun (r : Log_io.record) -> r.Log_io.r_sql)
      (Log_io.records_of_log (Engine.log e)) in
  check Alcotest.(list string) "records bit-identical" expect (sqls store);
  Log_store.close store

let test_tail_truncation_every_byte () =
  (* the manifest property extended to the open segment: cut the tail
     segment file at every byte; open_salvage must never raise and must
     serve an exact record prefix of the original history *)
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:3 () in
  fill_store dir ~cap:6 e;
  let full = Log_store.open_ dir in
  let expect = sqls full in
  let tail =
    match List.rev (Log_store.segments full) with
    | t :: _ -> t
    | [] -> Alcotest.fail "empty store"
  in
  Log_store.close full;
  check Alcotest.bool "history ends in a partial (open) segment" true
    (tail.Log_store.seg_max - tail.Log_store.seg_min + 1 < 6);
  let tpath = Filename.concat dir tail.Log_store.seg_file in
  let good = read_file tpath in
  let is_prefix got =
    List.length got <= List.length expect
    && List.for_all2 (fun a b -> String.equal a b)
         got
         (List.filteri (fun i _ -> i < List.length got) expect)
  in
  for cut = 0 to String.length good - 1 do
    write_file tpath (String.sub good 0 cut);
    let store, report = Log_store.open_salvage dir in
    let got = sqls store in
    check Alcotest.bool
      (Printf.sprintf "cut at byte %d salvages a record prefix" cut)
      true (is_prefix got);
    check Alcotest.bool
      (Printf.sprintf "cut at byte %d keeps sealed history" cut)
      true
      (List.length got >= tail.Log_store.seg_min - 1);
    if List.length got < List.length expect then
      check Alcotest.bool
        (Printf.sprintf "cut at byte %d diagnosed" cut)
        true
        (report.Log_store.sr_cut_segment <> None);
    Log_store.close store
  done;
  write_file tpath good;
  let store, _ = Log_store.open_salvage dir in
  check Alcotest.(list string) "restored tail serves everything" expect
    (sqls store);
  Log_store.close store

let test_truncate_records () =
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:6 () in
  fill_store dir ~cap:5 e;
  let full = Log_store.open_ dir in
  let expect = sqls full in
  let all = List.length expect in
  Log_store.close full;
  let prefix k l = List.filteri (fun i _ -> i < k) l in
  (* representative cuts: inside the tail, at a seal, inside a sealed
     segment (dropping whole segments behind it), and to zero *)
  List.iter
    (fun n ->
      let store = Log_store.open_ dir in
      Log_store.truncate store n;
      check Alcotest.int
        (Printf.sprintf "in-memory length after truncate %d" n)
        n (Log_store.length store);
      check
        Alcotest.(list string)
        (Printf.sprintf "records after truncate %d" n)
        (prefix n expect) (sqls store);
      Log_store.sync store;
      Log_store.close store;
      (* the cut is durable and the store reopens consistently *)
      let back = Log_store.open_ dir in
      check Alcotest.int
        (Printf.sprintf "durable length after truncate %d" n)
        n (Log_store.length back);
      check
        Alcotest.(list string)
        (Printf.sprintf "durable records after truncate %d" n)
        (prefix n expect) (sqls back);
      (* appends continue from the cut *)
      Log_store.append back
        { Log_io.r_sql = "INSERT INTO acct VALUES (77, 7)"; r_nondet = [];
          r_app_txn = None };
      check Alcotest.int "append after truncate" (n + 1)
        (Log_store.length back);
      Log_store.close back;
      (* rebuild the full store for the next cut *)
      Array.iter
        (fun f -> Sys.remove (Filename.concat dir f))
        (Sys.readdir dir);
      fill_store dir ~cap:5 e)
    [ all - 1; all - 3; 10; 5; 4; 1; 0 ];
  (* truncating to the current length (or beyond) is a no-op *)
  let store = Log_store.open_ dir in
  Log_store.truncate store all;
  Log_store.truncate store (all + 10);
  check Alcotest.int "no-op truncate" all (Log_store.length store);
  Log_store.close store

let test_truncate_unlinks_orphans_after_manifest () =
  with_store_dir @@ fun dir ->
  let e = build_history ~txns:6 () in
  fill_store dir ~cap:4 e;
  let count_segs () =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".ulog")
    |> List.length
  in
  let before = count_segs () in
  check Alcotest.bool "several segment files" true (before >= 3);
  let store = Log_store.open_ dir in
  Log_store.truncate store 2;
  (* crash-ordering: no chunk file may vanish before the shrunk
     manifest is durable *)
  check Alcotest.int "files intact before sync" before (count_segs ());
  Log_store.sync store;
  check Alcotest.bool "orphan chunks unlinked after sync" true
    (count_segs () < before);
  Log_store.close store;
  let back = Log_store.open_ dir in
  check Alcotest.int "reopened at the cut" 2 (Log_store.length back);
  Log_store.close back

(* ------------------------------------------------------------------ *)
(* The joint replay-set path over a streamed store                      *)
(* ------------------------------------------------------------------ *)

let test_replay_members_joint () =
  let w = W.by_name "astore" in
  let eng, rt = W.setup ~mode:R.Raw w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n:60 ~dep_rate:0.3 in
  ignore (W.run_history rt ~mode:R.Raw calls);
  with_store_dir @@ fun dir ->
  fill_store dir ~cap:16 eng;
  let store = Log_store.open_ dir in
  let anl =
    Analyzer.of_source ~config:w.W.ri_config ~base
      (Analyzer.source_of_store store)
  in
  let members_of (rs : Analyzer.replay_set) =
    let acc = ref [] in
    Array.iteri (fun i m -> if m then acc := (i + 1) :: !acc) rs.Analyzer.members;
    List.rev !acc
  in
  for tau = 1 to 12 do
    let target = { Analyzer.tau; op = Analyzer.Remove } in
    let lean = Analyzer.replay_members anl target in
    let oracle = Analyzer.replay_set ~mode:Analyzer.Joint anl target in
    check
      Alcotest.(list int)
      (Printf.sprintf "tau %d: lean joint = oracle joint" tau)
      (members_of oracle) lean;
    let cell = Analyzer.replay_set anl target in
    List.iter
      (fun i ->
        check Alcotest.bool
          (Printf.sprintf "tau %d: joint member %d inside Cell" tau i)
          true cell.Analyzer.members.(i - 1))
      lean
  done;
  Log_store.close store

let () =
  Alcotest.run "uv_store"
    [
      ( "manifest",
        [ Alcotest.test_case "truncation at every byte" `Quick
            test_manifest_truncation_every_byte ] );
      ( "segments",
        [
          Alcotest.test_case "seal mid-transaction" `Quick
            test_boundary_mid_transaction;
          Alcotest.test_case "checkpoint rung at boundary" `Quick
            test_checkpoint_rung_at_boundary;
          Alcotest.test_case "round-trip vs single file" `Quick
            test_roundtrip_matches_single_file;
        ] );
      ( "integrity",
        [
          Alcotest.test_case "salvage damaged segment" `Quick
            test_salvage_damaged_segment;
          Alcotest.test_case "torn sync keeps old store" `Quick
            test_torn_sync_keeps_old_store;
          Alcotest.test_case "crash between tail write and manifest" `Quick
            test_crash_between_tail_write_and_manifest;
          Alcotest.test_case "tail truncation at every byte" `Quick
            test_tail_truncation_every_byte;
          Alcotest.test_case "truncate records" `Quick test_truncate_records;
          Alcotest.test_case "truncate unlinks orphans after manifest" `Quick
            test_truncate_unlinks_orphans_after_manifest;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "joint replay members over a store" `Quick
            test_replay_members_joint;
        ] );
    ]
