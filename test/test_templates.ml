(* The static template machinery: extraction determinism, matrix
   soundness (UVA015) on every bundled workload, and the fast-path
   oracle equalities — replay sets identical to the per-statement
   closure on randomized scenarios, conflict-DAG edges a reachability
   superset of the oracle's. *)

open Uv_db
open Uv_retroactive
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime
module T = Uv_analysis.Template_extract
module M = Uv_analysis.Template_matrix
module F = Uv_analysis.Template_fastpath
module L = Uv_analysis.Lint
module D = Uv_analysis.Diagnostic

let check = Alcotest.check

(* one Raw-mode history per workload, reused by every scenario *)
let build (w : W.t) ~n ~dep_rate =
  let eng, rt = W.setup ~mode:R.Raw w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n ~dep_rate in
  ignore (W.run_history rt ~mode:R.Raw calls);
  (eng, base)

let artifacts (w : W.t) =
  let set = T.extract ~schema:w.W.schema_sql ~source:w.W.app_source () in
  let matrix = M.build ~config:w.W.ri_config set in
  (set, matrix)

let render (tpl : T.template) =
  Printf.sprintf "%d|%s|%s|%s|%s" tpl.T.id tpl.T.txn
    (match tpl.T.kind with T.Kstmt -> "stmt" | T.Kcall -> "call")
    (Uv_sql.Printer.stmt_compact tpl.T.stmt)
    (String.concat ","
       (List.map (fun (s, src) -> s ^ ":" ^ T.source_label src) tpl.T.slots))

(* -------------------------------------------------------------- *)
(* extraction determinism                                          *)
(* -------------------------------------------------------------- *)

let test_extract_deterministic (w : W.t) () =
  let a = T.extract ~schema:w.W.schema_sql ~source:w.W.app_source () in
  let b = T.extract ~schema:w.W.schema_sql ~source:w.W.app_source () in
  check
    Alcotest.(list string)
    (w.W.name ^ " same template set across runs")
    (List.map render (T.templates a))
    (List.map render (T.templates b))

(* -------------------------------------------------------------- *)
(* UVA015 matrix soundness on every workload                       *)
(* -------------------------------------------------------------- *)

let test_matrix_sound (w : W.t) () =
  let eng, base = build w ~n:60 ~dep_rate:0.3 in
  let log = Engine.log eng in
  let anl = Analyzer.analyze ~config:w.W.ri_config ~base log in
  let set, matrix = artifacts w in
  let fast = F.prepare ~log ~set ~matrix anl in
  let ctx =
    { L.tset = set; tmatrix = matrix; tfast = fast; tsource = None }
  in
  let diags = L.lint_templates ~passes:[ L.Matrix_soundness ] ~ctx anl in
  check
    Alcotest.(list string)
    (w.W.name ^ " UVA015 clean")
    []
    (List.map D.to_string (D.errors diags));
  (* the workloads are fully templated: raw-mode histories are covered *)
  let cov = L.lint_templates ~passes:[ L.Template_coverage ] ~ctx anl in
  check
    Alcotest.(list string)
    (w.W.name ^ " UVA014 clean")
    [] (List.map D.to_string cov)

(* -------------------------------------------------------------- *)
(* fast path = per-statement oracle on randomized scenarios        *)
(* -------------------------------------------------------------- *)

let members_list (rs : Analyzer.replay_set) =
  let out = ref [] in
  Array.iteri (fun i m -> if m then out := (i + 1) :: !out) rs.Analyzer.members;
  List.rev !out

let random_target prng log =
  let n = Log.length log in
  let tau = 1 + Uv_util.Prng.int prng n in
  let any_stmt () =
    (Log.entry log (1 + Uv_util.Prng.int prng n)).Log.stmt
  in
  match Uv_util.Prng.int prng 3 with
  | 0 -> { Analyzer.tau; op = Analyzer.Remove }
  | 1 -> { Analyzer.tau; op = Analyzer.Add (any_stmt ()) }
  | _ -> { Analyzer.tau; op = Analyzer.Change (any_stmt ()) }

let scenarios_per_workload = 40

let test_fastpath_oracle (w : W.t) () =
  let eng, base = build w ~n:80 ~dep_rate:0.3 in
  let log = Engine.log eng in
  let anl = Analyzer.analyze ~config:w.W.ri_config ~base log in
  let set, matrix = artifacts w in
  let fast = F.prepare ~log ~set ~matrix anl in
  let prng = Uv_util.Prng.create 7 in
  for k = 1 to scenarios_per_workload do
    let target = random_target prng log in
    let mode = if Uv_util.Prng.bool prng then Analyzer.Cell else Analyzer.Col_only in
    let oracle = Analyzer.replay_set ~mode anl target in
    let fp = F.replay_set ~mode fast anl target in
    let label =
      Printf.sprintf "%s scenario %d (tau=%d %s, %s)" w.W.name k
        target.Analyzer.tau
        (match target.Analyzer.op with
        | Analyzer.Remove -> "remove"
        | Analyzer.Add _ -> "add"
        | Analyzer.Change _ -> "change")
        (match mode with Analyzer.Cell -> "cell" | _ -> "col")
    in
    check Alcotest.(list int) label (members_list oracle) (members_list fp)
  done

(* -------------------------------------------------------------- *)
(* fast conflict-DAG edges: oracle order reachable                 *)
(* -------------------------------------------------------------- *)

(* every oracle edge (n, m) — n replays after m — must stay enforced in
   the fast DAG, directly or transitively (the fast edge list differs in
   shape: per-template buckets instead of per-column buckets) *)
let reachable edges n m =
  let succ = Hashtbl.create 64 in
  List.iter
    (fun (a, b) ->
      Hashtbl.replace succ a (b :: Option.value (Hashtbl.find_opt succ a) ~default:[]))
    edges;
  let seen = Hashtbl.create 64 in
  let rec go x =
    x = m
    || (not (Hashtbl.mem seen x))
       && begin
            Hashtbl.replace seen x ();
            List.exists go (Option.value (Hashtbl.find_opt succ x) ~default:[])
          end
  in
  go n

let test_fast_edges_sound (w : W.t) () =
  let eng, base = build w ~n:60 ~dep_rate:0.3 in
  let log = Engine.log eng in
  let anl = Analyzer.analyze ~config:w.W.ri_config ~base log in
  let set, matrix = artifacts w in
  let fast = F.prepare ~log ~set ~matrix anl in
  let prng = Uv_util.Prng.create 11 in
  for _ = 1 to 3 do
    let target = random_target prng log in
    let rs = Analyzer.replay_set anl target in
    let members = rs.Analyzer.members in
    let oracle_edges = Analyzer.exec_dependency_edges anl ~members in
    let fast_edges = F.exec_dependency_edges fast anl ~members in
    List.iter
      (fun (n, m) ->
        if not (reachable fast_edges n m) then
          Alcotest.failf "%s: oracle edge (%d, %d) unreachable in fast DAG"
            w.W.name n m)
      oracle_edges
  done

(* -------------------------------------------------------------- *)
(* template lint passes on synthetic sources                       *)
(* -------------------------------------------------------------- *)

let test_dynamic_sql_detection () =
  let source =
    {js|
function ok(id) { SQL_exec(`SELECT a FROM t WHERE id = ${id}`); }
function bad(id) {
  let q = "SELECT a FROM t WHERE id = " + id;
  SQL_exec(q);
}
function worse(id) { SQL_exec("SELECT a FROM t WHERE id = " + id); }
|js}
  in
  let diags = Uv_analysis.Template_lint.dynamic_sql ~source in
  check Alcotest.int "two dynamic call sites" 2 (List.length diags);
  List.iter
    (fun (d : D.t) ->
      check Alcotest.string "code" "UVA016" d.D.code;
      check Alcotest.string "severity" "warning" (D.severity_label d.D.severity))
    diags;
  check
    Alcotest.(list (option string))
    "attributed to the enclosing functions"
    [ Some "bad"; Some "worse" ]
    (List.map (fun (d : D.t) -> d.D.obj) diags)

(* -------------------------------------------------------------- *)
(* coarse INSERT ... SELECT regression: view source reads parent   *)
(* -------------------------------------------------------------- *)

let test_coarse_insert_select_view () =
  let sv = Schema_view.create () in
  List.iter (Schema_view.apply sv)
    (Uv_sql.Parser.parse_script
       "CREATE TABLE t (a INT, b INT);\n\
        CREATE VIEW v AS SELECT a, b FROM t;\n\
        CREATE TABLE u (x INT, y INT);");
  let stmt = Uv_sql.Parser.parse_stmt "INSERT INTO u SELECT a, b FROM v" in
  let coarse = Uv_analysis.Coarse_rw.of_stmt sv stmt in
  let has name = Uv_analysis.Coarse_rw.Names.mem name coarse.Uv_analysis.Coarse_rw.cr in
  check Alcotest.bool "view read" true (has "v");
  check Alcotest.bool "parent table read" true (has "t");
  (* and the precise sets keep covering the widened coarse sets *)
  let rw = Rwset.of_stmt sv stmt in
  check
    Alcotest.(list (pair string string))
    "no uncovered objects" []
    (List.map
       (fun (o, side) -> (o, match side with `Read -> "r" | `Write -> "w"))
       (Uv_analysis.Coarse_rw.uncovered rw coarse))

let workload_cases (w : W.t) =
  ( "templates:" ^ w.W.name,
    [
      Alcotest.test_case "extraction deterministic" `Quick
        (test_extract_deterministic w);
      Alcotest.test_case "matrix sound (UVA014/UVA015)" `Quick
        (test_matrix_sound w);
      Alcotest.test_case "fast path = oracle" `Slow (test_fastpath_oracle w);
      Alcotest.test_case "fast edges sound" `Quick (test_fast_edges_sound w);
    ] )

let () =
  Alcotest.run "uv_templates"
    (List.map workload_cases (W.all ())
    @ [
        ( "template-lint",
          [
            Alcotest.test_case "dynamic SQL detection" `Quick
              test_dynamic_sql_detection;
            Alcotest.test_case "coarse INSERT..SELECT view source" `Quick
              test_coarse_insert_select_view;
          ] );
      ])
