(* Unit and property tests for ultraverse.util: PRNG determinism, the
   incremental table hash (§4.5 algebra), DAG scheduling, stats, and the
   table renderer. *)

open Uv_util

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Prng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done

let test_prng_seed_changes_stream () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let sa = List.init 20 (fun _ -> Prng.int a 1_000_000) in
  let sb = List.init 20 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "different streams" false (sa = sb)

let test_prng_copy_independent () =
  let a = Prng.create 7 in
  ignore (Prng.int a 10);
  let b = Prng.copy a in
  check Alcotest.int "copies continue identically" (Prng.int a 1000) (Prng.int b 1000)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int stays within bounds" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, bound) ->
      let p = Prng.create seed in
      let v = Prng.int p bound in
      v >= 0 && v < bound)

let prop_int_range_inclusive =
  QCheck.Test.make ~name:"Prng.int_range inclusive" ~count:500
    QCheck.(triple small_int (int_range (-100) 100) (int_range 0 100))
    (fun (seed, lo, span) ->
      let p = Prng.create seed in
      let v = Prng.int_range p lo (lo + span) in
      v >= lo && v <= lo + span)

let test_prng_shuffle_permutation () =
  let p = Prng.create 3 in
  let arr = Array.init 50 Fun.id in
  Prng.shuffle p arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 50 Fun.id) sorted

let test_prng_chance_extremes () =
  let p = Prng.create 5 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Prng.chance p 1.0)
  done;
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=0 always false" false (Prng.chance p 0.0)
  done

let test_alpha_string () =
  let p = Prng.create 9 in
  let s = Prng.alpha_string p 16 in
  check Alcotest.int "length" 16 (String.length s);
  String.iter (fun c -> Alcotest.(check bool) "lowercase" true (c >= 'a' && c <= 'z')) s

(* ------------------------------------------------------------------ *)
(* Table_hash                                                           *)
(* ------------------------------------------------------------------ *)

let test_hash_empty_zero () =
  check Alcotest.int64 "empty hash is 0" 0L (Table_hash.value (Table_hash.create ()))

let test_hash_add_remove_inverse () =
  let h = Table_hash.create () in
  Table_hash.add_row h "row-a";
  Table_hash.add_row h "row-b";
  Table_hash.remove_row h "row-a";
  Table_hash.remove_row h "row-b";
  check Alcotest.int64 "back to empty" 0L (Table_hash.value h)

let test_hash_order_independent () =
  let h1 = Table_hash.create () and h2 = Table_hash.create () in
  Table_hash.add_row h1 "x";
  Table_hash.add_row h1 "y";
  Table_hash.add_row h1 "z";
  Table_hash.add_row h2 "z";
  Table_hash.add_row h2 "x";
  Table_hash.add_row h2 "y";
  check Alcotest.int64 "same multiset, same hash" (Table_hash.value h1)
    (Table_hash.value h2)

let test_hash_distinguishes_content () =
  let h1 = Table_hash.create () and h2 = Table_hash.create () in
  Table_hash.add_row h1 "alice";
  Table_hash.add_row h2 "bob";
  Alcotest.(check bool) "different rows differ" false
    (Int64.equal (Table_hash.value h1) (Table_hash.value h2))

let prop_hash_update_equals_delete_insert =
  QCheck.Test.make ~name:"update = remove old + add new" ~count:200
    QCheck.(triple string string string)
    (fun (a, b, c) ->
      let h1 = Table_hash.create () in
      Table_hash.add_row h1 a;
      Table_hash.add_row h1 b;
      Table_hash.remove_row h1 b;
      Table_hash.add_row h1 c;
      let h2 = Table_hash.create () in
      Table_hash.add_row h2 a;
      Table_hash.add_row h2 c;
      Int64.equal (Table_hash.value h1) (Table_hash.value h2))

let prop_hash_in_range =
  QCheck.Test.make ~name:"hash stays in [0, p)" ~count:500
    QCheck.(small_list string)
    (fun rows ->
      let h = Table_hash.create () in
      List.iter (Table_hash.add_row h) rows;
      let v = Table_hash.value h in
      Int64.compare v 0L >= 0 && Int64.unsigned_compare v Table_hash.modulus < 0)

let test_hash_digest_in_range () =
  List.iter
    (fun s ->
      let d = Table_hash.row_digest s in
      Alcotest.(check bool) "digest < p" true
        (Int64.unsigned_compare d Table_hash.modulus < 0))
    [ ""; "a"; "hello world"; String.make 1000 'x' ]

let test_hash_combine_order_sensitive () =
  let a = Table_hash.combine [ 1L; 2L ] and b = Table_hash.combine [ 2L; 1L ] in
  Alcotest.(check bool) "order matters across tables" false (Int64.equal a b)

(* ------------------------------------------------------------------ *)
(* Dag                                                                  *)
(* ------------------------------------------------------------------ *)

let test_dag_topological () =
  let g = Dag.create 4 in
  (* 3 -> 2 -> 1 -> 0 : node points to its dependency *)
  Dag.add_edge g 3 2;
  Dag.add_edge g 2 1;
  Dag.add_edge g 1 0;
  check Alcotest.(list int) "chain order" [ 0; 1; 2; 3 ] (Dag.topological_order g)

let test_dag_reachability () =
  let g = Dag.create 5 in
  Dag.add_edge g 0 1;
  Dag.add_edge g 1 2;
  Dag.add_edge g 3 4;
  let seen = Dag.reachable_from g [ 0 ] in
  check
    Alcotest.(list bool)
    "reach 0->1->2" [ true; true; true; false; false ]
    (Array.to_list seen)

let test_dag_dedup_edges () =
  let g = Dag.create 2 in
  Dag.add_edge g 1 0;
  Dag.add_edge g 1 0;
  Dag.add_edge g 1 0;
  check Alcotest.int "deduplicated" 1 (Dag.edge_count g);
  check Alcotest.(list int) "single successor" [ 0 ] (Dag.successors g 1)

let test_dag_makespan_serial_chain () =
  let g = Dag.create 3 in
  Dag.add_edge g 1 0;
  Dag.add_edge g 2 1;
  let w = [| 1.0; 2.0; 3.0 |] in
  check (Alcotest.float 1e-9) "chain = sum" 6.0
    (Dag.critical_path_makespan g ~weights:w ~workers:8)

let test_dag_makespan_parallel () =
  let g = Dag.create 4 in
  (* four independent unit tasks *)
  let w = [| 1.0; 1.0; 1.0; 1.0 |] in
  check (Alcotest.float 1e-9) "infinite workers" 1.0
    (Dag.critical_path_makespan g ~weights:w ~workers:8);
  check (Alcotest.float 1e-9) "two workers" 2.0
    (Dag.critical_path_makespan g ~weights:w ~workers:2);
  check (Alcotest.float 1e-9) "serial" 4.0
    (Dag.critical_path_makespan g ~weights:w ~workers:1)

let prop_makespan_bounds =
  (* makespan is between critical path (many workers) and serial sum *)
  QCheck.Test.make ~name:"makespan between critical path and serial sum" ~count:100
    QCheck.(pair (int_range 1 20) (int_range 1 4))
    (fun (n, workers) ->
      let prng = Prng.create (n * 31) in
      let g = Dag.create n in
      for i = 1 to n - 1 do
        if Prng.bool prng then Dag.add_edge g i (Prng.int prng i)
      done;
      let weights = Array.init n (fun i -> 1.0 +. float_of_int (i mod 3)) in
      let serial = Array.fold_left ( +. ) 0.0 weights in
      let cp = Dag.critical_path_makespan g ~weights ~workers:max_int in
      let m = Dag.critical_path_makespan g ~weights ~workers in
      m >= cp -. 1e-9 && m <= serial +. 1e-9)

let test_dag_cycle_detected () =
  let g = Dag.create 2 in
  Dag.add_edge g 0 1;
  Dag.add_edge g 1 0;
  Alcotest.check_raises "cycle raises"
    (Invalid_argument "Dag.topological_order: cycle") (fun () ->
      ignore (Dag.topological_order g))

(* ------------------------------------------------------------------ *)
(* Stats                                                                *)
(* ------------------------------------------------------------------ *)

let test_stats_mean_median () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "median" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "empty mean" 0.0 (Stats.mean [])

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "constant stddev" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check (Alcotest.float 1e-6) "known stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_stats_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  check (Alcotest.float 1e-9) "p50" 50.0 (Stats.percentile 50.0 xs);
  check (Alcotest.float 1e-9) "p99" 99.0 (Stats.percentile 99.0 xs)

let test_stats_geomean () =
  check (Alcotest.float 1e-9) "geomean" 4.0 (Stats.geomean [ 2.0; 8.0 ])

(* ------------------------------------------------------------------ *)
(* Textgrid                                                             *)
(* ------------------------------------------------------------------ *)

let test_textgrid_renders () =
  let t = Textgrid.create ~title:"demo" ~header:[ "a"; "b" ] in
  Textgrid.add_row t [ "1"; "2" ];
  Textgrid.add_row t [ "333" ];
  let s = Textgrid.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 7 = "== demo");
  Alcotest.(check bool) "pads short rows" true
    (String.index_opt s '3' <> None)

let test_textgrid_formats () =
  check Alcotest.string "ms" "0.500ms" (Textgrid.fmt_ms 0.5);
  check Alcotest.string "s" "1.50s" (Textgrid.fmt_ms 1500.0);
  check Alcotest.string "hours" "2.00H" (Textgrid.fmt_ms 7_200_000.0);
  check Alcotest.string "bytes" "100b" (Textgrid.fmt_bytes 100);
  check Alcotest.string "mb" "2.0MB" (Textgrid.fmt_bytes (2 * 1024 * 1024));
  check Alcotest.string "speedup" "23.6x" (Textgrid.fmt_speedup 23.6)

(* ------------------------------------------------------------------ *)
(* Clock                                                                *)
(* ------------------------------------------------------------------ *)

let test_clock_simulated () =
  let c = Clock.create ~rtt_ms:2.0 () in
  Clock.charge_rtt c ();
  Clock.charge_rtt c ~count:3 ();
  Clock.charge_ms c 10.0;
  check (Alcotest.float 1e-9) "simulated" 18.0 (Clock.simulated_ms c);
  Clock.reset c;
  check (Alcotest.float 1e-9) "reset" 0.0 (Clock.simulated_ms c)

let test_clock_real_monotonic () =
  let c = Clock.create () in
  let a = Clock.real_elapsed_ms c in
  let b = Clock.real_elapsed_ms c in
  Alcotest.(check bool) "non-decreasing" true (b >= a)

let test_clock_now_monotonic () =
  (* now_ms is a monotonic clock (CLOCK_MONOTONIC stub), not wall time:
     a dense sample burst must never step backwards *)
  let prev = ref (Clock.now_ms ()) in
  for _ = 1 to 100_000 do
    let t = Clock.now_ms () in
    if t < !prev then
      Alcotest.failf "clock stepped backwards: %.9f after %.9f" t !prev;
    prev := t
  done

let test_clock_now_advances () =
  let a = Clock.now_ms () in
  let x = ref 0 in
  for i = 1 to 2_000_000 do x := !x + i done;
  ignore (Sys.opaque_identity !x);
  Alcotest.(check bool) "strictly advances over real work" true
    (Clock.now_ms () > a)

(* ------------------------------------------------------------------ *)
(* Domain_pool                                                          *)
(* ------------------------------------------------------------------ *)

let test_pool_covers_all_items () =
  let pool = Domain_pool.create ~workers:4 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let n = 10_000 in
  let hits = Array.make n 0 in
  Domain_pool.run pool ~count:n (fun i -> hits.(i) <- hits.(i) + 1);
  Array.iteri
    (fun i c -> if c <> 1 then Alcotest.failf "item %d ran %d times" i c)
    hits

let test_pool_reuse_across_waves () =
  (* one pool, many waves — the wave executor's usage pattern *)
  let pool = Domain_pool.create ~workers:4 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let total = Atomic.make 0 in
  for wave = 1 to 50 do
    Domain_pool.run pool ~count:wave (fun _ -> Atomic.incr total)
  done;
  check Alcotest.int "all waves' items ran" (50 * 51 / 2) (Atomic.get total)

let test_pool_contended_counter () =
  let pool = Domain_pool.create ~workers:8 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  let total = Atomic.make 0 in
  Domain_pool.run pool ~count:100_000 (fun _ -> Atomic.incr total);
  check Alcotest.int "no lost updates" 100_000 (Atomic.get total)

let test_pool_exception_propagates () =
  let pool = Domain_pool.create ~workers:4 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  (match
     Domain_pool.run pool ~count:100 (fun i -> if i = 37 then failwith "boom")
   with
  | () -> Alcotest.fail "expected the worker exception to re-raise"
  | exception Failure msg -> check Alcotest.string "first exception" "boom" msg);
  (* the pool survives a failed job *)
  let ok = Atomic.make 0 in
  Domain_pool.run pool ~count:10 (fun _ -> Atomic.incr ok);
  check Alcotest.int "pool usable after failure" 10 (Atomic.get ok)

let test_pool_shutdown_idempotent () =
  let pool = Domain_pool.create ~workers:3 in
  Domain_pool.run pool ~count:5 (fun _ -> ());
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool

let test_pool_single_lane () =
  let pool = Domain_pool.create ~workers:1 in
  Fun.protect ~finally:(fun () -> Domain_pool.shutdown pool) @@ fun () ->
  check Alcotest.int "one lane" 1 (Domain_pool.lanes pool);
  let sum = ref 0 in
  (* workers:1 runs on the caller: unsynchronised state is safe *)
  Domain_pool.run pool ~count:1000 (fun i -> sum := !sum + i);
  check Alcotest.int "caller-lane sum" (999 * 1000 / 2) !sum

(* ------------------------------------------------------------------ *)
(* Rwlock                                                               *)
(* ------------------------------------------------------------------ *)

let test_rwlock_nested_read () =
  let l = Rwlock.create () in
  let v = Rwlock.read l (fun () -> Rwlock.read l (fun () -> 42)) in
  check Alcotest.int "recursive read admitted" 42 v

let test_rwlock_readers_overlap () =
  (* reader-preferring: all readers must be admitted simultaneously.
     Each reader enters the read side and spins until every other reader
     has entered too — this can only terminate if the read side is
     genuinely shared. *)
  let l = Rwlock.create () in
  let n = 4 in
  let inside = Atomic.make 0 in
  let readers =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Rwlock.read l (fun () ->
                Atomic.incr inside;
                while Atomic.get inside < n do
                  Domain.cpu_relax ()
                done)))
  in
  List.iter Domain.join readers;
  check Alcotest.int "all readers were inside at once" n (Atomic.get inside)

let test_rwlock_writers_exclusive () =
  let l = Rwlock.create () in
  let counter = ref 0 in
  let per_domain = 20_000 and domains = 4 in
  let writers =
    List.init domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              (* plain ref: only writer exclusivity makes this exact *)
              Rwlock.write l (fun () -> counter := !counter + 1)
            done))
  in
  List.iter Domain.join writers;
  check Alcotest.int "no lost increments" (domains * per_domain) !counter

let test_rwlock_writer_progress_after_readers () =
  (* starvation is accepted *while readers hold the lock*; once the
     reader stream drains, a queued writer must run promptly *)
  let l = Rwlock.create () in
  let stop_readers = Atomic.make false in
  let wrote = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_readers) do
          Rwlock.read l (fun () -> Domain.cpu_relax ())
        done)
  in
  let writer =
    Domain.spawn (fun () -> Rwlock.write l (fun () -> Atomic.set wrote true))
  in
  (* let the writer contend with the reader stream briefly, then drain *)
  let t0 = Clock.now_ms () in
  while Clock.now_ms () -. t0 < 20.0 do
    Domain.cpu_relax ()
  done;
  Atomic.set stop_readers true;
  Domain.join writer;
  Domain.join reader;
  Alcotest.(check bool) "writer completed once readers drained" true
    (Atomic.get wrote)

let test_rwlock_writer_priority_bounded_wait () =
  (* the starvation regression the serve daemon relies on: under a
     saturating stream of readers, a writer on a writer-priority lock
     waits at most the read sections already in flight — queued behind
     it, no *new* reader is admitted. The generous bound absorbs CI
     scheduling noise; a reader-preferring lock fails it by seconds. *)
  let l = Rwlock.create ~writer_priority:true () in
  let stop = Atomic.make false in
  let reads = Atomic.make 0 in
  let readers =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            while not (Atomic.get stop) do
              Rwlock.read l (fun () ->
                  Atomic.incr reads;
                  Domain.cpu_relax ())
            done))
  in
  (* let the reader stream saturate the lock first *)
  while Atomic.get reads < 1000 do
    Domain.cpu_relax ()
  done;
  let writes = 50 in
  let t0 = Clock.now_ms () in
  for _ = 1 to writes do
    Rwlock.write l (fun () -> ())
  done;
  let elapsed = Clock.now_ms () -. t0 in
  Atomic.set stop true;
  List.iter Domain.join readers;
  if elapsed > 2000.0 then
    Alcotest.failf "%d writes took %.0f ms against the reader stream" writes
      elapsed

let test_rwlock_writer_priority_readers_still_share () =
  (* priority only bites while a writer waits: with none queued, the
     read side must still be concurrently shared *)
  let l = Rwlock.create ~writer_priority:true () in
  let n = 4 in
  let inside = Atomic.make 0 in
  let readers =
    List.init n (fun _ ->
        Domain.spawn (fun () ->
            Rwlock.read l (fun () ->
                Atomic.incr inside;
                while Atomic.get inside < n do
                  Domain.cpu_relax ()
                done)))
  in
  List.iter Domain.join readers;
  check Alcotest.int "all readers inside at once" n (Atomic.get inside);
  check Alcotest.int "no waiting writers" 0 (Rwlock.waiting_writers l);
  check Alcotest.int "no active readers" 0 (Rwlock.active_readers l)

let test_rwlock_read_write_interleave () =
  let l = Rwlock.create () in
  let v = ref 0 in
  let iters = 5_000 in
  let writer =
    Domain.spawn (fun () ->
        for i = 1 to iters do
          Rwlock.write l (fun () -> v := i)
        done)
  in
  let reader =
    Domain.spawn (fun () ->
        let last = ref 0 in
        for _ = 1 to iters do
          Rwlock.read l (fun () ->
              let x = !v in
              (* writes are ordered, so observed values never regress *)
              if x < !last then Alcotest.failf "read %d after %d" x !last;
              last := x)
        done)
  in
  Domain.join writer;
  Domain.join reader;
  check Alcotest.int "final value" iters !v

(* ------------------------------------------------------------------ *)
(* Frame_io                                                             *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads =
        [ ""; "x"; "{\"id\":1}"; String.make 100_000 '\xfe'; "end" ]
      in
      List.iter (Frame_io.write_frame a) payloads;
      List.iter
        (fun expect ->
          match Frame_io.read_frame b with
          | Ok got -> check Alcotest.string "payload" expect got
          | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e))
        payloads)

let test_frame_oversized () =
  with_socketpair (fun a b ->
      Frame_io.write_frame a (String.make 4096 'z');
      match Frame_io.read_frame ~max_len:1024 b with
      | Error (`Oversized n) -> check Alcotest.int "announced length" 4096 n
      | Ok _ | Error `Closed -> Alcotest.fail "oversized frame accepted")

let test_frame_closed_mid_prefix () =
  with_socketpair (fun a b ->
      (* two bytes of length prefix, then EOF: must be `Closed, not a hang *)
      ignore (Unix.write_substring a "\x00\x00" 0 2);
      Unix.close a;
      match Frame_io.read_frame b with
      | Error `Closed -> ()
      | Ok _ | Error (`Oversized _) -> Alcotest.fail "torn prefix accepted")

let test_frame_closed_mid_payload () =
  with_socketpair (fun a b ->
      (* announce 100 bytes, deliver 3, hang up *)
      ignore (Unix.write_substring a "\x00\x00\x00\x64abc" 0 7);
      Unix.close a;
      match Frame_io.read_frame b with
      | Error `Closed -> ()
      | Ok _ | Error (`Oversized _) -> Alcotest.fail "torn payload accepted")

let test_frame_decoder_dribble () =
  (* the incremental decoder must survive arbitrary fragmentation:
     feed a 3-frame stream one byte at a time *)
  let buf = Buffer.create 64 in
  let payloads = [ "alpha"; ""; "{\"k\":[1,2,3]}" ] in
  List.iter
    (fun p ->
      let n = String.length p in
      Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff));
      Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
      Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
      Buffer.add_char buf (Char.chr (n land 0xff));
      Buffer.add_string buf p)
    payloads;
  let stream = Buffer.contents buf in
  let d = Frame_io.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Frame_io.Decoder.feed d (Bytes.make 1 c) ~off:0 ~len:1;
      let rec drain () =
        match Frame_io.Decoder.next d with
        | Ok (Some p) ->
            got := p :: !got;
            drain ()
        | Ok None -> ()
        | Error (`Oversized n) -> Alcotest.failf "oversized %d" n
      in
      drain ())
    stream;
  check Alcotest.(list string) "frames" payloads (List.rev !got);
  check Alcotest.int "nothing buffered" 0 (Frame_io.Decoder.buffered d)

let test_frame_decoder_oversized () =
  let d = Frame_io.Decoder.create ~max_len:16 () in
  Frame_io.Decoder.feed d (Bytes.of_string "\x00\x01\x00\x00") ~off:0 ~len:4;
  match Frame_io.Decoder.next d with
  | Error (`Oversized n) -> check Alcotest.int "announced" 65536 n
  | Ok _ -> Alcotest.fail "oversized prefix accepted"

let encode_frame payload =
  let n = String.length payload in
  let b = Buffer.create (n + 4) in
  Buffer.add_char b (Char.chr ((n lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (n land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let test_frame_byte_at_a_time_nonblocking () =
  (* deliver one frame a single byte at a time into a nonblocking
     socket: read_frame must park on EAGAIN between bytes and still
     assemble the exact payload — each of its internal reads is a
     short transfer *)
  with_socketpair (fun a b ->
      Unix.set_nonblock b;
      let payload = "one\x00byte\xffat a time " ^ String.make 200 'q' in
      let stream = encode_frame payload in
      let writer =
        Domain.spawn (fun () ->
            String.iter
              (fun c ->
                ignore (Unix.write a (Bytes.make 1 c) 0 1);
                if Char.code c land 7 = 0 then Unix.sleepf 0.0002)
              stream)
      in
      let got = Frame_io.read_frame b in
      Domain.join writer;
      match got with
      | Ok got -> check Alcotest.string "payload" payload got
      | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e))

let test_frame_nonblocking_write_backpressure () =
  (* a frame far larger than the socket buffer through a nonblocking
     writer: write_frame must absorb partial writes and EAGAIN while a
     slow reader drains the other end *)
  with_socketpair (fun a b ->
      Unix.set_nonblock a;
      let payload = String.init (2 * 1024 * 1024) (fun i -> Char.chr (i land 0xff)) in
      let writer = Domain.spawn (fun () -> Frame_io.write_frame a payload) in
      let got = Frame_io.read_frame ~max_len:(4 * 1024 * 1024) b in
      Domain.join writer;
      match got with
      | Ok got ->
          Alcotest.(check bool) "payload intact" true (String.equal payload got)
      | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e))

let test_frame_interrupted_syscalls () =
  (* pepper the process with signals while a large frame crosses a
     socketpair: reads and writes interrupted by EINTR must resume,
     not raise, and the payload must arrive intact *)
  let previous = Sys.signal Sys.sigusr1 (Sys.Signal_handle (fun _ -> ())) in
  Fun.protect
    ~finally:(fun () -> ignore (Sys.signal Sys.sigusr1 previous))
    (fun () ->
      with_socketpair (fun a b ->
          let payload = String.init (1 lsl 20) (fun i -> Char.chr (i land 0xff)) in
          let writer = Domain.spawn (fun () -> Frame_io.write_frame a payload) in
          let stop = Atomic.make false in
          let pid = Unix.getpid () in
          let signaler =
            Domain.spawn (fun () ->
                while not (Atomic.get stop) do
                  (try Unix.kill pid Sys.sigusr1 with Unix.Unix_error _ -> ());
                  Unix.sleepf 0.0005
                done)
          in
          let got = Frame_io.read_frame ~max_len:(2 lsl 20) b in
          Atomic.set stop true;
          Domain.join writer;
          Domain.join signaler;
          match got with
          | Ok got ->
              Alcotest.(check bool) "payload intact" true
                (String.equal payload got)
          | Error e -> Alcotest.failf "read: %s" (Frame_io.error_to_string e)))

(* ------------------------------------------------------------------ *)
(* Domain_pool.Queue                                                    *)
(* ------------------------------------------------------------------ *)

module Q = Domain_pool.Queue

let test_queue_no_lost_tasks () =
  (* N producer domains, interleaved submits with saturation retries:
     every task runs exactly once, none lost, none duplicated *)
  let q = Q.create ~workers:3 ~capacity:8 in
  let producers = 4 and per_producer = 500 in
  let ran = Array.init producers (fun _ -> Array.make per_producer 0) in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per_producer - 1 do
              let rec go () =
                match
                  Q.submit q (fun () -> ran.(p).(i) <- ran.(p).(i) + 1)
                with
                | `Accepted -> ()
                | `Saturated ->
                    Domain.cpu_relax ();
                    go ()
                | `Shutdown -> Alcotest.fail "premature shutdown"
              in
              go ()
            done))
  in
  List.iter Domain.join doms;
  Q.wait_idle q;
  Q.shutdown q;
  Array.iteri
    (fun p row ->
      Array.iteri
        (fun i n -> if n <> 1 then Alcotest.failf "task %d.%d ran %d times" p i n)
        row)
    ran;
  check Alcotest.int "completed counter" (producers * per_producer)
    (Q.completed q);
  check Alcotest.int "no failures" 0 (Q.failures q)

let test_queue_saturated_then_drains () =
  let q = Q.create ~workers:1 ~capacity:2 in
  let gate = Atomic.make false in
  let block () =
    while not (Atomic.get gate) do
      Domain.cpu_relax ()
    done
  in
  (* occupy the only worker, then fill the queue to capacity *)
  check Alcotest.bool "worker occupied" true (Q.submit q block = `Accepted);
  (* the blocker may or may not have been picked up yet; keep pushing
     until two tasks sit queued behind it *)
  let rec fill n =
    if n > 0 then
      match Q.submit q ignore with
      | `Accepted -> fill (n - 1)
      | `Saturated -> fill n
      | `Shutdown -> Alcotest.fail "shutdown"
  in
  fill 2;
  (* now the queue holds >= capacity pending work: admission must refuse *)
  let refused =
    match Q.submit q ignore with `Saturated -> true | _ -> false
  in
  Atomic.set gate true;
  Q.wait_idle q;
  Alcotest.(check bool) "refused at capacity" true refused;
  (* after draining, admission recovers *)
  check Alcotest.bool "accepts again" true (Q.submit q ignore = `Accepted);
  Q.wait_idle q;
  Q.shutdown q

let test_queue_shutdown_refuses () =
  let q = Q.create ~workers:2 ~capacity:4 in
  Q.shutdown q;
  check Alcotest.bool "post-shutdown submit" true (Q.submit q ignore = `Shutdown)

let test_queue_task_exceptions_counted () =
  let q = Q.create ~workers:2 ~capacity:16 in
  for _ = 1 to 5 do
    match Q.submit q (fun () -> failwith "boom") with
    | `Accepted -> ()
    | _ -> Alcotest.fail "submit refused"
  done;
  Q.wait_idle q;
  (* the pool survives its tasks' exceptions and keeps serving *)
  let ok = Atomic.make 0 in
  ignore (Q.submit q (fun () -> Atomic.incr ok));
  Q.wait_idle q;
  Q.shutdown q;
  check Alcotest.int "failures counted" 5 (Q.failures q);
  check Alcotest.int "still serves after failures" 1 (Atomic.get ok);
  check Alcotest.int "completed includes failed" 6 (Q.completed q)

let test_queue_fifo_single_worker () =
  (* with one worker the queue must drain fairly: strict FIFO *)
  let q = Q.create ~workers:1 ~capacity:64 in
  let order = ref [] in
  let m = Mutex.create () in
  for i = 0 to 49 do
    let rec go () =
      match
        Q.submit q (fun () -> Mutex.protect m (fun () -> order := i :: !order))
      with
      | `Accepted -> ()
      | `Saturated ->
          Domain.cpu_relax ();
          go ()
      | `Shutdown -> Alcotest.fail "shutdown"
    in
    go ()
  done;
  Q.wait_idle q;
  Q.shutdown q;
  check Alcotest.(list int) "FIFO order" (List.init 50 Fun.id)
    (List.rev !order)

let test_queue_wait_idle_no_lost_wakeup () =
  (* tight submit/wait_idle cycles: a lost wakeup would hang here *)
  let q = Q.create ~workers:2 ~capacity:4 in
  let n = Atomic.make 0 in
  for i = 1 to 100 do
    (match Q.submit q (fun () -> Atomic.incr n) with
    | `Accepted -> ()
    | _ -> Alcotest.fail "submit refused");
    Q.wait_idle q;
    check Alcotest.int "counter after wait_idle" i (Atomic.get n)
  done;
  Q.shutdown q

let () =
  Alcotest.run "uv_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed changes stream" `Quick test_prng_seed_changes_stream;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "shuffle permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "chance extremes" `Quick test_prng_chance_extremes;
          Alcotest.test_case "alpha string" `Quick test_alpha_string;
          qtest prop_int_in_bounds;
          qtest prop_int_range_inclusive;
        ] );
      ( "table_hash",
        [
          Alcotest.test_case "empty is zero" `Quick test_hash_empty_zero;
          Alcotest.test_case "add/remove inverse" `Quick test_hash_add_remove_inverse;
          Alcotest.test_case "order independent" `Quick test_hash_order_independent;
          Alcotest.test_case "content sensitive" `Quick test_hash_distinguishes_content;
          Alcotest.test_case "digest in range" `Quick test_hash_digest_in_range;
          Alcotest.test_case "combine order sensitive" `Quick
            test_hash_combine_order_sensitive;
          qtest prop_hash_update_equals_delete_insert;
          qtest prop_hash_in_range;
        ] );
      ( "dag",
        [
          Alcotest.test_case "topological order" `Quick test_dag_topological;
          Alcotest.test_case "reachability" `Quick test_dag_reachability;
          Alcotest.test_case "edge dedup" `Quick test_dag_dedup_edges;
          Alcotest.test_case "makespan chain" `Quick test_dag_makespan_serial_chain;
          Alcotest.test_case "makespan parallel" `Quick test_dag_makespan_parallel;
          Alcotest.test_case "cycle detection" `Quick test_dag_cycle_detected;
          qtest prop_makespan_bounds;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_stats_mean_median;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "geomean" `Quick test_stats_geomean;
        ] );
      ( "textgrid",
        [
          Alcotest.test_case "renders" `Quick test_textgrid_renders;
          Alcotest.test_case "formats" `Quick test_textgrid_formats;
        ] );
      ( "clock",
        [
          Alcotest.test_case "simulated charges" `Quick test_clock_simulated;
          Alcotest.test_case "real monotonic" `Quick test_clock_real_monotonic;
          Alcotest.test_case "now_ms monotonic" `Quick test_clock_now_monotonic;
          Alcotest.test_case "now_ms advances" `Quick test_clock_now_advances;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "covers all items" `Quick test_pool_covers_all_items;
          Alcotest.test_case "reuse across waves" `Quick test_pool_reuse_across_waves;
          Alcotest.test_case "contended counter" `Quick test_pool_contended_counter;
          Alcotest.test_case "exception propagates" `Quick test_pool_exception_propagates;
          Alcotest.test_case "shutdown idempotent" `Quick test_pool_shutdown_idempotent;
          Alcotest.test_case "single lane" `Quick test_pool_single_lane;
        ] );
      ( "rwlock",
        [
          Alcotest.test_case "nested read" `Quick test_rwlock_nested_read;
          Alcotest.test_case "readers overlap" `Quick test_rwlock_readers_overlap;
          Alcotest.test_case "writers exclusive" `Quick test_rwlock_writers_exclusive;
          Alcotest.test_case "writer progress" `Quick test_rwlock_writer_progress_after_readers;
          Alcotest.test_case "writer priority bounded wait" `Quick
            test_rwlock_writer_priority_bounded_wait;
          Alcotest.test_case "writer priority readers share" `Quick
            test_rwlock_writer_priority_readers_still_share;
          Alcotest.test_case "read/write interleave" `Quick test_rwlock_read_write_interleave;
        ] );
      ( "frame_io",
        [
          Alcotest.test_case "round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "oversized rejected" `Quick test_frame_oversized;
          Alcotest.test_case "closed mid-prefix" `Quick test_frame_closed_mid_prefix;
          Alcotest.test_case "closed mid-payload" `Quick test_frame_closed_mid_payload;
          Alcotest.test_case "decoder dribble" `Quick test_frame_decoder_dribble;
          Alcotest.test_case "decoder oversized" `Quick test_frame_decoder_oversized;
          Alcotest.test_case "byte-at-a-time nonblocking" `Quick
            test_frame_byte_at_a_time_nonblocking;
          Alcotest.test_case "nonblocking write backpressure" `Quick
            test_frame_nonblocking_write_backpressure;
          Alcotest.test_case "interrupted syscalls" `Quick
            test_frame_interrupted_syscalls;
        ] );
      ( "domain_pool.queue",
        [
          Alcotest.test_case "no lost tasks" `Quick test_queue_no_lost_tasks;
          Alcotest.test_case "saturated then drains" `Quick test_queue_saturated_then_drains;
          Alcotest.test_case "shutdown refuses" `Quick test_queue_shutdown_refuses;
          Alcotest.test_case "task exceptions counted" `Quick test_queue_task_exceptions_counted;
          Alcotest.test_case "FIFO single worker" `Quick test_queue_fifo_single_worker;
          Alcotest.test_case "wait_idle no lost wakeup" `Quick test_queue_wait_idle_no_lost_wakeup;
        ] );
    ]
