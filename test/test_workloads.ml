(* End-to-end tests over the five benchmark workloads: histories run in
   both execution modes, transactions transpile, and what-if results
   match the full-replay oracle (Definition E.1) in every analysis mode.
   These are the system-level acceptance tests for the whole pipeline. *)

open Uv_db
open Uv_retroactive
module W = Uv_workloads.Workload
module R = Uv_transpiler.Runtime

let check = Alcotest.check

let all_hashes cat =
  List.map (fun (n, t) -> (n, Storage.hash t)) (Catalog.tables cat)

let oracle_replay eng base ~skip =
  let e2 = Engine.of_catalog (Catalog.snapshot base) in
  Log.iter (Engine.log eng) (fun entry ->
      if entry.Log.index <> skip then
        try
          ignore
            (Engine.exec ~nondet:entry.Log.nondet ?app_txn:entry.Log.app_txn e2
               entry.Log.stmt)
        with Engine.Sql_error _ | Engine.Signal_raised _ -> ());
  Engine.catalog e2

let build (w : W.t) ~mode ~n ~dep_rate =
  let eng, rt = W.setup ~mode w in
  let base = Engine.snapshot eng in
  let prng = Uv_util.Prng.create 4242 in
  let calls = w.W.target_call :: w.W.generate prng ~scale:1 ~n ~dep_rate in
  let failures = W.run_history rt ~mode calls in
  (eng, rt, base, failures)

let whatif_vs_oracle (w : W.t) ~mode ~analysis_mode =
  let eng, _rt, base, _ = build w ~mode ~n:80 ~dep_rate:0.3 in
  let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
  let config = Whatif.Config.make ~mode:analysis_mode () in
  let out = Whatif.run_exn ~config ~analyzer eng { Analyzer.tau = 1; op = Analyzer.Remove } in
  let truth = oracle_replay eng base ~skip:1 in
  let merged = Engine.of_catalog (Catalog.snapshot (Engine.catalog eng)) in
  Whatif.commit merged out;
  check
    Alcotest.(list (pair string int64))
    (w.W.name ^ " matches oracle")
    (all_hashes truth)
    (all_hashes (Engine.catalog merged));
  out

let test_whatif_cell (w : W.t) () =
  ignore (whatif_vs_oracle w ~mode:R.Transpiled ~analysis_mode:Analyzer.Cell)

let test_whatif_col_only (w : W.t) () =
  ignore (whatif_vs_oracle w ~mode:R.Transpiled ~analysis_mode:Analyzer.Col_only)

let test_whatif_joint (w : W.t) () =
  ignore (whatif_vs_oracle w ~mode:R.Transpiled ~analysis_mode:Analyzer.Joint)

let test_dsystem_app_oracle (w : W.t) () =
  (* the D system replays application functions; the oracle is the whole
     application rerun from the checkpoint skipping the target invocation
     with the same recorded blackbox draws *)
  let eng, rt, base, _ = build w ~mode:R.Raw ~n:60 ~dep_rate:0.3 in
  let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
  let invocations = R.invocations rt in
  let target_tag = Uv_workloads.Dsystem.tag_of_invocation (List.hd invocations) in
  let out = Uv_workloads.Dsystem.run ~analyzer ~runtime:rt eng ~target_tag in
  (* app-level oracle: rerun everything but the target, forcing each
     transaction's recorded statement-level non-determinism so past
     AUTO_INCREMENT keys are reused (the paper's replay semantics) *)
  let nondet_of_tag tag =
    let acc = ref [] in
    Log.iter (Engine.log eng) (fun e ->
        if e.Log.app_txn = Some tag then acc := e.Log.nondet :: !acc);
    List.rev !acc
  in
  let oracle_eng = Engine.of_catalog (Catalog.snapshot base) in
  let oracle_rt = R.create_from_program oracle_eng (R.program rt) in
  List.iter
    (fun inv ->
      let tag = Uv_workloads.Dsystem.tag_of_invocation inv in
      if tag <> target_tag then
        ignore
          (R.replay_invocation ~stmt_nondet:(nondet_of_tag tag) oracle_rt
             ~mode:R.Raw inv))
    invocations;
  (* merge D's temporary tables into a copy of the live database *)
  let merged = Catalog.snapshot (Engine.catalog eng) in
  Catalog.copy_tables_into out.Uv_workloads.Dsystem.temp_catalog ~into:merged
    (List.map fst (Catalog.tables out.Uv_workloads.Dsystem.temp_catalog));
  check
    Alcotest.(list (pair string int64))
    (w.W.name ^ " D matches app-level oracle")
    (all_hashes (Engine.catalog oracle_eng))
    (all_hashes merged)

let test_transpilation (w : W.t) () =
  let eng, rt = W.setup ~mode:R.Raw w in
  ignore eng;
  let trs = R.transpile_install rt in
  Alcotest.(check bool)
    (w.W.name ^ " transpiles update transactions")
    true
    (List.length trs >= 3);
  List.iter
    (fun (tr : Uv_transpiler.Transpile.t) ->
      Alcotest.(check bool)
        (tr.Uv_transpiler.Transpile.txn_name ^ " explored some path")
        true
        (tr.Uv_transpiler.Transpile.paths >= 1))
    trs

let test_modes_agree (w : W.t) () =
  (* Raw and Transpiled histories produce the same final database when
     fed the same calls and the same blackbox draws (§3.4 correctness of
     transpilation, checked end-to-end) *)
  let prng = Uv_util.Prng.create 777 in
  let calls = w.W.generate prng ~scale:1 ~n:50 ~dep_rate:0.2 in
  let run mode =
    let eng, rt = W.setup ~mode w in
    ignore (W.run_history rt ~mode calls);
    eng
  in
  let raw = run R.Raw and trans = run R.Transpiled in
  check
    Alcotest.(list (pair string int64))
    (w.W.name ^ " raw == transpiled final state")
    (all_hashes (Engine.catalog raw))
    (all_hashes (Engine.catalog trans))

let test_dep_rate_monotone (w : W.t) () =
  (* higher dependency rate => replay set at least roughly grows *)
  let member_count rate =
    let eng, _rt, base, _ = build w ~mode:R.Transpiled ~n:80 ~dep_rate:rate in
    let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
    let rs = Analyzer.replay_set analyzer { Analyzer.tau = 1; op = Analyzer.Remove } in
    rs.Analyzer.member_count
  in
  let low = member_count 0.01 and high = member_count 0.9 in
  Alcotest.(check bool)
    (Printf.sprintf "%s: dep 0.9 (%d) >= dep 0.01 (%d)" w.W.name high low)
    true (high >= low)

let test_hash_jumper_overhead_only (w : W.t) () =
  (* enabling the jumper never changes the answer *)
  let eng, _rt, base, _ = build w ~mode:R.Transpiled ~n:60 ~dep_rate:0.3 in
  let analyzer = Analyzer.analyze ~config:w.W.ri_config ~base (Engine.log eng) in
  let run hj =
    let config = Whatif.Config.make ~hash_jumper:hj () in
    Whatif.run_exn ~config ~analyzer eng { Analyzer.tau = 1; op = Analyzer.Remove }
  in
  let a = run false and b = run true in
  check Alcotest.int64 "same final hash" a.Whatif.final_db_hash b.Whatif.final_db_hash

let test_b_replay_deterministic (w : W.t) () =
  (* the B baseline (serial re-interpretation with recorded draws) must
     reconstruct the exact final database — this underpins every speedup
     comparison *)
  let eng, rt, base, _ = build w ~mode:R.Raw ~n:50 ~dep_rate:0.3 in
  let replay_eng = Engine.of_catalog (Catalog.snapshot base) in
  let rt2 = R.create_from_program replay_eng (R.program rt) in
  List.iter
    (fun inv -> ignore (R.replay_invocation rt2 ~mode:R.Raw inv))
    (R.invocations rt);
  check
    Alcotest.(list (pair string int64))
    (w.W.name ^ " B replay reproduces the final state")
    (all_hashes (Engine.catalog eng))
    (all_hashes (Engine.catalog replay_eng))

let workload_cases (w : W.t) =
  ( w.W.name,
    [
      Alcotest.test_case "transpiles" `Quick (test_transpilation w);
      Alcotest.test_case "raw == transpiled" `Quick (test_modes_agree w);
      Alcotest.test_case "whatif cell == oracle" `Quick (test_whatif_cell w);
      Alcotest.test_case "whatif col-only == oracle" `Quick (test_whatif_col_only w);
      Alcotest.test_case "whatif joint == oracle" `Quick (test_whatif_joint w);
      Alcotest.test_case "D == app-level oracle" `Quick
        (test_dsystem_app_oracle w);
      Alcotest.test_case "dep-rate knob" `Quick (test_dep_rate_monotone w);
      Alcotest.test_case "hash-jumper neutral" `Quick (test_hash_jumper_overhead_only w);
      Alcotest.test_case "B replay deterministic" `Quick
        (test_b_replay_deterministic w);
    ] )

let () = Alcotest.run "uv_workloads" (List.map workload_cases (W.all ()))
